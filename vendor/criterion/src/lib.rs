//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses: `Criterion`, benchmark groups, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation instead of the real crate. It keeps
//! real criterion's two modes:
//!
//! - **bench mode** (`cargo bench` passes `--bench`): each benchmark is
//!   warmed up once, then timed for `sample_size` iterations; mean, min,
//!   and max per-iteration times are printed.
//! - **test mode** (`cargo test` runs `harness = false` bench targets
//!   without `--bench`): each benchmark runs exactly one iteration as a
//!   smoke test, so `cargo test` stays fast but the bench code can't rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Whether this process was launched by `cargo bench` (as opposed to
/// `cargo test` smoke-running a `harness = false` bench target).
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` for the configured iteration count and records
    /// per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

fn run_one(id: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id}: no samples (Bencher::iter never called)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    if iters == 1 {
        println!("{id}: smoke iteration ok in {mean:?}");
    } else {
        println!(
            "{id}: mean {mean:?} min {min:?} max {max:?} ({} iters)",
            b.samples.len()
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark in this group runs
    /// in bench mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let iters = if bench_mode() { self.sample_size } else { 1 };
        run_one(&format!("{}/{}", self.name, id), iters, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op here).
    pub fn finish(self) {}
}

/// The benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Defines and immediately runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let iters = if bench_mode() { 100 } else { 1 };
        run_one(id, iters, &mut f);
        self
    }
}

/// Bundles benchmark functions into a group runnable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
