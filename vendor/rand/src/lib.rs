//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_bool`, and `gen_range` over integer ranges.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation instead of the real crate. The
//! generator is a deterministic xoshiro256** seeded through SplitMix64 —
//! the same construction the real `rand` uses for seeding — so streams are
//! reproducible across platforms and releases of this workspace, though
//! they intentionally do **not** match the real `rand` crate's streams.
//! All in-tree consumers only require determinism for a fixed seed, never
//! specific values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Random number generators (API mirror of `rand::rngs`).
pub mod rngs {
    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// A generator seedable from a `u64` (API mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Integer types uniformly sampleable over a half-open range (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Debiased uniform sample in `[0, n)` via Lemire-style rejection.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// The random-generation methods (API mirror of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of an inferred type (bools and raw integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        // 53 random bits give a uniform float in [0,1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    /// Samples uniformly from a half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
