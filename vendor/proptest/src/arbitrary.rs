//! The [`any`] entry point for "any value of this type" strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy (stand-in for the real
/// crate's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates one value covering the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen()
    }
}

macro_rules! impl_arbitrary_narrow {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                u64::arbitrary(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_narrow!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
