//! Value-generation strategies: the [`Strategy`] trait and the
//! combinators this workspace uses (`Just`, ranges, tuples, map, union).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of one type from a test RNG.
///
/// Unlike real proptest there is no value tree and no shrinking; a
/// strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Object-safe sampling facade so [`Union`] can hold strategies of
/// differing concrete types that share a value type.
pub trait SampleDyn<T> {
    /// Generates one value.
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> SampleDyn<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Boxes one arm of a [`prop_oneof!`](crate::prop_oneof) union.
pub fn union_arm<S>(strategy: S) -> Box<dyn SampleDyn<S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// A strategy that picks uniformly among its arms.
pub struct Union<T> {
    arms: Vec<Box<dyn SampleDyn<T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<Box<dyn SampleDyn<T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng.gen_range(0..self.arms.len());
        self.arms[idx].sample_dyn(rng)
    }
}
