//! The test runner: configuration, RNG, case errors, and the loop that
//! drives a property over generated inputs.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default RNG seed; shared by every run so failures reproduce.
const DEFAULT_SEED: u64 = 0x0173_5ac1_ddac_2001;

/// The RNG handed to strategies.
///
/// Wraps the workspace's deterministic [`StdRng`]; the inner field is
/// public so strategy impls can draw from it directly.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// The underlying generator.
    pub rng: StdRng,
}

/// Runner configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this workspace's properties
        // simulate whole netlists per case, so default lower and let
        // call sites opt into more via `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives a property over `config.cases` generated inputs.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// A runner using the fixed default seed, overridable via the
    /// `PROPTEST_SEED` environment variable.
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        TestRunner { config, seed }
    }

    /// Runs `test` against `config.cases` values drawn from `strategy`.
    ///
    /// Each case gets an RNG seeded from `(run seed, case index)`, so a
    /// reported case index plus the run seed reproduces the input exactly.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), String>
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let mut rng = TestRng {
                rng: StdRng::seed_from_u64(self.seed ^ (u64::from(case) << 32)),
            };
            let value = strategy.sample(&mut rng);
            if let Err(e) = test(value) {
                return Err(format!(
                    "property failed at case {case}/{} (seed {:#x}; set PROPTEST_SEED to reproduce):\n{e}",
                    self.config.cases, self.seed
                ));
            }
        }
        Ok(())
    }
}
