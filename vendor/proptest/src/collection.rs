//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
