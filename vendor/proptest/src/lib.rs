//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses: the `proptest!` runner macro, `prop_assert!` /
//! `prop_assert_eq!`, `prop_oneof!`, `Just`, `any`, integer-range and tuple
//! strategies, `.prop_map`, and `prop::collection::vec`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation instead of the real crate.
//! Differences from real proptest, deliberate for this use:
//!
//! - **Deterministic**: every run uses a fixed RNG seed (overridable with
//!   the `PROPTEST_SEED` env var), so CI results are reproducible.
//! - **No shrinking**: a failing case reports its case index and the run
//!   seed instead of a minimized input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirror of the `prop` path alias exposed by the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs each contained property function against generated inputs.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in strategy_a(), y in 0usize..10) { ... }
/// }
/// ```
///
/// The `#[test]` attribute is written by the caller (as with real
/// proptest) and passed through verbatim — the expansion adds none of its
/// own, so a function without `#[test]` is not registered with the
/// harness.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strat,)+);
                runner
                    .run(&strategy, |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    })
                    .unwrap_or_else(|e| panic!("{}", e));
            }
        )*
    };
}

/// Fails the current test case with a message when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Builds a strategy that picks uniformly among the listed strategies,
/// which must all produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($arm)),+])
    };
}
