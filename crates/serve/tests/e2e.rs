//! End-to-end tests over a real loopback socket: submit/cache semantics,
//! framing-abuse rejection, single-flight under concurrent clients, and
//! failure isolation.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use atspeed_circuit::bench_fmt;
use atspeed_core::{PipelineConfig, T0Source};
use atspeed_serve::{
    decode_result_summary, CacheBudget, CacheOutcome, Client, ClientError, ServeConfig, Server,
    MAX_FRAME,
};

fn start() -> Server {
    Server::start(ServeConfig::default()).expect("bind loopback")
}

fn s27_bench() -> String {
    bench_fmt::write(&bench_fmt::s27())
}

fn quick_config() -> PipelineConfig {
    PipelineConfig {
        t0_source: T0Source::Random { len: 16 },
        seed: 3,
        ..PipelineConfig::default()
    }
}

#[test]
fn ping_stats_shutdown() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.ping().unwrap(), "ok");
    let stats = client.stats().unwrap();
    assert!(stats.contains("hits = 0"), "{stats}");
    assert!(stats.contains("workers = "), "{stats}");
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn repeat_submission_hits_byte_identical() {
    let server = start();
    let bench = s27_bench();
    let cfg = quick_config();

    let mut client = Client::connect(server.addr()).unwrap();
    let first = client.submit("s27", &bench, &cfg).unwrap();
    assert_eq!(first.header.cache, CacheOutcome::Miss);

    // Same job again, on a fresh connection for good measure.
    let mut client2 = Client::connect(server.addr()).unwrap();
    let second = client2.submit("s27", &bench, &cfg).unwrap();
    assert_eq!(second.header.cache, CacheOutcome::Hit);
    assert_eq!(second.body, first.body, "cache hit is byte-identical");
    assert_eq!(second.header.netlist_fp, first.header.netlist_fp);
    assert_eq!(second.header.config_fp, first.header.config_fp);

    // The body parses as the documented format.
    let body = String::from_utf8(first.body.clone()).unwrap();
    let summary = decode_result_summary(&body);
    let get = |k: &str| {
        summary
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing summary key {k} in {summary:?}"))
    };
    assert_eq!(get("circuit"), "s27");
    assert_eq!(get("n_sv"), "3");
    let tests: usize = get("tests").parse().unwrap();
    assert!(tests > 0, "compacted set is non-empty");
    // Stimuli section round-trips through the verify codec.
    let stimuli = body.split_once("\n\n").expect("blank line").1;
    let num_pis: usize = get("num_pis").parse().unwrap();
    for chunk in stimuli.split("--\n").take(3) {
        atspeed_verify::decode_stimuli(chunk, 3, num_pis).expect("each test decodes");
    }

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn whitespace_and_name_affect_cache_correctly() {
    let server = start();
    let bench = s27_bench();
    let cfg = quick_config();
    let mut client = Client::connect(server.addr()).unwrap();

    let first = client.submit("s27", &bench, &cfg).unwrap();
    assert_eq!(first.header.cache, CacheOutcome::Miss);

    // Extra blank lines and comment noise canonicalize away: still a hit.
    let noisy = format!("# resubmitted\n\n{bench}\n\n");
    let second = client.submit("s27", &noisy, &cfg).unwrap();
    assert_eq!(second.header.cache, CacheOutcome::Hit, "canonicalization");
    assert_eq!(second.body, first.body);

    // A different config fingerprint forces recompute.
    let other_cfg = PipelineConfig {
        seed: 4,
        ..quick_config()
    };
    let third = client.submit("s27", &bench, &other_cfg).unwrap();
    assert_eq!(third.header.cache, CacheOutcome::Miss, "config mismatch");
    assert_ne!(third.header.config_fp, first.header.config_fp);

    // Thread count is an execution knob, not identity: still a hit.
    let threaded_cfg = PipelineConfig {
        sim: atspeed_sim::SimConfig::with_threads(2),
        ..quick_config()
    };
    let fourth = client.submit("s27", &bench, &threaded_cfg).unwrap();
    assert_eq!(fourth.header.cache, CacheOutcome::Hit, "threads excluded");
    assert_eq!(fourth.body, first.body);

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn concurrent_identical_submissions_compute_once() {
    let server = start();
    let addr = server.addr();
    let bench = Arc::new(s27_bench());
    let cfg = quick_config();

    let replies: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let bench = bench.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.submit("s27", &bench, &cfg).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let misses = replies
        .iter()
        .filter(|r| r.header.cache == CacheOutcome::Miss)
        .count();
    assert_eq!(misses, 1, "single-flight: exactly one computation");
    for r in &replies {
        assert_eq!(r.body, replies[0].body, "all clients get identical bytes");
    }
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.contains("computed = 1"), "{stats}");

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn bad_jobs_are_error_replies_not_crashes() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();

    // Unparsable netlist.
    match client.submit("junk", "THIS IS NOT A BENCH FILE", &quick_config()) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("netlist rejected"), "{msg}"),
        other => panic!("expected a server error, got {other:?}"),
    }

    // A netlist that parses but has no flip-flops still runs or fails
    // gracefully — either way the server must answer.
    let comb_only = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
    let _ = client.submit("comb", comb_only, &quick_config());

    // The same connection and server still work afterwards.
    let ok = client.submit("s27", &s27_bench(), &quick_config()).unwrap();
    assert_eq!(ok.header.cache, CacheOutcome::Miss);
    assert_eq!(client.ping().unwrap(), "ok");

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn malformed_frames_get_explicit_protocol_errors() {
    let server = start();

    // Oversized frame: header declares more than MAX_FRAME; the server
    // must reply with an Error frame without reading (or allocating) the
    // payload, then close.
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut header = Vec::new();
        header.extend_from_slice(b"ATSP");
        header.push(0x03); // Submit
        header.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        stream.write_all(&header).unwrap();
        let reply = atspeed_serve::read_frame(&mut stream).unwrap();
        assert_eq!(reply.kind, atspeed_serve::FrameKind::Error);
        assert!(
            reply.text_payload().contains("exceeds"),
            "{:?}",
            reply.text_payload()
        );
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection closed after framing error");
    }

    // Garbage magic (e.g. an HTTP request) is rejected immediately.
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let reply = atspeed_serve::read_frame(&mut stream).unwrap();
        assert_eq!(reply.kind, atspeed_serve::FrameKind::Error);
        assert!(
            reply.text_payload().contains("magic"),
            "{:?}",
            reply.text_payload()
        );
    }

    // Unknown frame type.
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(b"ATSP");
        frame.push(0x6e);
        frame.extend_from_slice(&0u32.to_be_bytes());
        stream.write_all(&frame).unwrap();
        let reply = atspeed_serve::read_frame(&mut stream).unwrap();
        assert_eq!(reply.kind, atspeed_serve::FrameKind::Error);
    }

    // A malformed submission payload keeps the connection usable.
    {
        let mut client = Client::connect(server.addr()).unwrap();
        match client.submit("", "", &quick_config()) {
            Err(ClientError::Server(_)) => {}
            other => panic!("expected server error, got {other:?}"),
        }
        assert_eq!(
            client.ping().unwrap(),
            "ok",
            "connection survives bad payload"
        );
        client.shutdown().unwrap();
    }
    server.wait();
}

#[test]
fn per_job_history_records_are_appended() {
    let dir = std::env::temp_dir().join(format!("atspeed-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let history = dir.join("jobs.jsonl");
    let server = Server::start(ServeConfig {
        history: Some(history.clone()),
        budget: CacheBudget::default(),
        ..ServeConfig::default()
    })
    .unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    let bench = s27_bench();
    client.submit("s27", &bench, &quick_config()).unwrap();
    client.submit("s27", &bench, &quick_config()).unwrap(); // hit: no record
    let other = PipelineConfig {
        seed: 11,
        ..quick_config()
    };
    client.submit("s27", &bench, &other).unwrap();
    client.shutdown().unwrap();
    server.wait();

    let text = std::fs::read_to_string(&history).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 2, "one record per computed job, none for hits");
    for line in &lines {
        let v = atspeed_trace::json::parse(line).expect("history line parses");
        let cmd = v
            .get("command")
            .and_then(atspeed_trace::json::Value::as_str)
            .unwrap();
        assert!(cmd.starts_with("serve job s27"), "{cmd}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
