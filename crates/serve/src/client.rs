//! A minimal blocking client for the serve protocol, used by
//! `atspeedctl` and the end-to-end tests.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use atspeed_core::PipelineConfig;

use crate::protocol::{
    read_frame, write_frame, Frame, FrameKind, ProtocolError, ResponseHeader, SubmitRequest,
};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or framing trouble.
    Protocol(ProtocolError),
    /// The server replied with an `Error` frame.
    Server(String),
    /// The server replied with a frame the call did not expect.
    Unexpected(FrameKind),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Unexpected(kind) => write!(f, "unexpected {kind:?} reply"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// A successful submission: the volatile header plus the cached body.
#[derive(Debug, Clone)]
pub struct SubmitReply {
    /// Hit/miss, fingerprints, server-side wall time.
    pub header: ResponseHeader,
    /// The canonical result body (byte-identical across cache hits).
    pub body: Vec<u8>,
}

/// One connection to a serve instance.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects.
    ///
    /// # Errors
    ///
    /// The connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    fn roundtrip(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.stream, frame)?;
        let reply = read_frame(&mut self.stream)?;
        if reply.kind == FrameKind::Error {
            return Err(ClientError::Server(reply.text_payload()));
        }
        Ok(reply)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn ping(&mut self) -> Result<String, ClientError> {
        let reply = self.roundtrip(&Frame::text(FrameKind::Ping, ""))?;
        match reply.kind {
            FrameKind::Pong => Ok(reply.text_payload()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Submits a job and waits for the result.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] carries the server's reason when the job
    /// failed (bad netlist, pipeline error, panic).
    pub fn submit(
        &mut self,
        name: &str,
        bench: &str,
        config: &PipelineConfig,
    ) -> Result<SubmitReply, ClientError> {
        let request = SubmitRequest {
            name: name.to_owned(),
            config: *config,
            bench: bench.to_owned(),
        };
        let reply = self.roundtrip(&Frame::text(FrameKind::Submit, request.encode()))?;
        let header = match reply.kind {
            FrameKind::ResultHeader => ResponseHeader::decode(&reply.text_payload())?,
            other => return Err(ClientError::Unexpected(other)),
        };
        let body = read_frame(&mut self.stream)?;
        match body.kind {
            FrameKind::ResultBody => Ok(SubmitReply {
                header,
                body: body.payload,
            }),
            FrameKind::Error => Err(ClientError::Server(body.text_payload())),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Server and cache statistics as `key = value` lines.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let reply = self.roundtrip(&Frame::text(FrameKind::Stats, ""))?;
        match reply.kind {
            FrameKind::StatsReply => Ok(reply.text_payload()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Asks the server to stop accepting and drain.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let reply = self.roundtrip(&Frame::text(FrameKind::Shutdown, ""))?;
        match reply.kind {
            FrameKind::Pong => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
