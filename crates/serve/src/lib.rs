//! ATPG-as-a-service: a long-running batch server for the compaction
//! pipeline, with a content-addressed result cache.
//!
//! The ROADMAP's north star is a production system serving repeated
//! compaction requests from many users; every other binary in the
//! workspace is one-shot. This crate closes that gap with zero new
//! dependencies — `std::net` TCP, the workspace's own FNV-1a
//! fingerprints, and the repro-bundle text formats as the wire encoding:
//!
//! - [`protocol`] — bounded length-prefixed frames (`b"ATSP"` magic),
//!   line-oriented text payloads, and the canonical result-body
//!   rendering. Oversized or malformed frames are structured errors
//!   answered with an explicit `Error` reply, never a panic or an
//!   unbounded read.
//! - [`cache`] — the two-tier content-addressed cache: compiled circuits
//!   keyed by canonicalized-netlist fingerprint, serialized results keyed
//!   by (netlist, config) fingerprint pair, with single-flight
//!   computation, LRU eviction under a byte budget, and hit bodies that
//!   are byte-identical to the first computation.
//! - [`server`] — the acceptor + worker pool. Jobs run
//!   [`Pipeline::from_config`](atspeed_core::Pipeline::from_config)
//!   reentrantly; each job gets its own span tree, simulation-stats
//!   scope, and run-history record. A job failure (including a panic) is
//!   an error *response*, never a process abort.
//! - [`client`] — the blocking client behind the `atspeedctl` binary
//!   (`ping`, `submit`, `stats`, `shutdown`).
//!
//! # Example
//!
//! ```
//! use atspeed_serve::{Client, ServeConfig, Server};
//! use atspeed_core::PipelineConfig;
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! let bench = atspeed_circuit::bench_fmt::write(&atspeed_circuit::bench_fmt::s27());
//! let first = client.submit("s27", &bench, &PipelineConfig::default()).unwrap();
//! let second = client.submit("s27", &bench, &PipelineConfig::default()).unwrap();
//! assert_eq!(first.body, second.body, "cache hits are byte-identical");
//!
//! client.shutdown().unwrap();
//! server.wait();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CacheBudget, CacheKey, CacheStats, JobCache, Lookup};
pub use client::{Client, ClientError, SubmitReply};
pub use protocol::{
    decode_result_summary, encode_result, read_frame, write_frame, CacheOutcome, Frame, FrameKind,
    ProtocolError, ResponseHeader, SubmitRequest, MAX_FRAME,
};
pub use server::{ServeConfig, Server};
