//! The wire protocol: bounded length-prefixed frames over TCP, with
//! text payloads.
//!
//! A frame is `b"ATSP"` (magic) | type byte | payload length (u32,
//! big-endian) | payload. The length is validated against [`MAX_FRAME`]
//! *before* any payload byte is read, so a malicious or broken client
//! cannot make the server allocate or buffer unboundedly; every framing
//! violation is a structured [`ProtocolError`], never a panic or a wedge.
//!
//! Payloads are line-oriented text (the same `key = value` idiom as the
//! repro bundle's `case.txt`), so sessions are inspectable with `nc` plus
//! a hex dump and responses diff cleanly:
//!
//! - **Submit** — config lines, one blank line, then the `.bench` netlist;
//! - **ResultHeader** — per-response (volatile) facts: cache hit or miss,
//!   the two fingerprints, server-side wall time;
//! - **ResultBody** — the cached, canonical rendering of the
//!   [`PipelineResult`](atspeed_core::PipelineResult): summary stats, one
//!   blank line, then each compacted scan test in the repro-bundle
//!   stimuli format, separated by `--` lines. Byte-identical across cache
//!   hits — that is the property the CI smoke job asserts with `cmp`.

use std::io::{self, Read, Write};

use atspeed_core::{PipelineConfig, PipelineResult, T0Source};
use atspeed_sim::EngineKind;
use atspeed_verify::encode_stimuli;

/// Frame magic; rejects HTTP requests and random port scans immediately.
pub const MAGIC: [u8; 4] = *b"ATSP";

/// Upper bound on a frame payload. Large enough for a multi-megabyte
/// synthetic netlist or result body, small enough that one bad client
/// cannot OOM a worker.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Frame type byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Liveness probe; the server answers [`FrameKind::Pong`].
    Ping = 0x01,
    /// Reply to a ping.
    Pong = 0x02,
    /// A job: pipeline config lines, a blank line, a `.bench` netlist.
    Submit = 0x03,
    /// First half of a reply: volatile per-response facts.
    ResultHeader = 0x04,
    /// Second half of a reply: the cached result rendering.
    ResultBody = 0x05,
    /// The request failed; payload is a human-readable reason.
    Error = 0x06,
    /// Request for server/cache statistics.
    Stats = 0x07,
    /// Reply to [`FrameKind::Stats`]: `key = value` lines.
    StatsReply = 0x08,
    /// Ask the server to stop accepting and drain.
    Shutdown = 0x09,
}

impl FrameKind {
    fn from_byte(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::Ping,
            0x02 => FrameKind::Pong,
            0x03 => FrameKind::Submit,
            0x04 => FrameKind::ResultHeader,
            0x05 => FrameKind::ResultBody,
            0x06 => FrameKind::Error,
            0x07 => FrameKind::Stats,
            0x08 => FrameKind::StatsReply,
            0x09 => FrameKind::Shutdown,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame means.
    pub kind: FrameKind,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with a UTF-8 text payload.
    pub fn text(kind: FrameKind, text: impl Into<String>) -> Frame {
        Frame {
            kind,
            payload: text.into().into_bytes(),
        }
    }

    /// The payload as text (lossy — payloads this crate writes are UTF-8).
    pub fn text_payload(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }
}

/// Why a frame or payload was rejected.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket failed (including EOF mid-frame).
    Io(io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The type byte is not a known [`FrameKind`].
    UnknownType(u8),
    /// The declared payload length exceeds [`MAX_FRAME`].
    FrameTooLarge {
        /// Declared payload length.
        len: u32,
        /// The bound it violated.
        max: u32,
    },
    /// The frame parsed but its payload did not.
    BadPayload(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtocolError::UnknownType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            ProtocolError::BadPayload(msg) => write!(f, "bad payload: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Reads one frame, validating magic, type, and length *before* reading
/// the payload (bounded read).
///
/// # Errors
///
/// Every violation is a distinct [`ProtocolError`]; the caller decides
/// whether the connection is still usable (it is for everything except
/// [`ProtocolError::Io`] — the header and payload were fully consumed).
pub fn read_frame(reader: &mut impl Read) -> Result<Frame, ProtocolError> {
    let mut header = [0u8; 9];
    reader.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(ProtocolError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let kind = FrameKind::from_byte(header[4]).ok_or(ProtocolError::UnknownType(header[4]))?;
    let len = u32::from_be_bytes([header[5], header[6], header[7], header[8]]);
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(Frame { kind, payload })
}

/// Writes one frame.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] if the payload exceeds [`MAX_FRAME`]
/// (the bound is symmetric), else the socket error.
pub fn write_frame(writer: &mut impl Write, frame: &Frame) -> Result<(), ProtocolError> {
    let len = u32::try_from(frame.payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or(ProtocolError::FrameTooLarge {
            len: u32::try_from(frame.payload.len()).unwrap_or(u32::MAX),
            max: MAX_FRAME,
        })?;
    let mut buf = Vec::with_capacity(9 + frame.payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(frame.kind as u8);
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&frame.payload);
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(())
}

/// A decoded job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Circuit name (the `name` config key; defaults to `submitted`).
    pub name: String,
    /// The pipeline configuration.
    pub config: PipelineConfig,
    /// The `.bench` netlist text.
    pub bench: String,
}

impl SubmitRequest {
    /// Encodes the submission payload: config lines, one blank line, the
    /// netlist.
    pub fn encode(&self) -> String {
        let (t0, t0_len) = match self.config.t0_source {
            T0Source::Directed { max_len } => ("directed", max_len),
            T0Source::Property { max_len } => ("property", max_len),
            T0Source::Random { len } => ("random", len),
        };
        format!(
            "engine = {}\nmax_failed_pairs = {}\nname = {}\nphase4 = {}\n\
             profile_state_words = {}\nseed = {}\nt0 = {}\nt0_len = {}\n\
             threads = {}\nverify = {}\n\n{}",
            self.config.sim.engine,
            self.config.memory.max_failed_pairs,
            self.name,
            u8::from(self.config.phase4),
            self.config.memory.profile_state_words,
            self.config.seed,
            t0,
            t0_len,
            self.config.sim.threads,
            u8::from(self.config.verify),
            self.bench,
        )
    }

    /// Decodes a submission payload. Unknown config keys are rejected —
    /// a typo must not silently fall back to a default and poison the
    /// cache with a mislabeled result.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadPayload`] with the offending line.
    pub fn decode(payload: &str) -> Result<SubmitRequest, ProtocolError> {
        let bad = |msg: String| ProtocolError::BadPayload(msg);
        let mut req = SubmitRequest {
            name: "submitted".to_owned(),
            config: PipelineConfig::default(),
            bench: String::new(),
        };
        let mut t0 = "directed".to_owned();
        let mut t0_len = 1024usize;
        let mut rest = payload;
        loop {
            let (line, tail) = match rest.split_once('\n') {
                Some(pair) => pair,
                None => return Err(bad("missing blank line before the netlist".into())),
            };
            rest = tail;
            let line = line.trim_end_matches('\r');
            if line.trim().is_empty() {
                break;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| bad(format!("config line `{line}` is not `key = value`")))?;
            let parse_usize = |v: &str| {
                v.parse::<usize>()
                    .map_err(|_| bad(format!("bad {key} `{v}`")))
            };
            let parse_flag = |v: &str| match v {
                "0" => Ok(false),
                "1" => Ok(true),
                _ => Err(bad(format!("bad {key} `{v}` (expected 0 or 1)"))),
            };
            match key {
                "name" => {
                    if value.is_empty() || !value.chars().all(|c| c.is_ascii_graphic()) {
                        return Err(bad(format!("bad name `{value}`")));
                    }
                    req.name = value.to_owned();
                }
                "seed" => {
                    req.config.seed = value
                        .parse()
                        .map_err(|_| bad(format!("bad seed `{value}`")))?;
                }
                "t0" => {
                    if !matches!(value, "directed" | "property" | "random") {
                        return Err(bad(format!(
                            "bad t0 `{value}` (expected directed, property, or random)"
                        )));
                    }
                    t0 = value.to_owned();
                }
                "t0_len" => t0_len = parse_usize(value)?,
                "phase4" => req.config.phase4 = parse_flag(value)?,
                "verify" => req.config.verify = parse_flag(value)?,
                "profile_state_words" => {
                    req.config.memory.profile_state_words = parse_usize(value)?
                }
                "max_failed_pairs" => req.config.memory.max_failed_pairs = parse_usize(value)?,
                "threads" => {
                    let t = parse_usize(value)?;
                    if t == 0 || t > 256 {
                        return Err(bad(format!("bad threads `{value}` (expected 1..=256)")));
                    }
                    req.config.sim.threads = t;
                }
                "engine" => {
                    req.config.sim.engine = value
                        .parse::<EngineKind>()
                        .map_err(|e| bad(format!("bad engine: {e}")))?;
                }
                other => return Err(bad(format!("unknown config key `{other}`"))),
            }
        }
        req.config.t0_source = match t0.as_str() {
            "directed" => T0Source::Directed { max_len: t0_len },
            "property" => T0Source::Property { max_len: t0_len },
            _ => T0Source::Random { len: t0_len },
        };
        if rest.trim().is_empty() {
            return Err(bad("empty netlist".into()));
        }
        req.bench = rest.to_owned();
        Ok(req)
    }
}

/// Whether a response was served from the result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache without recomputation.
    Hit,
    /// Computed by this request.
    Miss,
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        })
    }
}

/// The volatile half of a reply — everything that may legitimately differ
/// between two responses for the same job, kept out of the cached body so
/// the body stays byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseHeader {
    /// Hit or miss.
    pub cache: CacheOutcome,
    /// Fingerprint of the canonicalized netlist (16 hex digits).
    pub netlist_fp: String,
    /// Fingerprint of the result-determining config lines.
    pub config_fp: String,
    /// Server-side wall time for this response, µs.
    pub wall_us: u64,
}

impl ResponseHeader {
    /// Encodes as `key = value` lines.
    pub fn encode(&self) -> String {
        format!(
            "cache = {}\nconfig_fp = {}\nnetlist_fp = {}\nwall_us = {}\n",
            self.cache, self.config_fp, self.netlist_fp, self.wall_us,
        )
    }

    /// Decodes the header payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadPayload`] on missing or malformed fields.
    pub fn decode(payload: &str) -> Result<ResponseHeader, ProtocolError> {
        let mut cache = None;
        let mut netlist_fp = None;
        let mut config_fp = None;
        let mut wall_us = None;
        for line in payload.lines().filter(|l| !l.trim().is_empty()) {
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| {
                    ProtocolError::BadPayload(format!("header line `{line}` is not `key = value`"))
                })?;
            match key {
                "cache" => {
                    cache = Some(match value {
                        "hit" => CacheOutcome::Hit,
                        "miss" => CacheOutcome::Miss,
                        _ => {
                            return Err(ProtocolError::BadPayload(format!(
                                "bad cache outcome `{value}`"
                            )))
                        }
                    })
                }
                "netlist_fp" => netlist_fp = Some(value.to_owned()),
                "config_fp" => config_fp = Some(value.to_owned()),
                "wall_us" => {
                    wall_us =
                        Some(value.parse().map_err(|_| {
                            ProtocolError::BadPayload(format!("bad wall_us `{value}`"))
                        })?)
                }
                other => {
                    return Err(ProtocolError::BadPayload(format!(
                        "unknown header key `{other}`"
                    )))
                }
            }
        }
        let missing = |f: &str| ProtocolError::BadPayload(format!("missing header key `{f}`"));
        Ok(ResponseHeader {
            cache: cache.ok_or_else(|| missing("cache"))?,
            netlist_fp: netlist_fp.ok_or_else(|| missing("netlist_fp"))?,
            config_fp: config_fp.ok_or_else(|| missing("config_fp"))?,
            wall_us: wall_us.ok_or_else(|| missing("wall_us"))?,
        })
    }
}

/// Renders a [`PipelineResult`] as the canonical result body: summary
/// stats as sorted `key = value` lines, one blank line, then each
/// compacted scan test in the repro-bundle stimuli format, separated by
/// `--` lines.
///
/// Deterministic by construction (no floats, no timestamps), so equal
/// results render byte-identically — the cache stores exactly these
/// bytes.
pub fn encode_result(result: &PipelineResult, num_pis: usize) -> String {
    let mut out = format!(
        "circuit = {}\ncomb_tests = {}\ncomp_cycles = {}\nfinal_detected = {}\n\
         init_cycles = {}\niterations = {}\nn_sv = {}\nnum_pis = {}\n\
         t0_detected = {}\nt0_len = {}\ntau_seq_detected = {}\ntau_seq_len = {}\n\
         tests = {}\ntotal_faults = {}\nuntestable = {}\n\n",
        result.circuit,
        result.num_comb_tests,
        result.comp_cycles,
        result.final_detected,
        result.init_cycles,
        result.iterations,
        result.n_sv,
        num_pis,
        result.t0_detected,
        result.t0_len,
        result.tau_seq_detected,
        result.tau_seq_len,
        result.compacted_set.len(),
        result.total_faults,
        result.untestable_faults,
    );
    for (i, test) in result.compacted_set.tests.iter().enumerate() {
        if i > 0 {
            out.push_str("--\n");
        }
        out.push_str(&encode_stimuli(&test.si, &test.seq));
    }
    out
}

/// The summary section of a result body as `(key, value)` pairs, in file
/// order. Stops at the blank line; the stimuli section is left to
/// [`atspeed_verify::decode_stimuli`].
pub fn decode_result_summary(body: &str) -> Vec<(String, String)> {
    body.lines()
        .take_while(|l| !l.trim().is_empty())
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.trim().to_owned(), v.trim().to_owned()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_core::MemoryBudget;
    use atspeed_sim::SimConfig;

    #[test]
    fn frames_round_trip() {
        let frame = Frame::text(FrameKind::Submit, "seed = 1\n\nINPUT(a)\n");
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got, frame);
    }

    #[test]
    fn bad_magic_and_unknown_type_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::text(FrameKind::Ping, "")).unwrap();
        buf[0] = b'H'; // "HTSP"
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::BadMagic(_))
        ));
        buf[0] = b'A';
        buf[4] = 0x7f;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::UnknownType(0x7f))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(FrameKind::Submit as u8);
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        // No payload bytes at all: the length check must fire first —
        // a reader that tried to allocate/read 4 GiB would hit EOF (Io)
        // or worse.
        match read_frame(&mut buf.as_slice()) {
            Err(ProtocolError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, MAX_FRAME);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::text(FrameKind::Submit, "0123456789")).unwrap();
        for cut in [3, 8, buf.len() - 4] {
            assert!(
                matches!(read_frame(&mut &buf[..cut]), Err(ProtocolError::Io(_))),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn submit_round_trips_and_rejects_garbage() {
        let req = SubmitRequest {
            name: "s27".to_owned(),
            config: PipelineConfig {
                seed: 9,
                verify: true,
                t0_source: T0Source::Random { len: 33 },
                memory: MemoryBudget {
                    profile_state_words: 64,
                    max_failed_pairs: 1000,
                },
                sim: SimConfig {
                    threads: 4,
                    chunk_size: 0,
                    engine: EngineKind::Wide,
                },
                ..PipelineConfig::default()
            },
            bench: "INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n".to_owned(),
        };
        let got = SubmitRequest::decode(&req.encode()).unwrap();
        assert_eq!(got, req);

        for bad in [
            "typo_key = 1\n\nINPUT(a)\n",
            "seed = banana\n\nINPUT(a)\n",
            "threads = 0\n\nINPUT(a)\n",
            "threads = 9999\n\nINPUT(a)\n",
            "engine = widefused\n\nINPUT(a)\n",
            "t0 = psychic\n\nINPUT(a)\n",
            "phase4 = maybe\n\nINPUT(a)\n",
            "seed = 1\n",          // no blank line, no netlist
            "seed = 1\n\n\n   \n", // empty netlist
        ] {
            assert!(
                matches!(
                    SubmitRequest::decode(bad),
                    Err(ProtocolError::BadPayload(_))
                ),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn response_header_round_trips() {
        let h = ResponseHeader {
            cache: CacheOutcome::Hit,
            netlist_fp: "00deadbeef001122".to_owned(),
            config_fp: "aabbccdd00112233".to_owned(),
            wall_us: 123,
        };
        assert_eq!(ResponseHeader::decode(&h.encode()).unwrap(), h);
        assert!(ResponseHeader::decode("cache = maybe\n").is_err());
        assert!(
            ResponseHeader::decode("cache = hit\n").is_err(),
            "missing fields"
        );
    }
}
