//! The batch-server binary.
//!
//! Usage:
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--job-threads N] [--engine E]
//!       [--cache-bytes N] [--cache-circuits N] [--job-history FILE]
//!       [--job-trace-dir DIR]
//!       [--trace FILE] [--metrics-json FILE] [--profile FILE]
//!       [--profile-hz N] [--history FILE] [--log LEVEL]
//! ```
//!
//! Binds (default `127.0.0.1:4715`), prints `listening on <addr>`, and
//! serves until a client sends a `Shutdown` frame (`atspeedctl
//! shutdown`). `--job-threads`/`--engine` set the default `SimConfig`
//! for jobs that don't override them; `--job-history` appends one
//! run-history record per computed job; `--job-trace-dir` writes one
//! Chrome trace per computed job. The shared `--trace`/`--history`/…
//! telemetry flags cover the server process itself.

use std::path::PathBuf;
use std::process::ExitCode;

use atspeed_bench::telemetry::TelemetryArgs;
use atspeed_serve::{ServeConfig, Server};
use atspeed_sim::{EngineKind, SimConfig};

struct Args {
    serve: ServeConfig,
    telemetry: TelemetryArgs,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        serve: ServeConfig {
            addr: "127.0.0.1:4715".to_owned(),
            ..ServeConfig::default()
        },
        telemetry: TelemetryArgs::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if args.telemetry.consume(a.as_str(), &mut it)? {
            continue;
        }
        match a.as_str() {
            "--addr" => {
                args.serve.addr = it.next().ok_or("--addr needs host:port")?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a count")?;
                args.serve.workers = v
                    .parse()
                    .ok()
                    .filter(|&w: &usize| w > 0)
                    .ok_or(format!("bad worker count `{v}`"))?;
            }
            "--job-threads" => {
                let v = it.next().ok_or("--job-threads needs a count")?;
                args.serve.job_sim.threads = v
                    .parse()
                    .ok()
                    .filter(|&t: &usize| t > 0)
                    .ok_or(format!("bad thread count `{v}`"))?;
            }
            "--engine" => {
                let v = it.next().ok_or("--engine needs a kind")?;
                args.serve.job_sim.engine = v.parse::<EngineKind>()?;
            }
            "--cache-bytes" => {
                let v = it.next().ok_or("--cache-bytes needs a byte count")?;
                args.serve.budget.max_result_bytes =
                    v.parse().map_err(|_| format!("bad byte count `{v}`"))?;
            }
            "--cache-circuits" => {
                let v = it.next().ok_or("--cache-circuits needs a count")?;
                args.serve.budget.max_circuits =
                    v.parse().map_err(|_| format!("bad circuit count `{v}`"))?;
            }
            "--job-history" => {
                args.serve.history = Some(PathBuf::from(
                    it.next().ok_or("--job-history needs a path")?,
                ));
            }
            "--job-trace-dir" => {
                args.serve.trace_dir = Some(PathBuf::from(
                    it.next().ok_or("--job-trace-dir needs a directory")?,
                ));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: serve [--addr HOST:PORT] [--workers N] [--job-threads N] \
                     [--engine E] [--cache-bytes N] [--cache-circuits N] \
                     [--job-history FILE] [--job-trace-dir DIR] [--trace FILE] \
                     [--metrics-json FILE] [--profile FILE] [--profile-hz N] \
                     [--history FILE] [--log LEVEL]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Honor SIM_THREADS/SIM_ENGINE as the baseline (with the strict
    // parser: a typo should stop the server at startup, not silently run
    // every job on the slow serial engine).
    match SimConfig::try_from_env() {
        Ok(env) => {
            if args.serve.job_sim == SimConfig::default() {
                args.serve.job_sim = env;
            }
        }
        Err(e) => {
            eprintln!("bad simulation environment: {e}");
            return ExitCode::FAILURE;
        }
    }
    args.telemetry.init();
    let server = match Server::start(args.serve) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    server.wait();
    let report = atspeed_sim::stats::report();
    if let Err(e) = args.telemetry.write_outputs(&report) {
        eprintln!("failed to write telemetry output: {e}");
        return ExitCode::FAILURE;
    }
    println!("stopped");
    ExitCode::SUCCESS
}
