//! Command-line client for a running `serve` instance.
//!
//! Usage:
//!
//! ```text
//! atspeedctl ping     [--addr HOST:PORT]
//! atspeedctl submit   [--addr HOST:PORT] (--circuit NAME | --bench FILE)
//!                     [--name NAME] [--seed N] [--t0 directed|property|random]
//!                     [--t0-len N] [--phase4 0|1] [--verify 0|1]
//!                     [--threads N] [--engine E] [--out FILE]
//! atspeedctl stats    [--addr HOST:PORT]
//! atspeedctl shutdown [--addr HOST:PORT]
//! ```
//!
//! `submit` sends a `.bench` netlist — from a file, or instantiated from
//! the paper's benchmark catalog with `--circuit s298` — plus a pipeline
//! config, prints the response header (`cache = hit|miss`, fingerprints,
//! server wall time) to stdout, and writes the result body to `--out`
//! (stdout when omitted). Repeat submissions of an identical (netlist,
//! config) pair return byte-identical bodies, so `cmp` on two `--out`
//! files is the cache-coherence check CI runs.

use std::process::ExitCode;

use atspeed_circuit::{bench_fmt, catalog};
use atspeed_core::{PipelineConfig, T0Source};
use atspeed_serve::Client;
use atspeed_sim::EngineKind;

const DEFAULT_ADDR: &str = "127.0.0.1:4715";

fn usage() -> String {
    "usage: atspeedctl <ping|submit|stats|shutdown> [--addr HOST:PORT] \
     [submit: (--circuit NAME | --bench FILE) [--name NAME] [--seed N] \
     [--t0 directed|property|random] [--t0-len N] [--phase4 0|1] \
     [--verify 0|1] [--threads N] [--engine E] [--out FILE]]"
        .to_owned()
}

struct SubmitArgs {
    addr: String,
    name: Option<String>,
    circuit: Option<String>,
    bench_file: Option<String>,
    out: Option<String>,
    config: PipelineConfig,
}

fn run() -> Result<(), String> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or_else(usage)?;
    let mut args = SubmitArgs {
        addr: DEFAULT_ADDR.to_owned(),
        name: None,
        circuit: None,
        bench_file: None,
        out: None,
        config: PipelineConfig::default(),
    };
    let mut t0 = "directed".to_owned();
    let mut t0_len = 1024usize;
    while let Some(a) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{a} needs {what}"));
        match a.as_str() {
            "--addr" => args.addr = value("host:port")?,
            "--name" => args.name = Some(value("a name")?),
            "--circuit" => args.circuit = Some(value("a catalog name")?),
            "--bench" => args.bench_file = Some(value("a path")?),
            "--out" => args.out = Some(value("a path")?),
            "--seed" => {
                let v = value("a number")?;
                args.config.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--t0" => t0 = value("a source")?,
            "--t0-len" => {
                let v = value("a length")?;
                t0_len = v.parse().map_err(|_| format!("bad length `{v}`"))?;
            }
            "--phase4" => {
                args.config.phase4 = parse_flag(&value("0 or 1")?)?;
            }
            "--verify" => {
                args.config.verify = parse_flag(&value("0 or 1")?)?;
            }
            "--threads" => {
                let v = value("a count")?;
                args.config.sim.threads =
                    v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "--engine" => {
                args.config.sim.engine = value("a kind")?.parse::<EngineKind>()?;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    args.config.t0_source = match t0.as_str() {
        "directed" => T0Source::Directed { max_len: t0_len },
        "property" => T0Source::Property { max_len: t0_len },
        "random" => T0Source::Random { len: t0_len },
        other => return Err(format!("bad t0 source `{other}`")),
    };

    let connect =
        |addr: &str| Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"));
    match command.as_str() {
        "ping" => {
            let pong = connect(&args.addr)?.ping().map_err(|e| e.to_string())?;
            println!("{pong}");
            Ok(())
        }
        "stats" => {
            let stats = connect(&args.addr)?.stats().map_err(|e| e.to_string())?;
            print!("{stats}");
            Ok(())
        }
        "shutdown" => {
            connect(&args.addr)?.shutdown().map_err(|e| e.to_string())?;
            println!("server stopping");
            Ok(())
        }
        "submit" => submit(args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn submit(args: SubmitArgs) -> Result<(), String> {
    let (default_name, bench) = match (&args.circuit, &args.bench_file) {
        (Some(name), None) => {
            let info = catalog::by_name(name).map_err(|e| e.to_string())?;
            (name.clone(), bench_fmt::write(&info.instantiate()))
        }
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let stem = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("submitted")
                .to_owned();
            (stem, text)
        }
        _ => return Err("submit needs exactly one of --circuit or --bench".to_owned()),
    };
    let name = args.name.unwrap_or(default_name);
    let mut client =
        Client::connect(&args.addr).map_err(|e| format!("cannot connect to {}: {e}", args.addr))?;
    let reply = client
        .submit(&name, &bench, &args.config)
        .map_err(|e| e.to_string())?;
    print!("{}", reply.header.encode());
    match &args.out {
        Some(path) => {
            std::fs::write(path, &reply.body).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("body = {path} ({} bytes)", reply.body.len());
        }
        None => {
            println!();
            print!("{}", String::from_utf8_lossy(&reply.body));
        }
    }
    Ok(())
}

fn parse_flag(v: &str) -> Result<bool, String> {
    match v {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(format!("bad flag `{v}` (expected 0 or 1)")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
