//! Content-addressed, two-tier job cache with single-flight computation.
//!
//! Keys are content fingerprints, never client-chosen names:
//!
//! - **netlist fingerprint** — FNV-1a ([`atspeed_trace::history::fingerprint`])
//!   of the *canonicalized* `.bench` text (parse, then re-render), so
//!   whitespace or declaration-order differences still hit;
//! - **config fingerprint** — FNV-1a of
//!   [`PipelineConfig::canonical_lines`](atspeed_core::PipelineConfig::canonical_lines),
//!   which covers exactly the result-determining fields (thread count and
//!   kernel choice are excluded — identical results are guaranteed at any
//!   thread count, so a result computed at 4 threads serves a 1-thread
//!   request).
//!
//! Tier 1 maps netlist fingerprints to `Arc<Netlist>`; the `Netlist`
//! memoizes its own `CompiledCircuit`, so holding the `Arc` *is* the
//! compiled-circuit cache. Tier 2 maps (netlist, config) keys to the
//! serialized result body bytes — byte-identical on every hit.
//!
//! Both tiers evict least-recently-used entries under a
//! [`CacheBudget`]; results additionally respect a total byte budget in
//! the spirit of the pipeline's own
//! [`MemoryBudget`](atspeed_core::MemoryBudget).
//!
//! Concurrent submissions of the same key are **single-flight**: the
//! first becomes the computing thread, the rest block on a condvar and
//! are served the cached bytes when it lands. If the computation fails,
//! the entry is abandoned and exactly one waiter is promoted to compute.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use atspeed_circuit::Netlist;

/// Identity of one cached result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of the canonicalized netlist.
    pub netlist_fp: String,
    /// Fingerprint of the result-determining config lines.
    pub config_fp: String,
}

/// Capacity bounds for both tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheBudget {
    /// Maximum total bytes of cached result bodies.
    pub max_result_bytes: usize,
    /// Maximum cached (compiled) circuits.
    pub max_circuits: usize,
}

impl Default for CacheBudget {
    fn default() -> Self {
        CacheBudget {
            max_result_bytes: 256 * 1024 * 1024,
            max_circuits: 64,
        }
    }
}

/// Monotonic counters; snapshot via [`JobCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Result lookups served from the cache.
    pub hits: u64,
    /// Result lookups that began a computation.
    pub misses: u64,
    /// Computations that completed and were stored.
    pub computed: u64,
    /// Results evicted under the byte budget.
    pub evictions: u64,
    /// Lookups that blocked on another thread's in-flight computation.
    pub waits: u64,
    /// Current total bytes of cached result bodies.
    pub result_bytes: u64,
    /// Current cached results.
    pub results: u64,
    /// Current cached circuits.
    pub circuits: u64,
}

enum Slot {
    InFlight,
    Ready(Arc<Vec<u8>>),
}

struct CacheState {
    results: HashMap<CacheKey, Slot>,
    /// LRU order over Ready keys; front = least recent.
    lru: Vec<CacheKey>,
    result_bytes: usize,
    circuits: HashMap<String, Arc<Netlist>>,
    circuit_lru: Vec<String>,
    stats: CacheStats,
}

/// The shared cache; `Arc<JobCache>` is cloned into every worker.
pub struct JobCache {
    budget: CacheBudget,
    state: Mutex<CacheState>,
    ready: Condvar,
}

/// What a result lookup produced.
pub enum Lookup {
    /// The cached body; serve it verbatim.
    Hit(Arc<Vec<u8>>),
    /// This thread must compute. Call [`JobCache::fulfill`] with the body
    /// or [`JobCache::abandon`] on failure — leaking the token would
    /// block waiters forever, so compute paths must be panic-caught.
    Compute,
}

impl JobCache {
    /// An empty cache under `budget`.
    pub fn new(budget: CacheBudget) -> JobCache {
        JobCache {
            budget,
            state: Mutex::new(CacheState {
                results: HashMap::new(),
                lru: Vec::new(),
                result_bytes: 0,
                circuits: HashMap::new(),
                circuit_lru: Vec::new(),
                stats: CacheStats::default(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Tier 1: the parsed (and lazily compiled) circuit for a netlist
    /// fingerprint, inserting via `build` on first use.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error (parse failure); nothing is cached.
    pub fn circuit<E>(
        &self,
        netlist_fp: &str,
        build: impl FnOnce() -> Result<Netlist, E>,
    ) -> Result<Arc<Netlist>, E> {
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(nl) = st.circuits.get(netlist_fp).cloned() {
                touch_str(&mut st.circuit_lru, netlist_fp);
                return Ok(nl);
            }
        }
        // Build outside the lock: parsing a large netlist must not stall
        // every other worker's lookups.
        let nl = Arc::new(build()?);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let entry = st
            .circuits
            .entry(netlist_fp.to_owned())
            .or_insert_with(|| nl.clone())
            .clone();
        touch_str(&mut st.circuit_lru, netlist_fp);
        while st.circuits.len() > self.budget.max_circuits && !st.circuit_lru.is_empty() {
            let evicted = st.circuit_lru.remove(0);
            st.circuits.remove(&evicted);
        }
        st.stats.circuits = st.circuits.len() as u64;
        Ok(entry)
    }

    /// Tier 2 lookup with single-flight semantics. Blocks while another
    /// thread computes the same key.
    pub fn lookup(&self, key: &CacheKey) -> Lookup {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match st.results.get(key) {
                Some(Slot::Ready(bytes)) => {
                    let bytes = bytes.clone();
                    st.stats.hits += 1;
                    touch(&mut st.lru, key);
                    return Lookup::Hit(bytes);
                }
                Some(Slot::InFlight) => {
                    st.stats.waits += 1;
                    st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    st.results.insert(key.clone(), Slot::InFlight);
                    st.stats.misses += 1;
                    return Lookup::Compute;
                }
            }
        }
    }

    /// Stores the computed body for `key`, wakes all waiters, and evicts
    /// least-recently-used results until the byte budget holds. The entry
    /// just stored is never evicted by its own insertion.
    pub fn fulfill(&self, key: &CacheKey, body: Vec<u8>) -> Arc<Vec<u8>> {
        let bytes = Arc::new(body);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.result_bytes += bytes.len();
        st.results.insert(key.clone(), Slot::Ready(bytes.clone()));
        touch(&mut st.lru, key);
        st.stats.computed += 1;
        while st.result_bytes > self.budget.max_result_bytes && st.lru.len() > 1 {
            let evicted = st.lru.remove(0);
            if let Some(Slot::Ready(old)) = st.results.remove(&evicted) {
                st.result_bytes -= old.len();
                st.stats.evictions += 1;
            }
        }
        st.stats.result_bytes = st.result_bytes as u64;
        st.stats.results = st.lru.len() as u64;
        drop(st);
        self.ready.notify_all();
        bytes
    }

    /// Drops the in-flight entry for `key` after a failed computation and
    /// wakes waiters; exactly one of them is promoted to compute.
    pub fn abandon(&self, key: &CacheKey) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(st.results.get(key), Some(Slot::InFlight)) {
            st.results.remove(key);
        }
        drop(st);
        self.ready.notify_all();
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).stats
    }
}

/// Moves `key` to the most-recent end of `lru`, inserting if absent.
fn touch<K: Clone + PartialEq>(lru: &mut Vec<K>, key: &K) {
    if let Some(pos) = lru.iter().position(|k| k == key) {
        lru.remove(pos);
    }
    lru.push(key.clone());
}

/// [`touch`] without forcing the caller to own a `String`.
fn touch_str(lru: &mut Vec<String>, key: &str) {
    if let Some(pos) = lru.iter().position(|k| k == key) {
        lru.remove(pos);
    }
    lru.push(key.to_owned());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn key(netlist: &str, config: &str) -> CacheKey {
        CacheKey {
            netlist_fp: netlist.to_owned(),
            config_fp: config.to_owned(),
        }
    }

    fn compute_and_fulfill(cache: &JobCache, k: &CacheKey, body: &[u8]) -> Arc<Vec<u8>> {
        match cache.lookup(k) {
            Lookup::Hit(b) => b,
            Lookup::Compute => cache.fulfill(k, body.to_vec()),
        }
    }

    #[test]
    fn fingerprint_mismatch_forces_recompute() {
        let cache = JobCache::new(CacheBudget::default());
        compute_and_fulfill(&cache, &key("nl-a", "cfg-1"), b"result-a1");
        // Same netlist, different config: must be a miss.
        assert!(matches!(
            cache.lookup(&key("nl-a", "cfg-2")),
            Lookup::Compute
        ));
        cache.abandon(&key("nl-a", "cfg-2"));
        // Same config, different netlist: must be a miss.
        assert!(matches!(
            cache.lookup(&key("nl-b", "cfg-1")),
            Lookup::Compute
        ));
        cache.abandon(&key("nl-b", "cfg-1"));
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 3);
        assert_eq!(s.computed, 1);
    }

    #[test]
    fn hit_returns_byte_identical_body() {
        let cache = JobCache::new(CacheBudget::default());
        let k = key("nl", "cfg");
        let first = compute_and_fulfill(&cache, &k, b"the canonical result body\n");
        for _ in 0..3 {
            match cache.lookup(&k) {
                Lookup::Hit(body) => {
                    assert_eq!(*body, *first, "hits serve the stored bytes verbatim");
                    assert!(Arc::ptr_eq(&body, &first), "no copy is made");
                }
                Lookup::Compute => panic!("second lookup must hit"),
            }
        }
        assert_eq!(cache.stats().hits, 3);
        assert_eq!(cache.stats().computed, 1);
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        // Budget fits two 8-byte bodies, not three.
        let cache = JobCache::new(CacheBudget {
            max_result_bytes: 20,
            max_circuits: 4,
        });
        compute_and_fulfill(&cache, &key("a", "c"), b"12345678");
        compute_and_fulfill(&cache, &key("b", "c"), b"12345678");
        // Touch `a` so `b` is the least recently used.
        assert!(matches!(cache.lookup(&key("a", "c")), Lookup::Hit(_)));
        compute_and_fulfill(&cache, &key("c", "c"), b"12345678");
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.result_bytes <= 20, "{s:?}");
        assert!(
            matches!(cache.lookup(&key("a", "c")), Lookup::Hit(_)),
            "MRU survives"
        );
        assert!(
            matches!(cache.lookup(&key("c", "c")), Lookup::Hit(_)),
            "newest survives"
        );
        assert!(
            matches!(cache.lookup(&key("b", "c")), Lookup::Compute),
            "LRU entry was evicted"
        );
        cache.abandon(&key("b", "c"));
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let cache = Arc::new(JobCache::new(CacheBudget::default()));
        let computations = Arc::new(AtomicUsize::new(0));
        let k = key("shared", "cfg");
        let bodies: Vec<Vec<u8>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = cache.clone();
                    let computations = computations.clone();
                    let k = k.clone();
                    s.spawn(move || match cache.lookup(&k) {
                        Lookup::Hit(b) => b.to_vec(),
                        Lookup::Compute => {
                            computations.fetch_add(1, Ordering::SeqCst);
                            // Let other threads pile onto the in-flight slot.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            cache.fulfill(&k, b"single-flight body".to_vec()).to_vec()
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            computations.load(Ordering::SeqCst),
            1,
            "exactly one compute"
        );
        assert_eq!(cache.stats().computed, 1);
        for body in &bodies {
            assert_eq!(body, b"single-flight body");
        }
    }

    #[test]
    fn abandoned_computation_promotes_one_waiter() {
        let cache = Arc::new(JobCache::new(CacheBudget::default()));
        let k = key("flaky", "cfg");
        assert!(matches!(cache.lookup(&k), Lookup::Compute));
        let waiter = {
            let cache = cache.clone();
            let k = k.clone();
            std::thread::spawn(move || match cache.lookup(&k) {
                Lookup::Hit(_) => panic!("nothing was fulfilled"),
                Lookup::Compute => {
                    cache.fulfill(&k, b"second try".to_vec());
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.abandon(&k);
        waiter.join().unwrap();
        match cache.lookup(&k) {
            Lookup::Hit(b) => assert_eq!(*b, b"second try".to_vec()),
            Lookup::Compute => panic!("waiter's result must be cached"),
        }
    }

    #[test]
    fn circuit_tier_builds_once_and_evicts_lru() {
        let cache = JobCache::new(CacheBudget {
            max_result_bytes: 1024,
            max_circuits: 2,
        });
        let builds = AtomicUsize::new(0);
        let build = || -> Result<Netlist, String> {
            builds.fetch_add(1, Ordering::SeqCst);
            Ok(atspeed_circuit::bench_fmt::s27())
        };
        let a = cache.circuit("fp-a", build).unwrap();
        let again = cache.circuit("fp-a", build).unwrap();
        assert!(Arc::ptr_eq(&a, &again), "cached instance is shared");
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        cache.circuit("fp-b", build).unwrap();
        cache.circuit("fp-c", build).unwrap(); // evicts fp-a
        cache.circuit("fp-a", build).unwrap();
        assert_eq!(builds.load(Ordering::SeqCst), 4, "evicted circuit rebuilt");
        assert!(
            cache
                .circuit("fp-a", || Err::<Netlist, _>("parse error".to_owned()))
                .is_ok(),
            "still cached — builder not called"
        );
    }
}
