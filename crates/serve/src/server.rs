//! The batch server: a TCP acceptor, a shared job queue, and a fixed
//! worker pool draining it.
//!
//! One connection thread per client reads frames and turns `Submit`
//! payloads into queued jobs; `workers` pool threads execute them with
//! [`Pipeline::from_config`] (each job's own `SimConfig` decides how many
//! simulation threads *that* job fans out to — the pool bounds only how
//! many jobs run concurrently). Every job gets:
//!
//! - its own span tree ([`atspeed_trace::scope`]), written per job under
//!   `trace_dir` when configured, so one job's spans never interleave
//!   with another's;
//! - its own [`stats`](atspeed_sim::stats) scope, so per-job simulation
//!   reports are accurate under concurrency;
//! - one run-history record ([`RunRecord`]) when `history` is
//!   configured, so the `report` binary works per job.
//!
//! **A served job never aborts the process.** Pipeline errors and panics
//! are caught ([`std::panic::catch_unwind`] — the workspace forbids
//! unsafe code, so unwinding is safe to contain), the in-flight cache
//! entry is abandoned (promoting one waiter), and the client receives an
//! `Error` frame. Framing violations get an explicit `Error` reply
//! before the connection closes; malformed submissions get an `Error`
//! reply and the connection stays usable.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use atspeed_bench::telemetry::DerivedMetrics;
use atspeed_circuit::bench_fmt;
use atspeed_core::Pipeline;
use atspeed_sim::{stats, SimConfig};
use atspeed_trace::history::{fingerprint, RunRecord};
use atspeed_trace::Tracer;

use crate::cache::{CacheBudget, CacheKey, JobCache, Lookup};
use crate::protocol::{
    encode_result, read_frame, write_frame, CacheOutcome, Frame, FrameKind, ProtocolError,
    ResponseHeader, SubmitRequest,
};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Job worker threads (how many jobs run concurrently).
    pub workers: usize,
    /// Default simulation config for jobs that don't override
    /// `threads`/`engine` in their submission.
    pub job_sim: SimConfig,
    /// Cache capacity bounds.
    pub budget: CacheBudget,
    /// Per-job run-history JSONL path (off when `None`).
    pub history: Option<PathBuf>,
    /// Directory for per-job Chrome traces (tracing off when `None`).
    pub trace_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            job_sim: SimConfig::default(),
            budget: CacheBudget::default(),
            history: None,
            trace_dir: None,
        }
    }
}

enum JobReply {
    Ok {
        header: ResponseHeader,
        body: Arc<Vec<u8>>,
    },
    Failed(String),
}

struct Job {
    request: SubmitRequest,
    reply: mpsc::Sender<JobReply>,
}

struct Shared {
    cfg: ServeConfig,
    cache: JobCache,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    jobs_started: AtomicU64,
    jobs_failed: AtomicU64,
    addr: SocketAddr,
}

/// A running server; dropping it does **not** stop it — call
/// [`Server::shutdown`] (or send a `Shutdown` frame) then [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// The bind error.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cache: JobCache::new(cfg.budget),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            jobs_started: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            addr,
        });
        let mut threads = Vec::new();
        for i in 0..workers {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("serve-acceptor".to_owned())
                    .spawn(move || acceptor_loop(&listener, &shared))?,
            );
        }
        atspeed_trace::info!("serve", "listening"; addr = addr.to_string());
        Ok(Server { shared, threads })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Asks the acceptor and workers to stop; queued jobs still drain.
    pub fn shutdown(&self) {
        request_stop(&self.shared);
    }

    /// Blocks until the acceptor and every worker exit (after
    /// [`Server::shutdown`] or a client `Shutdown` frame).
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn request_stop(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    // Unblock the acceptor's blocking accept() with a throwaway connect.
    let _ = TcpStream::connect(shared.addr);
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let shared = shared.clone();
                // Connection threads are detached: they exit when the
                // client disconnects or after a framing error.
                let _ = std::thread::Builder::new()
                    .name("serve-conn".to_owned())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(e) => {
                atspeed_trace::warn!("serve", "accept failed"; error = e.to_string());
            }
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(ProtocolError::Io(_)) => return, // client gone / EOF
            Err(e) => {
                // Explicit protocol-error reply, then close: after a
                // framing violation the byte stream is unsynchronized.
                let _ = write_frame(&mut stream, &Frame::text(FrameKind::Error, e.to_string()));
                return;
            }
        };
        let keep_going = match frame.kind {
            FrameKind::Ping => {
                write_frame(&mut stream, &Frame::text(FrameKind::Pong, "ok")).is_ok()
            }
            FrameKind::Stats => write_frame(
                &mut stream,
                &Frame::text(FrameKind::StatsReply, stats_payload(shared)),
            )
            .is_ok(),
            FrameKind::Shutdown => {
                request_stop(shared);
                let _ = write_frame(&mut stream, &Frame::text(FrameKind::Pong, "stopping"));
                false
            }
            FrameKind::Submit => handle_submit(&mut stream, shared, &frame),
            _ => write_frame(
                &mut stream,
                &Frame::text(
                    FrameKind::Error,
                    format!("unexpected {:?} frame from a client", frame.kind),
                ),
            )
            .is_ok(),
        };
        if !keep_going {
            return;
        }
    }
}

/// Returns whether the connection is still usable.
fn handle_submit(stream: &mut TcpStream, shared: &Arc<Shared>, frame: &Frame) -> bool {
    let request = match SubmitRequest::decode(&frame.text_payload()) {
        Ok(r) => r,
        Err(e) => {
            // A malformed submission is the client's problem, not a
            // connection-level one: reply and keep serving.
            return write_frame(stream, &Frame::text(FrameKind::Error, e.to_string())).is_ok();
        }
    };
    let (tx, rx) = mpsc::channel();
    {
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(Job { request, reply: tx });
    }
    shared.queue_cv.notify_one();
    match rx.recv() {
        Ok(JobReply::Ok { header, body }) => {
            if write_frame(
                stream,
                &Frame::text(FrameKind::ResultHeader, header.encode()),
            )
            .is_err()
            {
                return false;
            }
            write_frame(
                stream,
                &Frame {
                    kind: FrameKind::ResultBody,
                    payload: body.to_vec(),
                },
            )
            .is_ok()
        }
        Ok(JobReply::Failed(msg)) => {
            write_frame(stream, &Frame::text(FrameKind::Error, msg)).is_ok()
        }
        Err(_) => {
            let _ = write_frame(
                stream,
                &Frame::text(FrameKind::Error, "server shutting down"),
            );
            false
        }
    }
}

fn stats_payload(shared: &Shared) -> String {
    let s = shared.cache.stats();
    format!(
        "circuits = {}\ncomputed = {}\nevictions = {}\nhits = {}\n\
         jobs_failed = {}\njobs_started = {}\nmisses = {}\n\
         result_bytes = {}\nresults = {}\nwaits = {}\nworkers = {}\n",
        s.circuits,
        s.computed,
        s.evictions,
        s.hits,
        shared.jobs_failed.load(Ordering::SeqCst),
        shared.jobs_started.load(Ordering::SeqCst),
        s.misses,
        s.result_bytes,
        s.results,
        s.waits,
        shared.cfg.workers.max(1),
    )
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        let reply = execute_job(shared, &job.request);
        // The client may have hung up; a dead channel is not an error.
        let _ = job.reply.send(reply);
    }
}

fn execute_job(shared: &Shared, request: &SubmitRequest) -> JobReply {
    let start = Instant::now();
    let job_seq = shared.jobs_started.fetch_add(1, Ordering::SeqCst);

    // Canonicalize: parse, re-render, fingerprint. The name participates
    // in the netlist fingerprint because it is rendered into the result
    // body (`circuit = <name>`), and cached bodies must be a pure
    // function of their key.
    let parsed = match bench_fmt::parse(&request.name, &request.bench) {
        Ok(nl) => nl,
        Err(e) => {
            shared.jobs_failed.fetch_add(1, Ordering::SeqCst);
            return JobReply::Failed(format!("netlist rejected: {e}"));
        }
    };
    let canonical = bench_fmt::write(&parsed);
    let netlist_fp = fingerprint(&[request.name.clone(), canonical]);
    let config_fp = fingerprint(&[request.config.canonical_lines()]);
    let key = CacheKey {
        netlist_fp: netlist_fp.clone(),
        config_fp: config_fp.clone(),
    };
    let nl = match shared
        .cache
        .circuit(&netlist_fp, || Ok::<_, ProtocolError>(parsed))
    {
        Ok(nl) => nl,
        Err(_) => unreachable!("builder is infallible"),
    };

    let header = |cache: CacheOutcome, wall_us: u64| ResponseHeader {
        cache,
        netlist_fp: netlist_fp.clone(),
        config_fp: config_fp.clone(),
        wall_us,
    };

    match shared.cache.lookup(&key) {
        Lookup::Hit(body) => {
            atspeed_trace::info!("serve", "cache hit";
                job = job_seq, circuit = request.name, netlist_fp = netlist_fp,
                config_fp = config_fp);
            JobReply::Ok {
                header: header(CacheOutcome::Hit, elapsed_us(start)),
                body,
            }
        }
        Lookup::Compute => {
            // Per-job telemetry: a private span tree and a private
            // simulation-stats scope, so concurrent jobs don't interleave.
            let tracer = Arc::new(Tracer::new());
            if shared.cfg.trace_dir.is_some() {
                tracer.set_enabled(true);
            }
            let outcome = {
                let _span_scope = atspeed_trace::scope(tracer.clone());
                let stats_scope = stats::scoped();
                let run = catch_unwind(AssertUnwindSafe(|| {
                    Pipeline::from_config(&nl, &request.config).run()
                }));
                (run, stats_scope.report())
            };
            let (run, report) = outcome;
            match run {
                Ok(Ok(result)) => {
                    let body = encode_result(&result, nl.num_pis()).into_bytes();
                    let body = shared.cache.fulfill(&key, body);
                    let wall_us = elapsed_us(start);
                    write_job_telemetry(shared, request, job_seq, wall_us, &report, &tracer);
                    atspeed_trace::info!("serve", "job computed";
                        job = job_seq, circuit = request.name, wall_us = wall_us,
                        body_bytes = body.len());
                    JobReply::Ok {
                        header: header(CacheOutcome::Miss, wall_us),
                        body,
                    }
                }
                Ok(Err(e)) => {
                    shared.cache.abandon(&key);
                    shared.jobs_failed.fetch_add(1, Ordering::SeqCst);
                    atspeed_trace::warn!("serve", "job failed";
                        job = job_seq, circuit = request.name, error = e.to_string());
                    JobReply::Failed(format!("pipeline failed: {e}"))
                }
                Err(panic) => {
                    shared.cache.abandon(&key);
                    shared.jobs_failed.fetch_add(1, Ordering::SeqCst);
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_owned());
                    atspeed_trace::error!("serve", "job panicked";
                        job = job_seq, circuit = request.name, panic = msg);
                    JobReply::Failed(format!("job panicked: {msg}"))
                }
            }
        }
    }
}

/// Appends the per-job history record and writes the per-job trace, when
/// configured. Telemetry failures are logged, never fatal to the job.
fn write_job_telemetry(
    shared: &Shared,
    request: &SubmitRequest,
    job_seq: u64,
    wall_us: u64,
    report: &stats::SimReport,
    tracer: &Tracer,
) {
    if let Some(path) = &shared.cfg.history {
        let derived = DerivedMetrics::compute(report, &atspeed_trace::metrics::global().snapshot());
        let mut record = RunRecord::for_current_process();
        record.command = format!("serve job {} seed={}", request.name, request.config.seed);
        record.config_fingerprint = fingerprint(&[request.config.canonical_lines()]);
        record.wall_us = wall_us;
        record.peak_rss_bytes = derived.peak_rss_bytes;
        record.derived = derived.pairs();
        if let Err(e) = record.append(path) {
            atspeed_trace::warn!("serve", "failed to append job history";
                job = job_seq, error = e.to_string());
        }
    }
    if let Some(dir) = &shared.cfg.trace_dir {
        let path = dir.join(format!("job-{job_seq}-{}.json", request.name));
        let write = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&path, tracer.chrome_trace_json()));
        if let Err(e) = write {
            atspeed_trace::warn!("serve", "failed to write job trace";
                job = job_seq, error = e.to_string());
        }
    }
}

fn elapsed_us(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}
