//! Deterministic synthetic sequential circuit generation.
//!
//! The real ISCAS-89 and ITC-99 netlists evaluated in the paper are
//! distribution-restricted, so the [catalog](crate::catalog) instantiates
//! *interface-faithful* synthetic stand-ins through this module: circuits
//! with the exact flip-flop count (the quantity the paper's clock-cycle cost
//! model depends on), the real primary-input/-output counts, and a comparable
//! amount of random combinational logic.
//!
//! The generator is fully deterministic for a given [`SynthSpec`] (including
//! its seed) and guarantees the structural properties the downstream
//! algorithms rely on:
//!
//! - acyclic combinational core (constructed in topological order);
//! - every flip-flop sits on a feedback path (its Q output is consumed, its
//!   D input is a gate output);
//! - bounded fanin (≤ 4), mixed gate kinds, reconvergent fanout;
//! - almost every gate output is observable (consumed by another gate, a
//!   flip-flop, or a primary output), keeping fault coverages high as in the
//!   real benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CircuitError, GateKind, Netlist, NetlistBuilder};

/// Parameters for [`generate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthSpec {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs (must be ≥ 1).
    pub num_pis: usize,
    /// Number of primary outputs (must be ≥ 1).
    pub num_pos: usize,
    /// Number of D flip-flops.
    pub num_ffs: usize,
    /// Number of combinational gates (must be ≥ `num_pos + num_ffs`).
    pub num_gates: usize,
    /// Target combinational depth. `0` selects the legacy pool-based
    /// generator (bit-for-bit identical output to before this field
    /// existed); any positive value selects the layered generator, which
    /// distributes the gates over roughly this many levels and scales to
    /// 100k+-gate circuits.
    pub layers: usize,
    /// Number of high-fanout hub nets (layered generator only). `0` keeps
    /// fanout roughly uniform; a positive value promotes this many evenly
    /// spaced gate outputs into a hub set that input selection draws from
    /// preferentially, producing the long-tailed fanout distribution of
    /// real netlists.
    pub fanout_hubs: usize,
    /// RNG seed; equal specs generate identical circuits.
    pub seed: u64,
}

impl SynthSpec {
    /// Convenience constructor (legacy, non-layered generator).
    pub fn new(
        name: impl Into<String>,
        num_pis: usize,
        num_pos: usize,
        num_ffs: usize,
        num_gates: usize,
        seed: u64,
    ) -> Self {
        SynthSpec {
            name: name.into(),
            num_pis,
            num_pos,
            num_ffs,
            num_gates,
            layers: 0,
            fanout_hubs: 0,
            seed,
        }
    }

    /// Returns the spec with a target combinational depth, switching to the
    /// layered generator (see [`SynthSpec::layers`]).
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Returns the spec with a hub count for the layered generator's fanout
    /// distribution (see [`SynthSpec::fanout_hubs`]).
    pub fn with_fanout_hubs(mut self, hubs: usize) -> Self {
        self.fanout_hubs = hubs;
        self
    }

    /// Whether the spec satisfies the generator's structural constraints
    /// (`num_pis ≥ 1`, `num_pos ≥ 1`, `num_gates ≥ num_pos + num_ffs`).
    pub fn is_valid(&self) -> bool {
        self.num_pis >= 1 && self.num_pos >= 1 && self.num_gates >= self.num_pos + self.num_ffs
    }

    /// Strictly smaller valid variants of this spec, most aggressive first
    /// — halvings before single decrements, gates before flip-flops before
    /// interface pins.
    ///
    /// This is the shrinking hook for differential-test minimizers:
    /// [`generate`] is deterministic in the spec, so a failing case shrinks
    /// in *generator-parameter space* — try each candidate, keep the first
    /// that still fails, repeat until none does. Every candidate satisfies
    /// [`SynthSpec::is_valid`] and so feeds straight back into [`generate`].
    pub fn shrink_candidates(&self) -> Vec<SynthSpec> {
        let mut out: Vec<SynthSpec> = Vec::new();
        let mut consider = |s: SynthSpec| {
            if s.is_valid() && !out.contains(&s) {
                out.push(s);
            }
        };
        let with = |f: &dyn Fn(&mut SynthSpec)| {
            let mut s = self.clone();
            f(&mut s);
            s
        };
        let gate_floor = (self.num_pos + self.num_ffs).max(1);
        for gates in [self.num_gates / 2, self.num_gates.saturating_sub(1)] {
            if gates >= gate_floor && gates < self.num_gates {
                consider(with(&|s| s.num_gates = gates));
            }
        }
        for ffs in [self.num_ffs / 2, self.num_ffs.saturating_sub(1)] {
            if ffs < self.num_ffs {
                consider(with(&|s| s.num_ffs = ffs));
            }
        }
        for pis in [self.num_pis / 2, self.num_pis.saturating_sub(1)] {
            if pis >= 1 && pis < self.num_pis {
                consider(with(&|s| s.num_pis = pis));
            }
        }
        for pos in [self.num_pos / 2, self.num_pos.saturating_sub(1)] {
            if pos >= 1 && pos < self.num_pos {
                consider(with(&|s| s.num_pos = pos));
            }
        }
        // Shrinking `layers` to 0 falls back to the legacy generator, which
        // is still a valid (and simpler) circuit for the same counts.
        for layers in [self.layers / 2, self.layers.saturating_sub(1)] {
            if layers < self.layers {
                consider(with(&|s| s.layers = layers));
            }
        }
        for hubs in [self.fanout_hubs / 2, self.fanout_hubs.saturating_sub(1)] {
            if hubs < self.fanout_hubs {
                consider(with(&|s| s.fanout_hubs = hubs));
            }
        }
        out
    }
}

/// Generates a deterministic random sequential circuit from `spec`.
///
/// # Errors
///
/// Returns an error if the spec is degenerate (no inputs) or the internal
/// construction violates netlist invariants (which would be a bug).
///
/// # Examples
///
/// ```
/// use atspeed_circuit::synth::{generate, SynthSpec};
///
/// let nl = generate(&SynthSpec::new("demo", 3, 2, 5, 40, 7))?;
/// assert_eq!(nl.num_ffs(), 5);
/// // `num_gates` random-logic gates plus output buffers and observation gates.
/// assert!(nl.num_gates() >= 40);
/// # Ok::<(), atspeed_circuit::CircuitError>(())
/// ```
pub fn generate(spec: &SynthSpec) -> Result<Netlist, CircuitError> {
    if spec.layers > 0 {
        return generate_layered(spec);
    }
    let mut rng = StdRng::seed_from_u64(spec.seed ^ mix_seed(spec));
    let mut b = NetlistBuilder::new(spec.name.clone());

    let pi_names: Vec<String> = (0..spec.num_pis).map(|i| format!("pi{i}")).collect();
    for n in &pi_names {
        b.input(n);
    }
    let q_names: Vec<String> = (0..spec.num_ffs).map(|i| format!("q{i}")).collect();
    let d_names: Vec<String> = (0..spec.num_ffs).map(|i| format!("d{i}")).collect();
    for i in 0..spec.num_ffs {
        b.dff(&q_names[i], &d_names[i]);
    }

    // Sources available to gate inputs: PIs and FF outputs, then gate
    // outputs as they are created (guaranteeing acyclicity).
    let mut pool: Vec<String> = pi_names.iter().chain(q_names.iter()).cloned().collect();
    let n_sources = pool.len();
    let mut consumed = vec![0usize; spec.num_gates];
    let mut source_used = vec![false; n_sources];

    let gate_names: Vec<String> = (0..spec.num_gates).map(|i| format!("w{i}")).collect();
    for gname in &gate_names {
        let kind = pick_kind(&mut rng);
        let fanin = match kind {
            GateKind::Not | GateKind::Buf => 1,
            GateKind::Xor | GateKind::Xnor => 2,
            // Mostly 2-input gates; wide gates over correlated random
            // signals breed redundant (untestable) faults.
            _ => {
                if rng.gen_bool(0.2) {
                    3
                } else {
                    2
                }
            }
        };
        let mut ins: Vec<usize> = Vec::with_capacity(fanin);
        for _ in 0..fanin {
            // Mild locality bias: prefer recent nets so depth grows, with a
            // wide window and frequent long reach-backs — tight windows
            // correlate inputs and create redundant logic.
            let idx = if pool.len() > n_sources && rng.gen_bool(0.5) {
                let lo = pool.len().saturating_sub(64.max(pool.len() / 2));
                rng.gen_range(lo..pool.len())
            } else {
                rng.gen_range(0..pool.len())
            };
            if !ins.contains(&idx) {
                ins.push(idx);
            }
        }
        if ins.is_empty() {
            ins.push(rng.gen_range(0..pool.len()));
        }
        let fanin = ins.len();
        let kind = if fanin == 1 {
            if rng.gen_bool(0.5) {
                GateKind::Not
            } else {
                GateKind::Buf
            }
        } else {
            kind
        };
        let in_names: Vec<&str> = ins.iter().map(|&i| pool[i].as_str()).collect();
        b.gate(kind, gname, &in_names);
        for &i in &ins {
            if i >= n_sources {
                consumed[i - n_sources] += 1;
            } else {
                source_used[i] = true;
            }
        }
        pool.push(gname.clone());
    }

    // Wire FF D inputs and primary outputs, preferring so-far-unconsumed
    // gate outputs so that almost all logic is observable.
    let mut unconsumed: Vec<usize> = (0..spec.num_gates)
        .rev()
        .filter(|&gi| consumed[gi] == 0)
        .collect();
    let take = |rng: &mut StdRng, unconsumed: &mut Vec<usize>| -> usize {
        if let Some(gi) = unconsumed.pop() {
            gi
        } else {
            // All gates consumed; reuse a random late gate output.
            let lo = spec.num_gates.saturating_sub(1 + spec.num_gates / 3);
            rng.gen_range(lo..spec.num_gates)
        }
    };
    for i in 0..spec.num_ffs {
        if spec.num_gates == 0 {
            // Degenerate: feed the FF from a PI.
            let src = pi_names[i % spec.num_pis].clone();
            b.gate(GateKind::Buf, &d_names[i], &[&src]);
            continue;
        }
        // Every D input goes through an AND/OR-class gate with a primary
        // input on one pin: a controlling value on that pin forces the
        // flip-flop to a known state, making the circuit initializable from
        // the unknown state by input sequences alone (as the real ISCAS-89
        // and ITC-99 benchmarks are). A buffer-fed flip-flop inside an
        // XOR-rich feedback cone would hold X forever under 3-valued
        // simulation, which would starve every scan-less test sequence.
        let gi = take(&mut rng, &mut unconsumed);
        let pi = &pi_names[rng.gen_range(0..spec.num_pis)];
        let kind = match rng.gen_range(0..4) {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            _ => GateKind::Nor,
        };
        b.gate(kind, &d_names[i], &[&gate_names[gi], pi]);
    }
    let mut po_sources: Vec<String> = Vec::with_capacity(spec.num_pos);
    for _ in 0..spec.num_pos {
        let src = if spec.num_gates == 0 {
            pi_names[0].clone()
        } else {
            gate_names[take(&mut rng, &mut unconsumed)].clone()
        };
        po_sources.push(src);
    }
    // Any still-unconsumed gate outputs, primary inputs, or flip-flop
    // outputs get absorbed into an observation XOR tree feeding the first
    // primary output, so no logic is dead and every source is sensitizable.
    let unused_sources: Vec<String> = (0..n_sources)
        .filter(|&i| !source_used[i])
        .map(|i| pool[i].clone())
        .collect();
    if (!unconsumed.is_empty() || !unused_sources.is_empty()) && spec.num_pos > 0 {
        let mut obs_inputs: Vec<String> = vec![po_sources[0].clone()];
        obs_inputs.extend(unconsumed.drain(..).map(|gi| gate_names[gi].clone()));
        obs_inputs.extend(unused_sources);
        let mut level = 0usize;
        while obs_inputs.len() > 1 {
            let mut next = Vec::with_capacity(obs_inputs.len().div_ceil(4));
            for (ci, chunk) in obs_inputs.chunks(4).enumerate() {
                if chunk.len() == 1 {
                    next.push(chunk[0].clone());
                    continue;
                }
                let name = format!("obs{level}_{ci}");
                let refs: Vec<&str> = chunk.iter().map(String::as_str).collect();
                b.gate(GateKind::Xor, &name, &refs);
                next.push(name);
            }
            obs_inputs = next;
            level += 1;
        }
        po_sources[0] = obs_inputs.pop().expect("reduction leaves one net");
    }
    for (i, src) in po_sources.iter().enumerate() {
        let name = format!("po{i}");
        b.gate(GateKind::Buf, &name, &[src]);
        b.output(&name);
    }

    b.finish()
}

/// The layered generator behind [`generate`] for `spec.layers > 0`.
///
/// Where the legacy generator keeps a growing pool of net *names* and
/// re-interns every connection, this path works purely on dense net
/// indices through the builder's id-based API, interning each name exactly
/// once, and pre-reserves every table — generating a 100k-gate circuit is
/// a few large allocations, not hundreds of thousands of small ones.
///
/// Structure: the `num_gates` random-logic gates are dealt across
/// `spec.layers` layers. Each gate draws its inputs preferentially from
/// the immediately preceding layer (so combinational depth tracks the
/// layer count), sometimes from a hub set (producing a long-tailed fanout
/// distribution when `fanout_hubs > 0`), and otherwise uniformly from
/// everything earlier. The structural guarantees match the legacy path:
/// acyclic by construction, every flip-flop D input goes through an
/// AND/OR-class gate with a primary-input pin (initializability), and
/// unconsumed outputs are absorbed into an observation XOR tree.
fn generate_layered(spec: &SynthSpec) -> Result<Netlist, CircuitError> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ mix_seed(spec));
    // Observation-tree gates are bounded by unconsumed/3 + 1 per 4-ary
    // round; half the gate count is a comfortable overestimate.
    let extra = spec.num_gates / 2 + spec.num_pos + spec.num_ffs + 4;
    let est_nets = spec.num_pis + 2 * spec.num_ffs + spec.num_gates + extra;
    let mut b = NetlistBuilder::with_capacity(
        spec.name.clone(),
        est_nets,
        spec.num_gates + extra,
        spec.num_ffs,
    );

    let pi_ids: Vec<usize> = (0..spec.num_pis)
        .map(|i| b.net(&format!("pi{i}")))
        .collect();
    for &id in &pi_ids {
        b.input_net(id);
    }
    let q_ids: Vec<usize> = (0..spec.num_ffs).map(|i| b.net(&format!("q{i}"))).collect();
    let d_ids: Vec<usize> = (0..spec.num_ffs).map(|i| b.net(&format!("d{i}"))).collect();
    for i in 0..spec.num_ffs {
        b.dff_nets(q_ids[i], d_ids[i]);
    }

    // `all[k]` is the builder net id of the k-th available source: PIs and
    // FF outputs first, then gate outputs as they are created (guaranteeing
    // acyclicity). Gate `gi` sits at `all[n_sources + gi]`.
    let n_sources = spec.num_pis + spec.num_ffs;
    let mut all: Vec<usize> = Vec::with_capacity(n_sources + spec.num_gates);
    all.extend(pi_ids.iter().chain(q_ids.iter()).copied());
    let mut source_used = vec![false; n_sources];
    let mut consumed = vec![0u32; spec.num_gates];
    // Hub set: indices into `all` that input selection draws from
    // preferentially. Seeded with one source so layer-0 gates also see it.
    let mut hubs: Vec<usize> = Vec::with_capacity(spec.fanout_hubs.min(spec.num_gates) + 1);
    if spec.fanout_hubs > 0 {
        hubs.push(rng.gen_range(0..n_sources));
    }

    let layers = spec.layers.clamp(1, spec.num_gates.max(1));
    let mut ins: Vec<usize> = Vec::with_capacity(4);
    let mut in_ids: Vec<usize> = Vec::with_capacity(4);
    let mut layer_lo = 0usize; // span of the previous layer within `all`
    let mut layer_hi = n_sources;
    let mut gi = 0usize;
    for l in 0..layers {
        // Deal the gates evenly; earlier layers take the remainder.
        let count = spec.num_gates / layers + usize::from(l < spec.num_gates % layers);
        let built_lo = all.len();
        for _ in 0..count {
            let kind = pick_kind(&mut rng);
            let fanin = match kind {
                GateKind::Not | GateKind::Buf => 1,
                GateKind::Xor | GateKind::Xnor => 2,
                _ => {
                    if rng.gen_bool(0.2) {
                        3
                    } else {
                        2
                    }
                }
            };
            ins.clear();
            for _ in 0..fanin {
                let r = rng.gen_range(0..100u32);
                let idx = if r < 55 && layer_hi > layer_lo {
                    // Previous layer: keeps depth tracking the layer count.
                    rng.gen_range(layer_lo..layer_hi)
                } else if r < 75 && !hubs.is_empty() {
                    hubs[rng.gen_range(0..hubs.len())]
                } else {
                    rng.gen_range(0..all.len())
                };
                if !ins.contains(&idx) {
                    ins.push(idx);
                }
            }
            if ins.is_empty() {
                ins.push(rng.gen_range(0..all.len()));
            }
            let kind = if ins.len() == 1 {
                if rng.gen_bool(0.5) {
                    GateKind::Not
                } else {
                    GateKind::Buf
                }
            } else {
                kind
            };
            for &idx in &ins {
                if idx >= n_sources {
                    consumed[idx - n_sources] += 1;
                } else {
                    source_used[idx] = true;
                }
            }
            in_ids.clear();
            in_ids.extend(ins.iter().map(|&idx| all[idx]));
            let out = b.net(&format!("w{gi}"));
            b.gate_nets(kind, out, &in_ids);
            // Promote evenly spaced gate outputs into the hub set, ending
            // with exactly `fanout_hubs` hubs spread across all layers.
            if spec.fanout_hubs > 0
                && gi * spec.fanout_hubs / spec.num_gates
                    != (gi + 1) * spec.fanout_hubs / spec.num_gates
            {
                hubs.push(all.len());
            }
            all.push(out);
            gi += 1;
        }
        layer_lo = built_lo;
        layer_hi = all.len();
    }
    debug_assert_eq!(gi, spec.num_gates);

    // Wire FF D inputs and primary outputs from so-far-unconsumed gate
    // outputs, exactly as the legacy generator does (see its comments for
    // the initializability rationale).
    let mut unconsumed: Vec<usize> = (0..spec.num_gates)
        .rev()
        .filter(|&gi| consumed[gi] == 0)
        .collect();
    let take = |rng: &mut StdRng, unconsumed: &mut Vec<usize>| -> usize {
        if let Some(gi) = unconsumed.pop() {
            gi
        } else {
            let lo = spec.num_gates.saturating_sub(1 + spec.num_gates / 3);
            rng.gen_range(lo..spec.num_gates)
        }
    };
    for i in 0..spec.num_ffs {
        if spec.num_gates == 0 {
            let src = pi_ids[i % spec.num_pis];
            b.gate_nets(GateKind::Buf, d_ids[i], &[src]);
            continue;
        }
        let gi = take(&mut rng, &mut unconsumed);
        let pi = pi_ids[rng.gen_range(0..spec.num_pis)];
        let kind = match rng.gen_range(0..4) {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            _ => GateKind::Nor,
        };
        b.gate_nets(kind, d_ids[i], &[all[n_sources + gi], pi]);
    }
    let mut po_sources: Vec<usize> = Vec::with_capacity(spec.num_pos);
    for _ in 0..spec.num_pos {
        let src = if spec.num_gates == 0 {
            pi_ids[0]
        } else {
            all[n_sources + take(&mut rng, &mut unconsumed)]
        };
        po_sources.push(src);
    }
    let unused_sources: Vec<usize> = (0..n_sources)
        .filter(|&i| !source_used[i])
        .map(|i| all[i])
        .collect();
    if (!unconsumed.is_empty() || !unused_sources.is_empty()) && spec.num_pos > 0 {
        let mut obs_inputs: Vec<usize> =
            Vec::with_capacity(1 + unconsumed.len() + unused_sources.len());
        obs_inputs.push(po_sources[0]);
        obs_inputs.extend(unconsumed.drain(..).map(|gi| all[n_sources + gi]));
        obs_inputs.extend(unused_sources);
        let mut level = 0usize;
        while obs_inputs.len() > 1 {
            let mut next = Vec::with_capacity(obs_inputs.len().div_ceil(4));
            for (ci, chunk) in obs_inputs.chunks(4).enumerate() {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                    continue;
                }
                let out = b.net(&format!("obs{level}_{ci}"));
                b.gate_nets(GateKind::Xor, out, chunk);
                next.push(out);
            }
            obs_inputs = next;
            level += 1;
        }
        po_sources[0] = obs_inputs.pop().expect("reduction leaves one net");
    }
    for (i, &src) in po_sources.iter().enumerate() {
        let out = b.net(&format!("po{i}"));
        b.gate_nets(GateKind::Buf, out, &[src]);
        b.output_net(out);
    }

    b.finish()
}

// Mix the structural parameters into the seed so that two specs differing
// only in, say, gate count do not share a prefix of random decisions. The
// layered parameters are mixed in only when set, so legacy specs keep
// their historical random streams.
fn mix_seed(spec: &SynthSpec) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in &[
        spec.num_pis as u64,
        spec.num_pos as u64,
        spec.num_ffs as u64,
        spec.num_gates as u64,
    ] {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if spec.layers > 0 || spec.fanout_hubs > 0 {
        for &x in &[spec.layers as u64, spec.fanout_hubs as u64] {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn pick_kind(rng: &mut StdRng) -> GateKind {
    // Weighted mix: NAND/NOR-leaning like the benchmark suites, with a
    // substantial XOR share — XOR-class gates have no controlling value,
    // which keeps random logic observable and the redundancy rate low.
    match rng.gen_range(0..100) {
        0..=18 => GateKind::Nand,
        19..=37 => GateKind::Nor,
        38..=49 => GateKind::And,
        50..=61 => GateKind::Or,
        62..=79 => GateKind::Xor,
        80..=91 => GateKind::Xnor,
        92..=95 => GateKind::Not,
        _ => GateKind::Buf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Driver, Sink};

    fn spec() -> SynthSpec {
        SynthSpec::new("t", 4, 3, 6, 60, 42)
    }

    #[test]
    fn respects_interface_counts() {
        let nl = generate(&spec()).unwrap();
        assert_eq!(nl.num_pis(), 4);
        assert_eq!(nl.num_pos(), 3);
        assert_eq!(nl.num_ffs(), 6);
        // num_gates counts random logic; buffers/observation gates are extra.
        assert!(nl.num_gates() >= 60);
    }

    #[test]
    fn is_deterministic() {
        let a = generate(&spec()).unwrap();
        let b = generate(&spec()).unwrap();
        assert_eq!(a.num_nets(), b.num_nets());
        for (ga, gb) in a.gates().iter().zip(b.gates().iter()) {
            assert_eq!(ga, gb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&spec()).unwrap();
        let mut s = spec();
        s.seed = 43;
        let b = generate(&s).unwrap();
        let same = a.num_nets() == b.num_nets()
            && a.gates().iter().zip(b.gates().iter()).all(|(x, y)| x == y);
        assert!(!same, "different seeds produced identical circuits");
    }

    #[test]
    fn all_ffs_fed_by_gates() {
        let nl = generate(&spec()).unwrap();
        for ff in nl.ffs() {
            assert!(matches!(nl.driver(ff.d()), Driver::Gate(_)));
        }
    }

    #[test]
    fn no_dead_logic() {
        let nl = generate(&spec()).unwrap();
        for g in nl.gates() {
            let sinks = nl.fanouts(g.output());
            let observable = !sinks.is_empty() || nl.pos().contains(&g.output());
            assert!(observable, "gate output {:?} is dead", g.output());
        }
        // FF outputs must be consumed somewhere (feedback property).
        for ff in nl.ffs() {
            assert!(
                !nl.fanouts(ff.q()).is_empty(),
                "flip-flop {:?} output unused",
                ff.q()
            );
        }
    }

    #[test]
    fn outputs_are_observable_sinks() {
        let nl = generate(&spec()).unwrap();
        for &po in nl.pos() {
            assert!(nl.fanouts(po).iter().any(|s| matches!(s, Sink::Po(_))));
        }
    }

    #[test]
    fn handles_tiny_specs() {
        let nl = generate(&SynthSpec::new("tiny", 1, 1, 1, 4, 0)).unwrap();
        assert_eq!(nl.num_ffs(), 1);
        assert_eq!(nl.num_pis(), 1);
    }

    #[test]
    fn handles_many_ffs_few_gates() {
        let nl = generate(&SynthSpec::new("ffheavy", 2, 1, 20, 25, 1)).unwrap();
        assert_eq!(nl.num_ffs(), 20);
    }

    #[test]
    fn shrink_candidates_are_valid_and_strictly_smaller() {
        let size = |s: &SynthSpec| {
            s.num_pis + s.num_pos + s.num_ffs + s.num_gates + s.layers + s.fanout_hubs
        };
        for base in [spec(), spec().with_layers(6).with_fanout_hubs(3)] {
            let candidates = base.shrink_candidates();
            assert!(!candidates.is_empty());
            for c in &candidates {
                assert!(c.is_valid(), "{c:?}");
                assert!(size(c) < size(&base), "{c:?} is not smaller");
                assert_eq!(c.seed, base.seed, "shrinking must not change the seed");
                generate(c).expect("every shrink candidate generates");
            }
            // Shrinking terminates: repeated first-candidate steps reach a
            // spec with no candidates.
            let mut cur = base;
            for _ in 0..10_000 {
                match cur.shrink_candidates().into_iter().next() {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            assert!(cur.shrink_candidates().is_empty(), "stuck at {cur:?}");
        }
    }

    #[test]
    fn layered_mode_respects_interface_counts_and_depth() {
        let s = spec().with_layers(12);
        let nl = generate(&s).unwrap();
        assert_eq!(nl.num_pis(), 4);
        assert_eq!(nl.num_pos(), 3);
        assert_eq!(nl.num_ffs(), 6);
        assert!(nl.num_gates() >= 60);
        // Depth tracks the layer count (inputs are only *biased* to the
        // previous layer, so allow slack below the target).
        assert!(
            nl.max_level() as usize >= 12 / 2,
            "max level {} too shallow for 12 layers",
            nl.max_level()
        );
    }

    #[test]
    fn layered_mode_is_deterministic_and_seed_sensitive() {
        let s = spec().with_layers(8).with_fanout_hubs(4);
        let a = generate(&s).unwrap();
        let b = generate(&s).unwrap();
        assert_eq!(a.num_nets(), b.num_nets());
        assert!(a.gates().iter().zip(b.gates().iter()).all(|(x, y)| x == y));
        let mut s2 = s.clone();
        s2.seed ^= 1;
        let c = generate(&s2).unwrap();
        let same = a.num_nets() == c.num_nets()
            && a.gates().iter().zip(c.gates().iter()).all(|(x, y)| x == y);
        assert!(!same, "different seeds produced identical layered circuits");
    }

    #[test]
    fn layered_mode_keeps_structural_guarantees() {
        let nl = generate(&spec().with_layers(10).with_fanout_hubs(5)).unwrap();
        for ff in nl.ffs() {
            assert!(matches!(nl.driver(ff.d()), Driver::Gate(_)));
            assert!(!nl.fanouts(ff.q()).is_empty());
        }
        for g in nl.gates() {
            let observable = !nl.fanouts(g.output()).is_empty() || nl.pos().contains(&g.output());
            assert!(observable, "gate output {:?} is dead", g.output());
        }
    }

    #[test]
    fn fanout_hubs_skew_the_fanout_distribution() {
        let uniform = generate(&SynthSpec::new("h", 6, 2, 8, 400, 9).with_layers(10)).unwrap();
        let hubby = generate(
            &SynthSpec::new("h", 6, 2, 8, 400, 9)
                .with_layers(10)
                .with_fanout_hubs(4),
        )
        .unwrap();
        let max_fanout =
            |nl: &crate::Netlist| nl.net_ids().map(|n| nl.fanouts(n).len()).max().unwrap();
        assert!(
            max_fanout(&hubby) > 2 * max_fanout(&uniform),
            "hubs {} vs uniform {}",
            max_fanout(&hubby),
            max_fanout(&uniform)
        );
    }

    #[test]
    fn legacy_mode_is_unchanged_by_the_layered_fields() {
        // `layers == 0` must keep the historical random stream: the golden
        // fingerprint below was computed before the layered generator
        // existed and must never change.
        let nl = generate(&spec()).unwrap();
        let fp: usize = nl
            .gates()
            .iter()
            .map(|g| g.inputs().iter().map(|n| n.index()).sum::<usize>() + g.output().index())
            .sum();
        assert_eq!(
            (nl.num_nets(), nl.num_gates(), fp),
            (83, 73, 7800),
            "legacy generator output drifted"
        );
    }

    #[test]
    fn minimal_specs_do_not_shrink_below_validity() {
        let tiny = SynthSpec::new("tiny", 1, 1, 0, 1, 3);
        assert!(tiny.is_valid());
        assert!(tiny.shrink_candidates().is_empty());
        assert!(!SynthSpec::new("bad", 0, 1, 0, 1, 0).is_valid());
        assert!(!SynthSpec::new("bad", 1, 1, 5, 3, 0).is_valid());
    }
}
