//! Error type for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating, or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A net is driven by more than one source.
    MultipleDrivers {
        /// Name of the multiply-driven net.
        net: String,
    },
    /// A net is referenced as a gate/FF input or primary output but never
    /// driven by a primary input, gate, or flip-flop.
    Undriven {
        /// Name of the undriven net.
        net: String,
    },
    /// The combinational core (gates only, flip-flops cut) contains a cycle.
    CombinationalCycle {
        /// Name of one net on the cycle.
        net: String,
    },
    /// A gate was declared with an input count its kind does not allow.
    BadFanin {
        /// Output net name of the offending gate.
        net: String,
        /// Declared number of inputs.
        got: usize,
    },
    /// The netlist has no primary inputs.
    NoInputs,
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A catalog lookup used an unknown benchmark name.
    UnknownBenchmark {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            CircuitError::Undriven { net } => write!(f, "net `{net}` is never driven"),
            CircuitError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net `{net}`")
            }
            CircuitError::BadFanin { net, got } => {
                write!(f, "gate driving `{net}` has invalid fanin {got}")
            }
            CircuitError::NoInputs => write!(f, "netlist has no primary inputs"),
            CircuitError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            CircuitError::UnknownBenchmark { name } => {
                write!(f, "unknown benchmark circuit `{name}`")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = CircuitError::MultipleDrivers { net: "x".into() };
        assert_eq!(e.to_string(), "net `x` has multiple drivers");
        let e = CircuitError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CircuitError>();
    }
}
