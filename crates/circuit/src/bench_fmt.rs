//! ISCAS-89 `.bench` format parser and writer.
//!
//! The `.bench` format is the lingua franca of the ISCAS-85/89 and ITC-99
//! benchmark distributions:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = NAND(G0, G1)
//! G7  = DFF(G10)
//! ```
//!
//! Because the original benchmark netlists are distribution-restricted, this
//! workspace ships only the tiny, widely-published **s27** circuit (see
//! [`s27`]) as a golden fixture; users holding real ISCAS-89/ITC-99 files can
//! load them through [`parse`].

use crate::{CircuitError, GateKind, Netlist, NetlistBuilder};

/// Parses a `.bench` netlist from text.
///
/// Recognized statements: `INPUT(name)`, `OUTPUT(name)`,
/// `out = KIND(in1, in2, ...)` with `KIND` one of the gate kinds or `DFF`.
/// `#` starts a comment; blank lines are skipped.
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] on malformed lines, or any validation
/// error from [`NetlistBuilder::finish`].
///
/// # Examples
///
/// ```
/// let nl = atspeed_circuit::bench_fmt::parse("two_inv", "
///     INPUT(a)
///     OUTPUT(y)
///     x = NOT(a)
///     y = NOT(x)
/// ")?;
/// assert_eq!(nl.num_gates(), 2);
/// # Ok::<(), atspeed_circuit::CircuitError>(())
/// ```
pub fn parse(name: &str, text: &str) -> Result<Netlist, CircuitError> {
    // Counting pass: statements bound the table sizes, so the builder can
    // reserve once instead of regrowing per line on 100k-gate netlists.
    // Every net is introduced by exactly one statement (its driver or an
    // INPUT line), so statement count bounds net count.
    let mut stmts = 0usize;
    let mut ffs = 0usize;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        stmts += 1;
        if line.contains("DFF") || line.contains("dff") {
            ffs += 1;
        }
    }
    let mut b = NetlistBuilder::with_capacity(name, stmts, stmts.saturating_sub(ffs), ffs);
    // One scratch buffer reused across lines; `&str` slices borrow `text`.
    let mut args: Vec<&str> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: &str| CircuitError::Parse {
            line: lineno + 1,
            message: message.to_owned(),
        };
        if let Some(rest) = strip_call(line, "INPUT") {
            b.input(rest);
        } else if let Some(rest) = strip_call(line, "OUTPUT") {
            b.output(rest);
        } else if let Some(eq) = line.find('=') {
            let out = line[..eq].trim();
            if out.is_empty() {
                return Err(err("missing output name before `=`"));
            }
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| err("missing `(` in gate"))?;
            let close = rhs.rfind(')').ok_or_else(|| err("missing `)` in gate"))?;
            if close < open {
                return Err(err("mismatched parentheses"));
            }
            let func = rhs[..open].trim();
            args.clear();
            args.extend(
                rhs[open + 1..close]
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty()),
            );
            if args.is_empty() {
                return Err(err("gate has no inputs"));
            }
            if func.eq_ignore_ascii_case("DFF") {
                if args.len() != 1 {
                    return Err(err("DFF takes exactly one input"));
                }
                b.dff(out, args[0]);
            } else {
                let kind: GateKind = func
                    .parse()
                    .map_err(|_| err(&format!("unknown function `{func}`")))?;
                b.gate(kind, out, &args);
            }
        } else {
            return Err(err("unrecognized statement"));
        }
    }
    b.finish()
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line
        .get(..keyword.len())
        .filter(|p| p.eq_ignore_ascii_case(keyword))
        .map(|_| line[keyword.len()..].trim())?;
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    let inner = inner.trim();
    (!inner.is_empty()).then_some(inner)
}

/// Serializes a netlist back to `.bench` text.
///
/// The output parses back ([`parse`]) to a structurally identical circuit.
pub fn write(nl: &Netlist) -> String {
    use std::fmt::Write as _;
    // ~32 bytes per statement is a comfortable upper estimate for the
    // generated naming schemes; one reservation instead of repeated growth.
    let stmts = nl.num_pis() + nl.num_pos() + nl.num_ffs() + nl.num_gates() + 2;
    let mut out = String::with_capacity(stmts * 32);
    let _ = writeln!(out, "# {}", nl.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} D-type flipflops, {} gates",
        nl.num_pis(),
        nl.num_pos(),
        nl.num_ffs(),
        nl.num_gates()
    );
    for &pi in nl.pis() {
        let _ = writeln!(out, "INPUT({})", nl.net_name(pi));
    }
    for &po in nl.pos() {
        let _ = writeln!(out, "OUTPUT({})", nl.net_name(po));
    }
    for ff in nl.ffs() {
        let _ = writeln!(
            out,
            "{} = DFF({})",
            nl.net_name(ff.q()),
            nl.net_name(ff.d())
        );
    }
    for g in nl.gates() {
        let _ = write!(
            out,
            "{} = {}(",
            nl.net_name(g.output()),
            g.kind().bench_name()
        );
        for (i, &n) in g.inputs().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(nl.net_name(n));
        }
        out.push_str(")\n");
    }
    out
}

/// The ISCAS-89 **s27** benchmark circuit, embedded as a golden fixture.
///
/// s27 has 4 primary inputs, 1 primary output, 3 flip-flops, and 10 gates
/// (plus the published netlist's inverter ordering). It is small enough that
/// its behaviour and collapsed fault set are hand-checkable, and is used
/// throughout the workspace's tests as ground truth.
pub fn s27() -> Netlist {
    parse("s27", S27_BENCH).expect("embedded s27 netlist is valid")
}

/// The raw `.bench` text of the s27 fixture returned by [`s27`].
pub const S27_BENCH: &str = "\
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Driver, Sink};

    #[test]
    fn parses_s27_structure() {
        let nl = s27();
        assert_eq!(nl.num_pis(), 4);
        assert_eq!(nl.num_pos(), 1);
        assert_eq!(nl.num_ffs(), 3);
        assert_eq!(nl.num_gates(), 10);
    }

    #[test]
    fn round_trips_through_writer() {
        let nl = s27();
        let text = write(&nl);
        let back = parse("s27", &text).unwrap();
        assert_eq!(back.num_nets(), nl.num_nets());
        assert_eq!(back.num_gates(), nl.num_gates());
        assert_eq!(back.num_ffs(), nl.num_ffs());
        assert_eq!(back.num_pis(), nl.num_pis());
        assert_eq!(back.num_pos(), nl.num_pos());
        // Structural spot check: same driver kind for every same-named net.
        for net in nl.net_ids() {
            let other = back.find_net(nl.net_name(net)).unwrap();
            let same = matches!(
                (nl.driver(net), back.driver(other)),
                (Driver::Pi(_), Driver::Pi(_))
                    | (Driver::Gate(_), Driver::Gate(_))
                    | (Driver::Ff(_), Driver::Ff(_))
            );
            assert!(same, "driver mismatch on {}", nl.net_name(net));
        }
    }

    #[test]
    fn s27_fanout_stems() {
        let nl = s27();
        // G8 fans out to G15 and G16.
        let g8 = nl.find_net("G8").unwrap();
        assert_eq!(nl.fanouts(g8).len(), 2);
        // G11 fans out to G17 (NOT), G10 (NOR) and the DFF G6.
        let g11 = nl.find_net("G11").unwrap();
        assert_eq!(nl.fanouts(g11).len(), 3);
        assert!(nl.fanouts(g11).iter().any(|s| matches!(s, Sink::FfD(_))));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let nl = parse(
            "c",
            "# leading comment\n\nINPUT(a) # trailing\nOUTPUT(y)\ny = BUF(a)\n",
        )
        .unwrap();
        assert_eq!(nl.num_gates(), 1);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let err = parse("bad", "INPUT(a)\ny = FROB(a)\n").unwrap_err();
        match err {
            CircuitError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("FROB"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_multi_input_dff() {
        let err = parse("bad", "INPUT(a)\nINPUT(b)\nq = DFF(a, b)\nOUTPUT(q)\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 3, .. }));
    }

    #[test]
    fn rejects_statement_without_equals() {
        let err = parse("bad", "INPUT(a)\nwibble\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 2, .. }));
    }

    #[test]
    fn case_insensitive_keywords() {
        let nl = parse("c", "input(a)\noutput(y)\ny = not(a)\n").unwrap();
        assert_eq!(nl.num_pis(), 1);
        assert_eq!(nl.num_gates(), 1);
    }
}
