//! Structural circuit statistics.

use std::fmt;

use crate::{Driver, GateKind, Netlist};

/// Summary statistics of a netlist's structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub num_pis: usize,
    /// Number of primary outputs.
    pub num_pos: usize,
    /// Number of flip-flops.
    pub num_ffs: usize,
    /// Number of gates.
    pub num_gates: usize,
    /// Number of nets.
    pub num_nets: usize,
    /// Maximum combinational depth.
    pub max_level: u32,
    /// Largest gate fanin.
    pub max_fanin: usize,
    /// Largest net fanout.
    pub max_fanout: usize,
    /// Nets with fanout greater than one (fanout stems).
    pub num_stems: usize,
    /// Gate count per kind, indexed by [`GateKind::ALL`] order.
    pub gates_by_kind: [usize; 8],
}

impl CircuitStats {
    /// Computes statistics for `nl`.
    pub fn of(nl: &Netlist) -> Self {
        let mut gates_by_kind = [0usize; 8];
        let mut max_fanin = 0;
        for g in nl.gates() {
            max_fanin = max_fanin.max(g.inputs().len());
            let idx = GateKind::ALL
                .iter()
                .position(|&k| k == g.kind())
                .expect("kind in ALL");
            gates_by_kind[idx] += 1;
        }
        let mut max_fanout = 0;
        let mut num_stems = 0;
        for net in nl.net_ids() {
            let f = nl.fanouts(net).len();
            max_fanout = max_fanout.max(f);
            if f > 1 {
                num_stems += 1;
            }
        }
        CircuitStats {
            name: nl.name().to_owned(),
            num_pis: nl.num_pis(),
            num_pos: nl.num_pos(),
            num_ffs: nl.num_ffs(),
            num_gates: nl.num_gates(),
            num_nets: nl.num_nets(),
            max_level: nl.max_level(),
            max_fanin,
            max_fanout,
            num_stems,
            gates_by_kind,
        }
    }

    /// Number of nets whose driver is a primary input.
    pub fn source_nets(nl: &Netlist) -> usize {
        nl.net_ids()
            .filter(|&n| matches!(nl.driver(n), Driver::Pi(_)))
            .count()
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} PIs, {} POs, {} FFs, {} gates, {} nets",
            self.name, self.num_pis, self.num_pos, self.num_ffs, self.num_gates, self.num_nets
        )?;
        write!(
            f,
            "  depth {}, max fanin {}, max fanout {}, {} stems",
            self.max_level, self.max_fanin, self.max_fanout, self.num_stems
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_fmt::s27;

    #[test]
    fn s27_stats() {
        let st = CircuitStats::of(&s27());
        assert_eq!(st.num_pis, 4);
        assert_eq!(st.num_pos, 1);
        assert_eq!(st.num_ffs, 3);
        assert_eq!(st.num_gates, 10);
        assert_eq!(st.max_fanin, 2);
        assert!(st.max_fanout >= 2);
        assert!(st.num_stems >= 2);
        let total: usize = st.gates_by_kind.iter().sum();
        assert_eq!(total, st.num_gates);
    }

    #[test]
    fn display_mentions_name_and_counts() {
        let st = CircuitStats::of(&s27());
        let text = st.to_string();
        assert!(text.contains("s27"));
        assert!(text.contains("10 gates"));
    }

    #[test]
    fn source_nets_counts_pis() {
        assert_eq!(CircuitStats::source_nets(&s27()), 4);
    }
}
