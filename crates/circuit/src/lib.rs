//! Gate-level sequential netlists for the `atspeed` workspace.
//!
//! This crate is the structural substrate of the reproduction of
//! Pomeranz & Reddy, *"An Approach to Test Compaction for Scan Circuits that
//! Enhances At-Speed Testing"* (DAC 2001). It provides:
//!
//! - a compact, validated, immutable [`Netlist`] representation of a
//!   synchronous sequential circuit (gates + D flip-flops), built through
//!   [`NetlistBuilder`];
//! - levelization of the combinational core with cycle detection, plus fanout
//!   tables, both computed once at build time;
//! - an ISCAS-89 `.bench` [parser and writer](bench_fmt) so real benchmark
//!   netlists can be used when available;
//! - a deterministic [synthetic circuit generator](synth) and a
//!   [catalog](catalog) describing the nineteen benchmark circuits used in
//!   the paper's evaluation (their real netlists are distribution-restricted,
//!   so the catalog instantiates interface-faithful synthetic stand-ins);
//! - per-circuit [statistics](stats).
//!
//! # Example
//!
//! ```
//! use atspeed_circuit::{GateKind, NetlistBuilder};
//!
//! # fn main() -> Result<(), atspeed_circuit::CircuitError> {
//! let mut b = NetlistBuilder::new("toy");
//! b.input("a");
//! b.input("b");
//! b.dff("q", "d");
//! b.gate(GateKind::And, "d", &["a", "q"]);
//! b.gate(GateKind::Xor, "y", &["b", "q"]);
//! b.output("y");
//! let netlist = b.finish()?;
//! assert_eq!(netlist.num_ffs(), 1);
//! assert_eq!(netlist.num_gates(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_fmt;
pub mod catalog;
mod compiled;
mod error;
pub mod fuse;
mod gate;
mod id;
mod netlist;
pub mod stats;
pub mod synth;

pub use compiled::CompiledCircuit;
pub use error::CircuitError;
pub use fuse::{FusedCircuit, FusedOp};
pub use gate::GateKind;
pub use id::{FfId, GateId, NetId, PoId};
pub use netlist::{Driver, Ff, Gate, Netlist, NetlistBuilder, Sink};
