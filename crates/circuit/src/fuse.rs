//! Cone fusion over a [`CompiledCircuit`]: collapsing fanout-free cones of
//! simple gates into single evaluable *supergates* (fused units).
//!
//! A [`FusedCircuit`] partitions the gate set into **units**. Each unit is
//! either a single gate or a fanout-free cone of [`MIN_CONE`]..=[`MAX_CONE`]
//! gates whose interior nets have exactly one consumer and are never
//! observed (no primary-output or flip-flop-D sink). A unit is evaluated
//! as a straight-line micro-program over its ops (the cone's gates in
//! topological order): operands are either *external* net loads or
//! *register* references to earlier ops in the same unit, and interior
//! results never touch the net value array — only the cone root is stored.
//!
//! For units with at most [`MAX_LUT_INPUTS`] distinct external inputs, the
//! pass additionally tabulates the unit's complete ternary (0/1/X)
//! truth table — `3^k` entries, built by enumerating every input
//! combination through the cone gate by gate, so it is X-correct by
//! construction and exactly equals per-gate composition. The kernel does
//! **not** evaluate through the table (register micro-programs are faster
//! at 64-slot-word width); it is stored as the unit's functional
//! specification and used as a cross-checking oracle by the simulator's
//! tests and debug assertions.
//!
//! After a fused evaluation pass only *root* nets (and source nets) hold
//! valid values; interior nets are stale. Consumers that read arbitrary
//! nets must not run on fused results — see the simulator crate for the
//! per-engine contract.

use crate::compiled::CompiledCircuit;
use crate::gate::GateKind;
use crate::id::{GateId, NetId};

/// Minimum gate count for a multi-gate fused cone.
pub const MIN_CONE: usize = 3;
/// Maximum gate count per fused cone.
pub const MAX_CONE: usize = 6;
/// Maximum distinct external inputs for which a ternary LUT is tabulated.
pub const MAX_LUT_INPUTS: usize = 4;

/// Sentinel for "no unit" in net-indexed unit maps.
pub const NO_UNIT: u32 = u32::MAX;

/// Operand arguments with this bit set refer to an earlier op (register)
/// of the same unit; otherwise the argument is a [`NetId`] index.
const REG_BIT: u32 = 1 << 31;

/// One original gate inside a fused unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedOp {
    /// The gate's function.
    pub kind: GateKind,
    /// The original gate.
    pub gate: GateId,
    /// The gate's output net (stored only when this op is the unit root).
    pub out: NetId,
}

/// Ternary LUT entry encoding: known-0.
pub const T0: u8 = 0;
/// Ternary LUT entry encoding: known-1.
pub const T1: u8 = 1;
/// Ternary LUT entry encoding: unknown (X).
pub const TX: u8 = 2;

#[inline]
fn t_and(a: u8, b: u8) -> u8 {
    if a == T0 || b == T0 {
        T0
    } else if a == T1 && b == T1 {
        T1
    } else {
        TX
    }
}

#[inline]
fn t_or(a: u8, b: u8) -> u8 {
    if a == T1 || b == T1 {
        T1
    } else if a == T0 && b == T0 {
        T0
    } else {
        TX
    }
}

#[inline]
fn t_xor(a: u8, b: u8) -> u8 {
    if a == TX || b == TX {
        TX
    } else {
        a ^ b
    }
}

#[inline]
fn t_not(a: u8) -> u8 {
    match a {
        T0 => T1,
        T1 => T0,
        _ => TX,
    }
}

/// Evaluates one gate over ternary-encoded inputs (the LUT builder's
/// reference semantics — identical truth tables to the simulator's 3-valued
/// logic by inspection of both definitions).
fn t_eval(kind: GateKind, inputs: &[u8]) -> u8 {
    let first = inputs[0];
    let base = match kind {
        GateKind::And | GateKind::Nand => inputs[1..].iter().fold(first, |a, &b| t_and(a, b)),
        GateKind::Or | GateKind::Nor => inputs[1..].iter().fold(first, |a, &b| t_or(a, b)),
        GateKind::Xor | GateKind::Xnor => inputs[1..].iter().fold(first, |a, &b| t_xor(a, b)),
        GateKind::Not | GateKind::Buf => first,
    };
    if kind.inverts() {
        t_not(base)
    } else {
        base
    }
}

/// The cone-fusion view of a [`CompiledCircuit`]: a topologically ordered
/// partition of the gates into fused units, flat-encoded CSR-style.
#[derive(Debug, Clone)]
pub struct FusedCircuit {
    num_gates: usize,
    num_nets: usize,
    max_unit_level: u32,
    // Units, ordered by (root level, root gate id): unit u owns ops
    // `unit_offsets[u] .. unit_offsets[u + 1]`, in topological order with
    // the root last.
    unit_offsets: Vec<u32>,
    ops: Vec<FusedOp>,
    // Operands of global op `i`: `arg_offsets[i] .. arg_offsets[i + 1]`.
    // `REG_BIT` flags a unit-local register (earlier-op index), otherwise
    // the value is a NetId index (an external load).
    arg_offsets: Vec<u32>,
    args: Vec<u32>,
    // Root gate / root net / root level per unit.
    roots: Vec<GateId>,
    root_nets: Vec<NetId>,
    unit_levels: Vec<u32>,
    // Owning unit per original gate (total: every gate is in one unit).
    unit_of_gate: Vec<u32>,
    // Units loading each net as an external input (deduped), CSR by net.
    ufan_offsets: Vec<u32>,
    ufan_units: Vec<u32>,
    // Unit owning each *interior* net (NO_UNIT elsewhere), for marking
    // units that need the gate-by-gate override path.
    interior_unit: Vec<u32>,
    // Distinct external input nets per unit, in first-use order, CSR.
    ext_offsets: Vec<u32>,
    ext_nets: Vec<NetId>,
    // Ternary LUT per unit (empty span when not tabulated): 3^k entries of
    // T0/T1/TX, indexed by sum(v_i * 3^i) over the unit's external inputs.
    lut_offsets: Vec<u32>,
    luts: Vec<u8>,
}

impl FusedCircuit {
    /// Runs the fusion pass over `cc`.
    pub fn fuse(cc: &CompiledCircuit) -> FusedCircuit {
        let ng = cc.num_gates();
        let nn = cc.num_nets();

        // Net -> driving gate (only meaningful where gate_driven).
        let mut driver = vec![u32::MAX; nn];
        for gi in 0..ng {
            let gid = GateId::from_index(gi);
            driver[cc.output(gid).index()] = gi as u32;
        }
        // A net is interior-eligible when its driver is a gate, it feeds
        // exactly one gate, and nothing observes it.
        let interior_ok = |net: NetId| -> bool {
            cc.gate_driven(net) && !cc.observed(net) && cc.fanout_gates(net).len() == 1
        };

        // Reverse-schedule sweep: every still-unassigned gate roots a new
        // cone and absorbs interior-eligible input drivers breadth-first
        // up to MAX_CONE gates. Cones below MIN_CONE demote to a
        // single-gate unit (the absorbed gates return to the pool — they
        // appear later in the reverse sweep and root their own units).
        let mut assigned = vec![false; ng];
        let mut cones: Vec<Vec<GateId>> = Vec::new();
        for &root in cc.schedule().iter().rev() {
            if assigned[root.index()] {
                continue;
            }
            let mut cone = vec![root];
            let mut i = 0;
            while i < cone.len() && cone.len() < MAX_CONE {
                let g = cone[i];
                i += 1;
                for &net in cc.inputs(g) {
                    if cone.len() >= MAX_CONE {
                        break;
                    }
                    if !interior_ok(net) {
                        continue;
                    }
                    let d = GateId::from_index(driver[net.index()] as usize);
                    if !assigned[d.index()] && !cone.contains(&d) {
                        cone.push(d);
                    }
                }
            }
            if cone.len() < MIN_CONE {
                cone.truncate(1);
            }
            for &g in &cone {
                assigned[g.index()] = true;
            }
            // Topological order inside the unit: levels strictly order a
            // fanout-free cone's dependencies; ties (unrelated gates at
            // one level) break by id for determinism.
            cone.sort_by_key(|&g| (cc.gate_level(g), g.index()));
            debug_assert_eq!(*cone.last().unwrap(), root, "root has the highest level");
            cones.push(cone);
        }
        // Topological unit order: every external dependency's root sits at
        // a strictly smaller level than this unit's root.
        cones.sort_by_key(|c| {
            let root = *c.last().unwrap();
            (cc.gate_level(root), root.index())
        });

        let mut fc = FusedCircuit {
            num_gates: ng,
            num_nets: nn,
            max_unit_level: 0,
            unit_offsets: vec![0],
            ops: Vec::with_capacity(ng),
            arg_offsets: vec![0],
            args: Vec::new(),
            roots: Vec::with_capacity(cones.len()),
            root_nets: Vec::with_capacity(cones.len()),
            unit_levels: Vec::with_capacity(cones.len()),
            unit_of_gate: vec![NO_UNIT; ng],
            ufan_offsets: Vec::new(),
            ufan_units: Vec::new(),
            interior_unit: vec![NO_UNIT; nn],
            ext_offsets: vec![0],
            ext_nets: Vec::new(),
            lut_offsets: vec![0],
            luts: Vec::new(),
        };

        for (u, cone) in cones.iter().enumerate() {
            let base = fc.ops.len();
            let root = *cone.last().unwrap();
            let mut ext: Vec<NetId> = Vec::new();
            for (j, &g) in cone.iter().enumerate() {
                fc.unit_of_gate[g.index()] = u as u32;
                let out = cc.output(g);
                if j + 1 < cone.len() {
                    fc.interior_unit[out.index()] = u as u32;
                }
                fc.ops.push(FusedOp {
                    kind: cc.kind(g),
                    gate: g,
                    out,
                });
                for &net in cc.inputs(g) {
                    // A register when an earlier op of this unit drives it.
                    let reg = cone[..j]
                        .iter()
                        .position(|&p| cc.output(p) == net)
                        .map(|p| p as u32 | REG_BIT);
                    fc.args.push(reg.unwrap_or_else(|| {
                        if !ext.contains(&net) {
                            ext.push(net);
                        }
                        net.index() as u32
                    }));
                }
                fc.arg_offsets.push(fc.args.len() as u32);
            }
            fc.unit_offsets.push(fc.ops.len() as u32);
            fc.roots.push(root);
            fc.root_nets.push(cc.output(root));
            let level = cc.gate_level(root);
            fc.unit_levels.push(level);
            fc.max_unit_level = fc.max_unit_level.max(level);
            fc.ext_nets.extend_from_slice(&ext);
            fc.ext_offsets.push(fc.ext_nets.len() as u32);

            // Ternary LUT: multi-gate cones with few enough external
            // inputs get their full 3^k function tabulated.
            if cone.len() >= MIN_CONE && ext.len() <= MAX_LUT_INPUTS {
                let k = ext.len();
                let mut regs = [TX; MAX_CONE];
                let mut vars = vec![TX; k];
                for entry in 0..3u32.pow(k as u32) {
                    let mut e = entry;
                    for v in vars.iter_mut() {
                        *v = (e % 3) as u8;
                        e /= 3;
                    }
                    for (j, op) in fc.ops[base..].iter().enumerate() {
                        let lo = fc.arg_offsets[base + j] as usize;
                        let hi = fc.arg_offsets[base + j + 1] as usize;
                        let ins: Vec<u8> = fc.args[lo..hi]
                            .iter()
                            .map(|&a| {
                                if a & REG_BIT != 0 {
                                    regs[(a & !REG_BIT) as usize]
                                } else {
                                    let net = NetId::from_index(a as usize);
                                    vars[ext.iter().position(|&x| x == net).unwrap()]
                                }
                            })
                            .collect();
                        regs[j] = t_eval(op.kind, &ins);
                    }
                    fc.luts.push(regs[cone.len() - 1]);
                }
            }
            fc.lut_offsets.push(fc.luts.len() as u32);
        }

        // External-load fanout CSR: which units re-read each net.
        let mut counts = vec![0u32; nn];
        for &net in &fc.ext_nets {
            counts[net.index()] += 1;
        }
        let mut offsets = vec![0u32; nn + 1];
        for i in 0..nn {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut fill = offsets.clone();
        let mut ufan = vec![0u32; fc.ext_nets.len()];
        for u in 0..fc.roots.len() {
            let lo = fc.ext_offsets[u] as usize;
            let hi = fc.ext_offsets[u + 1] as usize;
            for &net in &fc.ext_nets[lo..hi] {
                let slot = fill[net.index()];
                ufan[slot as usize] = u as u32;
                fill[net.index()] += 1;
            }
        }
        fc.ufan_offsets = offsets;
        fc.ufan_units = ufan;
        fc
    }

    /// Number of fused units.
    #[inline]
    pub fn num_units(&self) -> usize {
        self.roots.len()
    }

    /// Number of original gates (every one owned by exactly one unit).
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }

    /// Number of nets in the underlying circuit.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// The highest unit (root) level.
    #[inline]
    pub fn max_unit_level(&self) -> u32 {
        self.max_unit_level
    }

    /// Global op index range of unit `u`.
    #[inline]
    pub fn op_range(&self, u: usize) -> std::ops::Range<usize> {
        self.unit_offsets[u] as usize..self.unit_offsets[u + 1] as usize
    }

    /// The ops of unit `u`, in topological order (root last).
    #[inline]
    pub fn unit_ops(&self, u: usize) -> &[FusedOp] {
        &self.ops[self.op_range(u)]
    }

    /// Original-gate count of unit `u`.
    #[inline]
    pub fn unit_gates(&self, u: usize) -> usize {
        (self.unit_offsets[u + 1] - self.unit_offsets[u]) as usize
    }

    /// The operands of global op `i` (see [`FusedCircuit::decode_arg`]).
    #[inline]
    pub fn op_args(&self, i: usize) -> &[u32] {
        &self.args[self.arg_offsets[i] as usize..self.arg_offsets[i + 1] as usize]
    }

    /// Decodes an operand: `Ok(net)` for an external load, `Err(reg)` for a
    /// unit-local register (earlier-op index within the unit).
    #[inline]
    pub fn decode_arg(arg: u32) -> Result<NetId, usize> {
        if arg & REG_BIT != 0 {
            Err((arg & !REG_BIT) as usize)
        } else {
            Ok(NetId::from_index(arg as usize))
        }
    }

    /// Root gate of unit `u`.
    #[inline]
    pub fn root(&self, u: usize) -> GateId {
        self.roots[u]
    }

    /// Root output net of unit `u` (the only net a fused pass stores).
    #[inline]
    pub fn root_net(&self, u: usize) -> NetId {
        self.root_nets[u]
    }

    /// Level of unit `u`'s root gate.
    #[inline]
    pub fn unit_level(&self, u: usize) -> u32 {
        self.unit_levels[u]
    }

    /// The unit owning `gate`.
    #[inline]
    pub fn unit_of_gate(&self, gate: GateId) -> usize {
        self.unit_of_gate[gate.index()] as usize
    }

    /// Units that load `net` as an external input.
    #[inline]
    pub fn fanout_units(&self, net: NetId) -> &[u32] {
        let ni = net.index();
        let lo = self.ufan_offsets[ni] as usize;
        let hi = self.ufan_offsets[ni + 1] as usize;
        &self.ufan_units[lo..hi]
    }

    /// The unit whose *interior* (unstored) value `net` is, if any.
    #[inline]
    pub fn interior_unit(&self, net: NetId) -> Option<usize> {
        match self.interior_unit[net.index()] {
            NO_UNIT => None,
            u => Some(u as usize),
        }
    }

    /// Distinct external input nets of unit `u`, in first-use order (the
    /// LUT's variable order).
    #[inline]
    pub fn ext_inputs(&self, u: usize) -> &[NetId] {
        &self.ext_nets[self.ext_offsets[u] as usize..self.ext_offsets[u + 1] as usize]
    }

    /// The tabulated ternary function of unit `u`, when present: `3^k`
    /// entries of [`T0`]/[`T1`]/[`TX`] indexed by `sum(v_i * 3^i)` over
    /// [`FusedCircuit::ext_inputs`].
    #[inline]
    pub fn lut(&self, u: usize) -> Option<&[u8]> {
        let lo = self.lut_offsets[u] as usize;
        let hi = self.lut_offsets[u + 1] as usize;
        (lo != hi).then(|| &self.luts[lo..hi])
    }

    /// Number of original gates living inside multi-gate cones.
    pub fn gates_in_cones(&self) -> usize {
        (0..self.num_units())
            .map(|u| self.unit_gates(u))
            .filter(|&n| n > 1)
            .sum()
    }

    /// Cross-checks the fused view against its compiled circuit.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural inconsistency found.
    pub fn validate(&self, cc: &CompiledCircuit) -> Result<(), String> {
        if self.num_gates != cc.num_gates() || self.num_nets != cc.num_nets() {
            return Err("size mismatch with compiled circuit".into());
        }
        if self.ops.len() != cc.num_gates() {
            return Err(format!(
                "ops {} != gates {} (partition broken)",
                self.ops.len(),
                cc.num_gates()
            ));
        }
        let mut driver = vec![u32::MAX; cc.num_nets()];
        for gi in 0..cc.num_gates() {
            driver[cc.output(GateId::from_index(gi)).index()] = gi as u32;
        }
        let mut seen = vec![false; cc.num_gates()];
        for u in 0..self.num_units() {
            let ops = self.unit_ops(u);
            let n = ops.len();
            if n != 1 && !(MIN_CONE..=MAX_CONE).contains(&n) {
                return Err(format!("unit {u} has {n} gates"));
            }
            if ops.last().unwrap().gate != self.root(u) {
                return Err(format!("unit {u}: root is not the last op"));
            }
            if self.root_net(u) != cc.output(self.root(u)) {
                return Err(format!("unit {u}: root net mismatch"));
            }
            for (j, op) in ops.iter().enumerate() {
                let gi = op.gate.index();
                if seen[gi] {
                    return Err(format!("gate {gi} in more than one unit"));
                }
                seen[gi] = true;
                if self.unit_of_gate(op.gate) != u {
                    return Err(format!("gate {gi}: unit_of_gate disagrees"));
                }
                if op.kind != cc.kind(op.gate) || op.out != cc.output(op.gate) {
                    return Err(format!("gate {gi}: op metadata disagrees"));
                }
                let base = self.op_range(u).start;
                if self.op_args(base + j).len() != cc.inputs(op.gate).len() {
                    return Err(format!("gate {gi}: operand count disagrees"));
                }
                for (&arg, &net) in self.op_args(base + j).iter().zip(cc.inputs(op.gate)) {
                    match FusedCircuit::decode_arg(arg) {
                        Ok(n) => {
                            if n != net {
                                return Err(format!("gate {gi}: external operand disagrees"));
                            }
                            // External operands must read *stored* values:
                            // source nets, or the root net of an earlier
                            // unit — never another unit's interior.
                            if cc.gate_driven(net) {
                                let d = GateId::from_index(driver[net.index()] as usize);
                                let du = self.unit_of_gate(d);
                                if self.root_net(du) != net {
                                    return Err(format!(
                                        "unit {u}: external operand `{}` is unit {du}'s \
                                         interior (unstored)",
                                        net.index()
                                    ));
                                }
                                if du >= u {
                                    return Err(format!(
                                        "unit {u}: external input from unit {du} not earlier"
                                    ));
                                }
                            }
                        }
                        Err(reg) => {
                            if reg >= j {
                                return Err(format!("gate {gi}: register {reg} not earlier"));
                            }
                            if ops[reg].out != net {
                                return Err(format!("gate {gi}: register {reg} wrong net"));
                            }
                        }
                    }
                }
                if j + 1 < n {
                    // Interior output: single consumer, unobserved, owned.
                    if cc.observed(op.out) || cc.fanout_gates(op.out).len() != 1 {
                        return Err(format!("gate {gi}: interior net is externally visible"));
                    }
                    if self.interior_unit(op.out) != Some(u) {
                        return Err(format!("gate {gi}: interior net map disagrees"));
                    }
                }
            }
            if let Some(lut) = self.lut(u) {
                let k = self.ext_inputs(u).len();
                if k > MAX_LUT_INPUTS || lut.len() != 3usize.pow(k as u32) {
                    return Err(format!("unit {u}: LUT shape invalid"));
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("some gate belongs to no unit".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_fmt::s27;
    use crate::synth::{generate, SynthSpec};

    #[test]
    fn fusion_validates_on_catalog_and_synthetic_circuits() {
        for nl in [
            s27(),
            crate::catalog::by_name("s298").unwrap().instantiate(),
            generate(&SynthSpec::new("f", 6, 4, 9, 300, 5)).unwrap(),
            generate(&SynthSpec::new("fl", 5, 3, 6, 800, 9).with_layers(6)).unwrap(),
        ] {
            let cc = nl.compiled();
            let fc = FusedCircuit::fuse(cc);
            fc.validate(cc).expect("fused view is structurally sound");
            assert_eq!(
                (0..fc.num_units()).map(|u| fc.unit_gates(u)).sum::<usize>(),
                cc.num_gates(),
                "units partition the gate set"
            );
        }
    }

    #[test]
    fn cones_form_on_layered_logic() {
        // Layered synthetic circuits have long fanout-free chains; the
        // pass must find multi-gate cones there, all within 3..=6 gates.
        let nl = generate(&SynthSpec::new("fc", 5, 3, 6, 1000, 77).with_layers(8)).unwrap();
        let cc = nl.compiled();
        let fc = FusedCircuit::fuse(cc);
        assert!(
            fc.gates_in_cones() > 0,
            "no cones fused on a layered circuit"
        );
        for u in 0..fc.num_units() {
            let n = fc.unit_gates(u);
            assert!(n == 1 || (MIN_CONE..=MAX_CONE).contains(&n));
        }
    }

    #[test]
    fn unit_order_is_topological() {
        let nl = generate(&SynthSpec::new("ft", 6, 4, 9, 400, 21).with_layers(5)).unwrap();
        let cc = nl.compiled();
        let fc = FusedCircuit::fuse(cc);
        for u in 1..fc.num_units() {
            assert!(fc.unit_level(u) >= fc.unit_level(u - 1));
        }
    }

    #[test]
    fn lut_matches_micro_program_on_every_ternary_entry() {
        // Re-evaluate each tabulated unit's micro-program over every
        // ternary input combination and compare with the stored LUT.
        let nl = generate(&SynthSpec::new("fv", 5, 3, 6, 600, 33).with_layers(6)).unwrap();
        let cc = nl.compiled();
        let fc = FusedCircuit::fuse(cc);
        let mut tabulated = 0;
        for u in 0..fc.num_units() {
            let Some(lut) = fc.lut(u) else { continue };
            tabulated += 1;
            let ext = fc.ext_inputs(u);
            let ops = fc.unit_ops(u);
            let base = fc.op_range(u).start;
            for (entry, &want) in lut.iter().enumerate() {
                let mut e = entry;
                let vars: Vec<u8> = (0..ext.len())
                    .map(|_| {
                        let v = (e % 3) as u8;
                        e /= 3;
                        v
                    })
                    .collect();
                let mut regs = [TX; MAX_CONE];
                for (j, op) in ops.iter().enumerate() {
                    let ins: Vec<u8> = fc
                        .op_args(base + j)
                        .iter()
                        .map(|&a| match FusedCircuit::decode_arg(a) {
                            Err(r) => regs[r],
                            Ok(net) => vars[ext.iter().position(|&x| x == net).unwrap()],
                        })
                        .collect();
                    regs[j] = t_eval(op.kind, &ins);
                }
                assert_eq!(regs[ops.len() - 1], want, "unit {u} entry {entry}");
            }
        }
        assert!(tabulated > 0, "no unit qualified for a LUT");
    }
}
