//! Catalog of the benchmark circuits used in the paper's evaluation.
//!
//! The paper evaluates eleven ISCAS-89 circuits and eight ITC-99 circuits.
//! Their netlists are distribution-restricted, so this catalog describes
//! each circuit's interface (exact flip-flop count — the `N_SV` that the
//! paper's clock-cycle formula depends on — and the real primary-input/
//! -output counts) and instantiates a deterministic synthetic stand-in with
//! a comparable gate count via [`synth`](crate::synth). For the largest
//! circuit (`s35932`) the synthetic gate count is scaled down to keep full
//! table sweeps tractable; the flip-flop count is kept exact.
//!
//! Anyone holding the original `.bench` files can reproduce on the real
//! netlists through [`bench_fmt::parse`](crate::bench_fmt::parse).

use crate::synth::{generate, SynthSpec};
use crate::{CircuitError, Netlist};

/// The benchmark suite a circuit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// ISCAS-89 sequential benchmarks.
    Iscas89,
    /// ITC-99 benchmarks.
    Itc99,
}

/// Static description of one benchmark circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Benchmark name as used in the paper's tables.
    pub name: &'static str,
    /// The suite the benchmark belongs to.
    pub suite: Suite,
    /// Primary-input count of the real circuit.
    pub num_pis: usize,
    /// Primary-output count of the real circuit.
    pub num_pos: usize,
    /// Flip-flop count — matches the paper's Table 1 exactly.
    pub num_ffs: usize,
    /// Gate count of the synthetic stand-in (comparable to the real
    /// circuit, scaled down for `s35932`).
    pub num_gates: usize,
}

impl BenchmarkInfo {
    /// Instantiates the deterministic synthetic stand-in for this benchmark.
    pub fn instantiate(&self) -> Netlist {
        let spec = SynthSpec::new(
            self.name,
            self.num_pis,
            self.num_pos,
            self.num_ffs,
            self.num_gates,
            // Stable per-benchmark seed derived from the name.
            fnv(self.name.as_bytes()),
        );
        generate(&spec).expect("catalog specs are valid")
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The nineteen circuits of the paper's Tables 1–5, in table order.
pub const PAPER_BENCHMARKS: [BenchmarkInfo; 19] = [
    bm("s298", Suite::Iscas89, 3, 6, 14, 119),
    bm("s344", Suite::Iscas89, 9, 11, 15, 160),
    bm("s382", Suite::Iscas89, 3, 6, 21, 158),
    bm("s400", Suite::Iscas89, 3, 6, 21, 162),
    bm("s526", Suite::Iscas89, 3, 6, 21, 193),
    bm("s641", Suite::Iscas89, 35, 24, 19, 379),
    bm("s820", Suite::Iscas89, 18, 19, 5, 289),
    bm("s1423", Suite::Iscas89, 17, 5, 74, 657),
    bm("s1488", Suite::Iscas89, 8, 19, 6, 653),
    bm("s5378", Suite::Iscas89, 35, 49, 179, 2779),
    bm("s35932", Suite::Iscas89, 35, 320, 1728, 4000),
    bm("b01", Suite::Itc99, 2, 2, 5, 45),
    bm("b02", Suite::Itc99, 1, 1, 4, 25),
    bm("b03", Suite::Itc99, 4, 4, 30, 150),
    bm("b04", Suite::Itc99, 11, 8, 66, 650),
    bm("b06", Suite::Itc99, 2, 6, 9, 55),
    bm("b09", Suite::Itc99, 1, 1, 28, 160),
    bm("b10", Suite::Itc99, 11, 6, 17, 180),
    bm("b11", Suite::Itc99, 7, 6, 30, 550),
];

const fn bm(
    name: &'static str,
    suite: Suite,
    num_pis: usize,
    num_pos: usize,
    num_ffs: usize,
    num_gates: usize,
) -> BenchmarkInfo {
    BenchmarkInfo {
        name,
        suite,
        num_pis,
        num_pos,
        num_ffs,
        num_gates,
    }
}

/// All paper benchmarks in table order.
pub fn all() -> &'static [BenchmarkInfo] {
    &PAPER_BENCHMARKS
}

/// Looks a benchmark up by name.
///
/// # Errors
///
/// Returns [`CircuitError::UnknownBenchmark`] when `name` is not in the
/// catalog.
///
/// # Examples
///
/// ```
/// let info = atspeed_circuit::catalog::by_name("s298")?;
/// assert_eq!(info.num_ffs, 14);
/// # Ok::<(), atspeed_circuit::CircuitError>(())
/// ```
pub fn by_name(name: &str) -> Result<BenchmarkInfo, CircuitError> {
    PAPER_BENCHMARKS
        .iter()
        .find(|b| b.name == name)
        .copied()
        .ok_or_else(|| CircuitError::UnknownBenchmark {
            name: name.to_owned(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_nineteen_circuits_in_table_order() {
        assert_eq!(all().len(), 19);
        assert_eq!(all()[0].name, "s298");
        assert_eq!(all()[18].name, "b11");
    }

    #[test]
    fn ff_counts_match_paper_table1() {
        // (name, ff) pairs straight from Table 1.
        let expect = [
            ("s298", 14),
            ("s344", 15),
            ("s382", 21),
            ("s400", 21),
            ("s526", 21),
            ("s641", 19),
            ("s820", 5),
            ("s1423", 74),
            ("s1488", 6),
            ("s5378", 179),
            ("s35932", 1728),
            ("b01", 5),
            ("b02", 4),
            ("b03", 30),
            ("b04", 66),
            ("b06", 9),
            ("b09", 28),
            ("b10", 17),
            ("b11", 30),
        ];
        for (name, ff) in expect {
            assert_eq!(by_name(name).unwrap().num_ffs, ff, "{name}");
        }
    }

    #[test]
    fn instantiation_matches_interface() {
        let info = by_name("s298").unwrap();
        let nl = info.instantiate();
        assert_eq!(nl.num_pis(), info.num_pis);
        assert_eq!(nl.num_pos(), info.num_pos);
        assert_eq!(nl.num_ffs(), info.num_ffs);
        assert_eq!(nl.name(), "s298");
    }

    #[test]
    fn instantiation_is_deterministic() {
        let a = by_name("b06").unwrap().instantiate();
        let b = by_name("b06").unwrap().instantiate();
        assert_eq!(a.num_nets(), b.num_nets());
        assert!(a.gates().iter().zip(b.gates().iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn unknown_name_errors() {
        assert!(matches!(
            by_name("s9999"),
            Err(CircuitError::UnknownBenchmark { .. })
        ));
    }

    #[test]
    fn suites_are_assigned() {
        assert_eq!(by_name("s641").unwrap().suite, Suite::Iscas89);
        assert_eq!(by_name("b04").unwrap().suite, Suite::Itc99);
    }
}
