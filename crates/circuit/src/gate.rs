//! Gate kinds and their boolean semantics.

use std::fmt;
use std::str::FromStr;

/// The kind of a combinational logic gate.
///
/// All kinds except [`GateKind::Not`] and [`GateKind::Buf`] accept two or
/// more inputs; `Not` and `Buf` accept exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Logical conjunction.
    And,
    /// Negated conjunction.
    Nand,
    /// Logical disjunction.
    Or,
    /// Negated disjunction.
    Nor,
    /// Exclusive or (parity of inputs).
    Xor,
    /// Negated exclusive or.
    Xnor,
    /// Inverter.
    Not,
    /// Buffer.
    Buf,
}

impl GateKind {
    /// All gate kinds, in a fixed order.
    pub const ALL: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];

    /// Returns `true` if this kind accepts `n` inputs.
    #[inline]
    pub fn accepts_fanin(self, n: usize) -> bool {
        match self {
            GateKind::Not | GateKind::Buf => n == 1,
            // Single-input AND/OR/... occasionally appear in benchmark
            // netlists and behave as buffers; accept them.
            _ => n >= 1,
        }
    }

    /// Returns `true` if the output is the complement of the base function
    /// (NAND/NOR/XNOR/NOT).
    #[inline]
    pub fn inverts(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// The controlling input value of the gate, if it has one.
    ///
    /// When any input carries the controlling value, the output is fully
    /// determined regardless of the other inputs. XOR-class gates and
    /// buffers/inverters have no controlling value.
    #[inline]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Evaluates the gate over fully-specified boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        assert!(!inputs.is_empty(), "gate evaluated with no inputs");
        let base = match self {
            GateKind::And | GateKind::Nand => inputs.iter().all(|&v| v),
            GateKind::Or | GateKind::Nor => inputs.iter().any(|&v| v),
            GateKind::Xor | GateKind::Xnor => inputs.iter().filter(|&&v| v).count() % 2 == 1,
            GateKind::Not | GateKind::Buf => inputs[0],
        };
        base ^ self.inverts()
    }

    /// The canonical upper-case name used by the `.bench` format.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

/// Error returned when parsing a [`GateKind`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError {
    token: String,
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.token)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            other => Err(ParseGateKindError {
                token: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_truth_tables() {
        let cases: [(GateKind, [bool; 4]); 6] = [
            // outputs for input pairs (0,0) (0,1) (1,0) (1,1)
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = i & 2 != 0;
                let b = i & 1 != 0;
                assert_eq!(kind.eval_bool(&[a, b]), e, "{kind} ({a},{b})");
            }
        }
        assert!(!GateKind::Not.eval_bool(&[true]));
        assert!(GateKind::Buf.eval_bool(&[true]));
    }

    #[test]
    fn three_input_parity_and_conjunction() {
        assert!(GateKind::Xor.eval_bool(&[true, true, true]));
        assert!(!GateKind::Xor.eval_bool(&[true, true, false]));
        assert!(GateKind::And.eval_bool(&[true, true, true]));
        assert!(!GateKind::Nand.eval_bool(&[true, true, true]));
    }

    #[test]
    fn fanin_rules() {
        assert!(GateKind::Not.accepts_fanin(1));
        assert!(!GateKind::Not.accepts_fanin(2));
        assert!(GateKind::And.accepts_fanin(4));
        assert!(!GateKind::And.accepts_fanin(0));
    }

    #[test]
    fn parses_bench_names_case_insensitively() {
        assert_eq!("nand".parse::<GateKind>().unwrap(), GateKind::Nand);
        assert_eq!("BUFF".parse::<GateKind>().unwrap(), GateKind::Buf);
        assert_eq!("INV".parse::<GateKind>().unwrap(), GateKind::Not);
        assert!("DFF".parse::<GateKind>().is_err());
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
    }

    #[test]
    fn display_round_trips_via_from_str() {
        for kind in GateKind::ALL {
            assert_eq!(kind.to_string().parse::<GateKind>().unwrap(), kind);
        }
    }
}
