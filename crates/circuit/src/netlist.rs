//! The immutable netlist representation and its builder.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::{CircuitError, CompiledCircuit, FfId, GateId, GateKind, NetId, PoId};

/// The unique driver of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Driver {
    /// Driven externally as the `index`-th primary input.
    Pi(usize),
    /// Driven by the output of a gate.
    Gate(GateId),
    /// Driven by the Q output of a flip-flop.
    Ff(FfId),
}

/// A consumer of a net's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sink {
    /// Input pin `pin` of gate `0`.
    GatePin(GateId, u8),
    /// D input of a flip-flop.
    FfD(FfId),
    /// Primary output position.
    Po(PoId),
}

/// A combinational gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    kind: GateKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// The gate's logic function.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Input nets in pin order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The net driven by this gate.
    #[inline]
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// A D flip-flop: captures the value on `d` at each clock and presents it
/// on `q` in the next cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ff {
    d: NetId,
    q: NetId,
}

impl Ff {
    /// The data-input net.
    #[inline]
    pub fn d(&self) -> NetId {
        self.d
    }

    /// The state-output net.
    #[inline]
    pub fn q(&self) -> NetId {
        self.q
    }
}

/// An immutable, validated synchronous sequential circuit.
///
/// A netlist consists of nets, gates, D flip-flops, primary inputs, and
/// primary outputs. It is constructed through [`NetlistBuilder`], which
/// validates single-driver and acyclicity invariants and precomputes the
/// levelized gate order and per-net fanout tables that the simulation and
/// test-generation crates rely on.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    drivers: Vec<Driver>,
    gates: Vec<Gate>,
    ffs: Vec<Ff>,
    pis: Vec<NetId>,
    pos: Vec<NetId>,
    fanouts: Vec<Vec<Sink>>,
    topo: Vec<GateId>,
    levels: Vec<u32>,
    max_level: u32,
    // Lazily-built flat view; behind an `Arc` so clones share one build
    // (`OnceLock` itself is not `Clone`). The netlist is immutable after
    // construction, so the cache can never go stale.
    compiled: Arc<OnceLock<CompiledCircuit>>,
}

impl Netlist {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.drivers.len()
    }

    /// Number of gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops (scanned state variables, `N_SV` in the paper).
    #[inline]
    pub fn num_ffs(&self) -> usize {
        self.ffs.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_pis(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// The gate with the given id.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// All gates, indexable by [`GateId`].
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The flip-flop with the given id.
    #[inline]
    pub fn ff(&self, id: FfId) -> &Ff {
        &self.ffs[id.index()]
    }

    /// All flip-flops, indexable by [`FfId`].
    #[inline]
    pub fn ffs(&self) -> &[Ff] {
        &self.ffs
    }

    /// Primary-input nets in declaration order.
    #[inline]
    pub fn pis(&self) -> &[NetId] {
        &self.pis
    }

    /// Primary-output nets in declaration order.
    #[inline]
    pub fn pos(&self) -> &[NetId] {
        &self.pos
    }

    /// The unique driver of a net.
    #[inline]
    pub fn driver(&self, net: NetId) -> Driver {
        self.drivers[net.index()]
    }

    /// The consumers of a net (gate pins, FF data inputs, primary outputs).
    #[inline]
    pub fn fanouts(&self, net: NetId) -> &[Sink] {
        &self.fanouts[net.index()]
    }

    /// The source name of a net.
    #[inline]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Looks a net up by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names
            .iter()
            .position(|n| n == name)
            .map(NetId::from_index)
    }

    /// Gates in a topological order of the combinational core: every gate
    /// appears after all gates driving its inputs. Flip-flop outputs and
    /// primary inputs are sources.
    #[inline]
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// The combinational level of a net: 0 for primary inputs and flip-flop
    /// outputs, otherwise one more than the maximum level of the driving
    /// gate's inputs.
    #[inline]
    pub fn level(&self, net: NetId) -> u32 {
        self.levels[net.index()]
    }

    /// The maximum combinational level in the circuit (0 if gate-free).
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.num_nets()).map(NetId::from_index)
    }

    /// Iterates over all gate ids in declaration order.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.num_gates()).map(GateId::from_index)
    }

    /// Iterates over all flip-flop ids.
    pub fn ff_ids(&self) -> impl Iterator<Item = FfId> + '_ {
        (0..self.num_ffs()).map(FfId::from_index)
    }

    /// The flat CSR view of this netlist, compiled on first use and cached
    /// (clones share the cache). Hot simulation loops should index the
    /// compiled arrays instead of walking [`Netlist::gate`] pointers.
    #[inline]
    pub fn compiled(&self) -> &CompiledCircuit {
        self.compiled.get_or_init(|| CompiledCircuit::compile(self))
    }
}

#[derive(Debug, Clone)]
enum PendingDriver {
    None,
    Pi(usize),
    Gate(usize),
    Ff(usize),
}

/// Incremental builder for [`Netlist`].
///
/// Statements may arrive in any order; names are resolved and the circuit is
/// validated by [`NetlistBuilder::finish`].
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    net_ids: HashMap<String, usize>,
    net_names: Vec<String>,
    pending: Vec<PendingDriver>,
    gates: Vec<(GateKind, Vec<usize>, usize)>,
    ffs: Vec<(usize, usize)>,
    pis: Vec<usize>,
    pos: Vec<usize>,
    duplicate: Option<String>,
}

impl NetlistBuilder {
    /// Creates an empty builder for a circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            net_ids: HashMap::new(),
            net_names: Vec::new(),
            pending: Vec::new(),
            gates: Vec::new(),
            ffs: Vec::new(),
            pis: Vec::new(),
            pos: Vec::new(),
            duplicate: None,
        }
    }

    fn intern(&mut self, name: &str) -> usize {
        if let Some(&id) = self.net_ids.get(name) {
            return id;
        }
        let id = self.net_names.len();
        self.net_ids.insert(name.to_owned(), id);
        self.net_names.push(name.to_owned());
        self.pending.push(PendingDriver::None);
        id
    }

    fn set_driver(&mut self, net: usize, driver: PendingDriver) {
        if matches!(self.pending[net], PendingDriver::None) {
            self.pending[net] = driver;
        } else if self.duplicate.is_none() {
            self.duplicate = Some(self.net_names[net].clone());
        }
    }

    /// Declares a primary input net.
    pub fn input(&mut self, name: &str) -> &mut Self {
        let net = self.intern(name);
        let idx = self.pis.len();
        self.pis.push(net);
        self.set_driver(net, PendingDriver::Pi(idx));
        self
    }

    /// Declares a primary output net (the net must be driven elsewhere).
    pub fn output(&mut self, name: &str) -> &mut Self {
        let net = self.intern(name);
        self.pos.push(net);
        self
    }

    /// Declares a gate driving `output` from `inputs`.
    pub fn gate(&mut self, kind: GateKind, output: &str, inputs: &[&str]) -> &mut Self {
        let out = self.intern(output);
        let ins: Vec<usize> = inputs.iter().map(|n| self.intern(n)).collect();
        let idx = self.gates.len();
        self.gates.push((kind, ins, out));
        self.set_driver(out, PendingDriver::Gate(idx));
        self
    }

    /// Declares a D flip-flop with state output `q` and data input `d`.
    pub fn dff(&mut self, q: &str, d: &str) -> &mut Self {
        let qn = self.intern(q);
        let dn = self.intern(d);
        let idx = self.ffs.len();
        self.ffs.push((dn, qn));
        self.set_driver(qn, PendingDriver::Ff(idx));
        self
    }

    /// Resolves names, validates the circuit, and produces the [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns an error if a net has several drivers or none, a gate has an
    /// illegal fanin, the circuit has no primary inputs, or the combinational
    /// core is cyclic.
    pub fn finish(self) -> Result<Netlist, CircuitError> {
        if let Some(net) = self.duplicate {
            return Err(CircuitError::MultipleDrivers { net });
        }
        if self.pis.is_empty() {
            return Err(CircuitError::NoInputs);
        }
        let n = self.net_names.len();
        let mut drivers = Vec::with_capacity(n);
        for (i, pd) in self.pending.iter().enumerate() {
            let d = match pd {
                PendingDriver::None => {
                    return Err(CircuitError::Undriven {
                        net: self.net_names[i].clone(),
                    })
                }
                PendingDriver::Pi(k) => Driver::Pi(*k),
                PendingDriver::Gate(g) => Driver::Gate(GateId::from_index(*g)),
                PendingDriver::Ff(f) => Driver::Ff(FfId::from_index(*f)),
            };
            drivers.push(d);
        }

        let gates: Vec<Gate> = self
            .gates
            .iter()
            .map(|(kind, ins, out)| Gate {
                kind: *kind,
                inputs: ins.iter().map(|&i| NetId::from_index(i)).collect(),
                output: NetId::from_index(*out),
            })
            .collect();
        for g in &gates {
            if !g.kind.accepts_fanin(g.inputs.len()) {
                return Err(CircuitError::BadFanin {
                    net: self.net_names[g.output.index()].clone(),
                    got: g.inputs.len(),
                });
            }
        }
        let ffs: Vec<Ff> = self
            .ffs
            .iter()
            .map(|&(d, q)| Ff {
                d: NetId::from_index(d),
                q: NetId::from_index(q),
            })
            .collect();

        // Fanout tables.
        let mut fanouts: Vec<Vec<Sink>> = vec![Vec::new(); n];
        for (gi, g) in gates.iter().enumerate() {
            for (pin, &input) in g.inputs.iter().enumerate() {
                fanouts[input.index()].push(Sink::GatePin(
                    GateId::from_index(gi),
                    u8::try_from(pin).expect("gate fanin exceeds 255"),
                ));
            }
        }
        for (fi, ff) in ffs.iter().enumerate() {
            fanouts[ff.d.index()].push(Sink::FfD(FfId::from_index(fi)));
        }
        for (pi, &po) in self.pos.iter().enumerate() {
            fanouts[po].push(Sink::Po(PoId::from_index(pi)));
        }

        // Kahn's algorithm over gates; PIs and FF outputs are sources.
        let mut indeg: Vec<usize> = gates
            .iter()
            .map(|g| {
                g.inputs
                    .iter()
                    .filter(|i| matches!(drivers[i.index()], Driver::Gate(_)))
                    .count()
            })
            .collect();
        let mut queue: Vec<GateId> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| GateId::from_index(i))
            .collect();
        let mut topo = Vec::with_capacity(gates.len());
        let mut head = 0;
        while head < queue.len() {
            let gid = queue[head];
            head += 1;
            topo.push(gid);
            for sink in &fanouts[gates[gid.index()].output.index()] {
                if let Sink::GatePin(consumer, _) = sink {
                    let ci = consumer.index();
                    indeg[ci] -= 1;
                    if indeg[ci] == 0 {
                        queue.push(*consumer);
                    }
                }
            }
        }
        if topo.len() != gates.len() {
            let on_cycle = indeg
                .iter()
                .position(|&d| d > 0)
                .expect("cycle implies positive in-degree");
            return Err(CircuitError::CombinationalCycle {
                net: self.net_names[gates[on_cycle].output.index()].clone(),
            });
        }

        // Net levels: sources at 0, gate outputs at 1 + max input level.
        let mut levels = vec![0u32; n];
        let mut max_level = 0;
        for &gid in &topo {
            let g = &gates[gid.index()];
            let lvl = 1 + g
                .inputs
                .iter()
                .map(|i| levels[i.index()])
                .max()
                .unwrap_or(0);
            levels[g.output.index()] = lvl;
            max_level = max_level.max(lvl);
        }

        Ok(Netlist {
            name: self.name,
            net_names: self.net_names,
            drivers,
            gates,
            ffs,
            pis: self.pis.into_iter().map(NetId::from_index).collect(),
            pos: self.pos.into_iter().map(NetId::from_index).collect(),
            fanouts,
            topo,
            levels,
            max_level,
            compiled: Arc::new(OnceLock::new()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Netlist {
        let mut b = NetlistBuilder::new("toy");
        b.input("a");
        b.input("b");
        b.dff("q", "d");
        b.gate(GateKind::And, "d", &["a", "q"]);
        b.gate(GateKind::Xor, "y", &["b", "q"]);
        b.output("y");
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let nl = toy();
        assert_eq!(nl.name(), "toy");
        assert_eq!(nl.num_pis(), 2);
        assert_eq!(nl.num_pos(), 1);
        assert_eq!(nl.num_ffs(), 1);
        assert_eq!(nl.num_gates(), 2);
        assert_eq!(nl.num_nets(), 5); // a b q d y
    }

    #[test]
    fn drivers_and_fanouts_are_consistent() {
        let nl = toy();
        let q = nl.find_net("q").unwrap();
        assert!(matches!(nl.driver(q), Driver::Ff(_)));
        // q feeds both gates.
        assert_eq!(nl.fanouts(q).len(), 2);
        let d = nl.find_net("d").unwrap();
        assert!(matches!(nl.driver(d), Driver::Gate(_)));
        assert!(matches!(nl.fanouts(d)[0], Sink::FfD(_)));
        let y = nl.find_net("y").unwrap();
        assert!(matches!(nl.fanouts(y)[0], Sink::Po(_)));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut b = NetlistBuilder::new("chain");
        b.input("a");
        b.gate(GateKind::Not, "x", &["a"]);
        b.gate(GateKind::Not, "y", &["x"]);
        b.gate(GateKind::Not, "z", &["y"]);
        b.output("z");
        let nl = b.finish().unwrap();
        let order = nl.topo_order();
        let pos_of = |net: &str| {
            let id = nl.find_net(net).unwrap();
            order
                .iter()
                .position(|&g| nl.gate(g).output() == id)
                .unwrap()
        };
        assert!(pos_of("x") < pos_of("y"));
        assert!(pos_of("y") < pos_of("z"));
        assert_eq!(nl.level(nl.find_net("z").unwrap()), 3);
        assert_eq!(nl.max_level(), 3);
    }

    #[test]
    fn ff_breaks_cycles() {
        // d = NOT(q) with q = DFF(d) is fine: the loop crosses a flip-flop.
        let mut b = NetlistBuilder::new("tff");
        b.input("en");
        b.dff("q", "d");
        b.gate(GateKind::Xor, "d", &["q", "en"]);
        b.output("q");
        assert!(b.finish().is_ok());
    }

    #[test]
    fn detects_combinational_cycle() {
        let mut b = NetlistBuilder::new("cyc");
        b.input("a");
        b.gate(GateKind::And, "x", &["a", "y"]);
        b.gate(GateKind::And, "y", &["a", "x"]);
        b.output("y");
        assert!(matches!(
            b.finish(),
            Err(CircuitError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn detects_multiple_drivers() {
        let mut b = NetlistBuilder::new("md");
        b.input("a");
        b.gate(GateKind::Not, "x", &["a"]);
        b.gate(GateKind::Buf, "x", &["a"]);
        b.output("x");
        assert!(matches!(
            b.finish(),
            Err(CircuitError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn detects_undriven_net() {
        let mut b = NetlistBuilder::new("ud");
        b.input("a");
        b.gate(GateKind::And, "x", &["a", "ghost"]);
        b.output("x");
        assert!(matches!(b.finish(), Err(CircuitError::Undriven { .. })));
    }

    #[test]
    fn detects_bad_fanin() {
        let mut b = NetlistBuilder::new("bf");
        b.input("a");
        b.input("b");
        b.gate(GateKind::Not, "x", &["a", "b"]);
        b.output("x");
        assert!(matches!(b.finish(), Err(CircuitError::BadFanin { .. })));
    }

    #[test]
    fn rejects_input_free_circuit() {
        let b = NetlistBuilder::new("empty");
        assert!(matches!(b.finish(), Err(CircuitError::NoInputs)));
    }

    #[test]
    fn find_net_resolves_names() {
        let nl = toy();
        assert!(nl.find_net("a").is_some());
        assert!(nl.find_net("nope").is_none());
        let a = nl.find_net("a").unwrap();
        assert_eq!(nl.net_name(a), "a");
    }
}
