//! The immutable netlist representation and its builder.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::{CircuitError, CompiledCircuit, FfId, GateId, GateKind, NetId, PoId};

/// The unique driver of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Driver {
    /// Driven externally as the `index`-th primary input.
    Pi(usize),
    /// Driven by the output of a gate.
    Gate(GateId),
    /// Driven by the Q output of a flip-flop.
    Ff(FfId),
}

/// A consumer of a net's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sink {
    /// Input pin `pin` of gate `0`.
    GatePin(GateId, u8),
    /// D input of a flip-flop.
    FfD(FfId),
    /// Primary output position.
    Po(PoId),
}

/// A combinational gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    kind: GateKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// The gate's logic function.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Input nets in pin order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The net driven by this gate.
    #[inline]
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// A D flip-flop: captures the value on `d` at each clock and presents it
/// on `q` in the next cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ff {
    d: NetId,
    q: NetId,
}

impl Ff {
    /// The data-input net.
    #[inline]
    pub fn d(&self) -> NetId {
        self.d
    }

    /// The state-output net.
    #[inline]
    pub fn q(&self) -> NetId {
        self.q
    }
}

/// An immutable, validated synchronous sequential circuit.
///
/// A netlist consists of nets, gates, D flip-flops, primary inputs, and
/// primary outputs. It is constructed through [`NetlistBuilder`], which
/// validates single-driver and acyclicity invariants and precomputes the
/// levelized gate order and per-net fanout tables that the simulation and
/// test-generation crates rely on.
///
/// Net names are interned once (`Arc<str>`) and fanouts live in a flat CSR
/// table (`fanout_offsets`/`fanout_sinks`), so a 100k-gate netlist costs a
/// handful of large allocations rather than one small allocation per net.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    net_names: Vec<Arc<str>>,
    // Net indices sorted by name; `find_net` binary-searches this instead
    // of scanning `net_names` linearly.
    name_index: Vec<u32>,
    drivers: Vec<Driver>,
    gates: Vec<Gate>,
    ffs: Vec<Ff>,
    pis: Vec<NetId>,
    pos: Vec<NetId>,
    // Fanout CSR: sinks of net `n` are
    // `fanout_sinks[fanout_offsets[n]..fanout_offsets[n + 1]]`.
    fanout_offsets: Vec<u32>,
    fanout_sinks: Vec<Sink>,
    topo: Vec<GateId>,
    levels: Vec<u32>,
    max_level: u32,
    // Lazily-built flat view; behind an `Arc` so clones share one build
    // (`OnceLock` itself is not `Clone`). The netlist is immutable after
    // construction, so the cache can never go stale.
    compiled: Arc<OnceLock<CompiledCircuit>>,
    // Lazily-built cone-fusion view over `compiled`, same sharing story.
    fused: Arc<OnceLock<crate::fuse::FusedCircuit>>,
}

impl Netlist {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.drivers.len()
    }

    /// Number of gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops (scanned state variables, `N_SV` in the paper).
    #[inline]
    pub fn num_ffs(&self) -> usize {
        self.ffs.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_pis(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// The gate with the given id.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// All gates, indexable by [`GateId`].
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The flip-flop with the given id.
    #[inline]
    pub fn ff(&self, id: FfId) -> &Ff {
        &self.ffs[id.index()]
    }

    /// All flip-flops, indexable by [`FfId`].
    #[inline]
    pub fn ffs(&self) -> &[Ff] {
        &self.ffs
    }

    /// Primary-input nets in declaration order.
    #[inline]
    pub fn pis(&self) -> &[NetId] {
        &self.pis
    }

    /// Primary-output nets in declaration order.
    #[inline]
    pub fn pos(&self) -> &[NetId] {
        &self.pos
    }

    /// The unique driver of a net.
    #[inline]
    pub fn driver(&self, net: NetId) -> Driver {
        self.drivers[net.index()]
    }

    /// The consumers of a net (gate pins, FF data inputs, primary outputs).
    #[inline]
    pub fn fanouts(&self, net: NetId) -> &[Sink] {
        let i = net.index();
        let lo = self.fanout_offsets[i] as usize;
        let hi = self.fanout_offsets[i + 1] as usize;
        &self.fanout_sinks[lo..hi]
    }

    /// The source name of a net.
    #[inline]
    pub fn net_name(&self, net: NetId) -> &str {
        self.net_names[net.index()].as_ref()
    }

    /// Looks a net up by name in `O(log n)`.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.name_index
            .binary_search_by(|&i| self.net_names[i as usize].as_ref().cmp(name))
            .ok()
            .map(|pos| NetId::from_index(self.name_index[pos] as usize))
    }

    /// Gates in a topological order of the combinational core: every gate
    /// appears after all gates driving its inputs. Flip-flop outputs and
    /// primary inputs are sources.
    #[inline]
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// The combinational level of a net: 0 for primary inputs and flip-flop
    /// outputs, otherwise one more than the maximum level of the driving
    /// gate's inputs.
    #[inline]
    pub fn level(&self, net: NetId) -> u32 {
        self.levels[net.index()]
    }

    /// The maximum combinational level in the circuit (0 if gate-free).
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.num_nets()).map(NetId::from_index)
    }

    /// Iterates over all gate ids in declaration order.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.num_gates()).map(GateId::from_index)
    }

    /// Iterates over all flip-flop ids.
    pub fn ff_ids(&self) -> impl Iterator<Item = FfId> + '_ {
        (0..self.num_ffs()).map(FfId::from_index)
    }

    /// The flat CSR view of this netlist, compiled on first use and cached
    /// (clones share the cache). Hot simulation loops should index the
    /// compiled arrays instead of walking [`Netlist::gate`] pointers.
    #[inline]
    pub fn compiled(&self) -> &CompiledCircuit {
        self.compiled.get_or_init(|| CompiledCircuit::compile(self))
    }

    /// The cone-fusion view of this netlist (see [`crate::fuse`]), built on
    /// first use over [`Netlist::compiled`] and cached (clones share it).
    #[inline]
    pub fn fused(&self) -> &crate::fuse::FusedCircuit {
        self.fused
            .get_or_init(|| crate::fuse::FusedCircuit::fuse(self.compiled()))
    }
}

#[derive(Debug, Clone)]
enum PendingDriver {
    None,
    Pi(usize),
    Gate(usize),
    Ff(usize),
}

/// Incremental builder for [`Netlist`].
///
/// Statements may arrive in any order; names are resolved and the circuit is
/// validated by [`NetlistBuilder::finish`].
///
/// Besides the name-based methods, the builder exposes an id-based API
/// ([`NetlistBuilder::net`], [`NetlistBuilder::gate_nets`], ...) so bulk
/// producers — the `.bench` parser, the synthetic generator — can intern
/// each name exactly once and refer to it by index afterwards.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    net_ids: HashMap<Arc<str>, usize>,
    net_names: Vec<Arc<str>>,
    pending: Vec<PendingDriver>,
    gates: Vec<Gate>,
    ffs: Vec<(usize, usize)>,
    pis: Vec<usize>,
    pos: Vec<usize>,
    duplicate: Option<String>,
}

impl NetlistBuilder {
    /// Creates an empty builder for a circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            net_ids: HashMap::new(),
            net_names: Vec::new(),
            pending: Vec::new(),
            gates: Vec::new(),
            ffs: Vec::new(),
            pis: Vec::new(),
            pos: Vec::new(),
            duplicate: None,
        }
    }

    /// Creates a builder with pre-reserved tables, avoiding rehash/regrow
    /// churn when the caller knows the circuit size up front (the parser
    /// counts statements; the generator knows its spec).
    pub fn with_capacity(name: impl Into<String>, nets: usize, gates: usize, ffs: usize) -> Self {
        let mut b = NetlistBuilder::new(name);
        b.net_ids.reserve(nets);
        b.net_names.reserve(nets);
        b.pending.reserve(nets);
        b.gates.reserve(gates);
        b.ffs.reserve(ffs);
        b
    }

    fn intern(&mut self, name: &str) -> usize {
        if let Some(&id) = self.net_ids.get(name) {
            return id;
        }
        let id = self.net_names.len();
        let shared: Arc<str> = Arc::from(name);
        self.net_ids.insert(Arc::clone(&shared), id);
        self.net_names.push(shared);
        self.pending.push(PendingDriver::None);
        id
    }

    fn set_driver(&mut self, net: usize, driver: PendingDriver) {
        if matches!(self.pending[net], PendingDriver::None) {
            self.pending[net] = driver;
        } else if self.duplicate.is_none() {
            self.duplicate = Some(self.net_names[net].to_string());
        }
    }

    /// Interns `name` and returns its dense net index for use with the
    /// id-based builder methods. Calling it twice with the same name
    /// returns the same index.
    pub fn net(&mut self, name: &str) -> usize {
        self.intern(name)
    }

    /// Declares a primary input net.
    pub fn input(&mut self, name: &str) -> &mut Self {
        let net = self.intern(name);
        self.input_net(net)
    }

    /// Id-based form of [`NetlistBuilder::input`].
    pub fn input_net(&mut self, net: usize) -> &mut Self {
        let idx = self.pis.len();
        self.pis.push(net);
        self.set_driver(net, PendingDriver::Pi(idx));
        self
    }

    /// Declares a primary output net (the net must be driven elsewhere).
    pub fn output(&mut self, name: &str) -> &mut Self {
        let net = self.intern(name);
        self.output_net(net)
    }

    /// Id-based form of [`NetlistBuilder::output`].
    pub fn output_net(&mut self, net: usize) -> &mut Self {
        self.pos.push(net);
        self
    }

    /// Declares a gate driving `output` from `inputs`.
    pub fn gate(&mut self, kind: GateKind, output: &str, inputs: &[&str]) -> &mut Self {
        let out = self.intern(output);
        let ins: Vec<NetId> = inputs
            .iter()
            .map(|n| NetId::from_index(self.intern(n)))
            .collect();
        self.push_gate(kind, out, ins)
    }

    /// Id-based form of [`NetlistBuilder::gate`].
    pub fn gate_nets(&mut self, kind: GateKind, output: usize, inputs: &[usize]) -> &mut Self {
        let ins: Vec<NetId> = inputs.iter().map(|&i| NetId::from_index(i)).collect();
        self.push_gate(kind, output, ins)
    }

    fn push_gate(&mut self, kind: GateKind, out: usize, inputs: Vec<NetId>) -> &mut Self {
        let idx = self.gates.len();
        self.gates.push(Gate {
            kind,
            inputs,
            output: NetId::from_index(out),
        });
        self.set_driver(out, PendingDriver::Gate(idx));
        self
    }

    /// Declares a D flip-flop with state output `q` and data input `d`.
    pub fn dff(&mut self, q: &str, d: &str) -> &mut Self {
        let qn = self.intern(q);
        let dn = self.intern(d);
        self.dff_nets(qn, dn)
    }

    /// Id-based form of [`NetlistBuilder::dff`].
    pub fn dff_nets(&mut self, q: usize, d: usize) -> &mut Self {
        let idx = self.ffs.len();
        self.ffs.push((d, q));
        self.set_driver(q, PendingDriver::Ff(idx));
        self
    }

    /// Resolves names, validates the circuit, and produces the [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns an error if a net has several drivers or none, a gate has an
    /// illegal fanin, the circuit has no primary inputs, or the combinational
    /// core is cyclic.
    pub fn finish(self) -> Result<Netlist, CircuitError> {
        if let Some(net) = self.duplicate {
            return Err(CircuitError::MultipleDrivers { net });
        }
        if self.pis.is_empty() {
            return Err(CircuitError::NoInputs);
        }
        let n = self.net_names.len();
        let mut drivers = Vec::with_capacity(n);
        for (i, pd) in self.pending.iter().enumerate() {
            let d = match pd {
                PendingDriver::None => {
                    return Err(CircuitError::Undriven {
                        net: self.net_names[i].to_string(),
                    })
                }
                PendingDriver::Pi(k) => Driver::Pi(*k),
                PendingDriver::Gate(g) => Driver::Gate(GateId::from_index(*g)),
                PendingDriver::Ff(f) => Driver::Ff(FfId::from_index(*f)),
            };
            drivers.push(d);
        }

        let gates = self.gates;
        for g in &gates {
            if !g.kind.accepts_fanin(g.inputs.len()) {
                return Err(CircuitError::BadFanin {
                    net: self.net_names[g.output.index()].to_string(),
                    got: g.inputs.len(),
                });
            }
        }
        let ffs: Vec<Ff> = self
            .ffs
            .iter()
            .map(|&(d, q)| Ff {
                d: NetId::from_index(d),
                q: NetId::from_index(q),
            })
            .collect();

        // Fanout CSR, filled by counting sort. Emission order matches the
        // historical per-net append order (gates by id in pin order, then
        // flip-flop D pins, then primary outputs), which downstream
        // compilation relies on for adjacent-duplicate elimination.
        let mut fanout_offsets = vec![0u32; n + 1];
        for g in &gates {
            for input in &g.inputs {
                fanout_offsets[input.index() + 1] += 1;
            }
        }
        for ff in &ffs {
            fanout_offsets[ff.d.index() + 1] += 1;
        }
        for &po in &self.pos {
            fanout_offsets[po + 1] += 1;
        }
        for i in 0..n {
            fanout_offsets[i + 1] += fanout_offsets[i];
        }
        let total_sinks = fanout_offsets[n] as usize;
        let mut fanout_sinks = vec![Sink::Po(PoId::from_index(0)); total_sinks];
        let mut cursor = fanout_offsets.clone();
        let mut place = |net: usize, sink: Sink, cursor: &mut [u32]| {
            fanout_sinks[cursor[net] as usize] = sink;
            cursor[net] += 1;
        };
        for (gi, g) in gates.iter().enumerate() {
            for (pin, &input) in g.inputs.iter().enumerate() {
                place(
                    input.index(),
                    Sink::GatePin(
                        GateId::from_index(gi),
                        u8::try_from(pin).expect("gate fanin exceeds 255"),
                    ),
                    &mut cursor,
                );
            }
        }
        for (fi, ff) in ffs.iter().enumerate() {
            place(ff.d.index(), Sink::FfD(FfId::from_index(fi)), &mut cursor);
        }
        for (pi, &po) in self.pos.iter().enumerate() {
            place(po, Sink::Po(PoId::from_index(pi)), &mut cursor);
        }
        let sinks_of = |net: usize| {
            &fanout_sinks[fanout_offsets[net] as usize..fanout_offsets[net + 1] as usize]
        };

        // Kahn's algorithm over gates; PIs and FF outputs are sources.
        let mut indeg: Vec<usize> = gates
            .iter()
            .map(|g| {
                g.inputs
                    .iter()
                    .filter(|i| matches!(drivers[i.index()], Driver::Gate(_)))
                    .count()
            })
            .collect();
        let mut queue: Vec<GateId> = Vec::with_capacity(gates.len());
        queue.extend(
            indeg
                .iter()
                .enumerate()
                .filter(|(_, &d)| d == 0)
                .map(|(i, _)| GateId::from_index(i)),
        );
        let mut topo = Vec::with_capacity(gates.len());
        let mut head = 0;
        while head < queue.len() {
            let gid = queue[head];
            head += 1;
            topo.push(gid);
            for sink in sinks_of(gates[gid.index()].output.index()) {
                if let Sink::GatePin(consumer, _) = sink {
                    let ci = consumer.index();
                    indeg[ci] -= 1;
                    if indeg[ci] == 0 {
                        queue.push(*consumer);
                    }
                }
            }
        }
        if topo.len() != gates.len() {
            let on_cycle = indeg
                .iter()
                .position(|&d| d > 0)
                .expect("cycle implies positive in-degree");
            return Err(CircuitError::CombinationalCycle {
                net: self.net_names[gates[on_cycle].output.index()].to_string(),
            });
        }

        // Net levels: sources at 0, gate outputs at 1 + max input level.
        let mut levels = vec![0u32; n];
        let mut max_level = 0;
        for &gid in &topo {
            let g = &gates[gid.index()];
            let lvl = 1 + g
                .inputs
                .iter()
                .map(|i| levels[i.index()])
                .max()
                .unwrap_or(0);
            levels[g.output.index()] = lvl;
            max_level = max_level.max(lvl);
        }

        let mut name_index: Vec<u32> = (0..u32::try_from(n).expect("net count overflow")).collect();
        let net_names = self.net_names;
        name_index.sort_unstable_by(|&a, &b| net_names[a as usize].cmp(&net_names[b as usize]));

        Ok(Netlist {
            name: self.name,
            net_names,
            name_index,
            drivers,
            gates,
            ffs,
            pis: self.pis.into_iter().map(NetId::from_index).collect(),
            pos: self.pos.into_iter().map(NetId::from_index).collect(),
            fanout_offsets,
            fanout_sinks,
            topo,
            levels,
            max_level,
            compiled: Arc::new(OnceLock::new()),
            fused: Arc::new(OnceLock::new()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Netlist {
        let mut b = NetlistBuilder::new("toy");
        b.input("a");
        b.input("b");
        b.dff("q", "d");
        b.gate(GateKind::And, "d", &["a", "q"]);
        b.gate(GateKind::Xor, "y", &["b", "q"]);
        b.output("y");
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let nl = toy();
        assert_eq!(nl.name(), "toy");
        assert_eq!(nl.num_pis(), 2);
        assert_eq!(nl.num_pos(), 1);
        assert_eq!(nl.num_ffs(), 1);
        assert_eq!(nl.num_gates(), 2);
        assert_eq!(nl.num_nets(), 5); // a b q d y
    }

    #[test]
    fn drivers_and_fanouts_are_consistent() {
        let nl = toy();
        let q = nl.find_net("q").unwrap();
        assert!(matches!(nl.driver(q), Driver::Ff(_)));
        // q feeds both gates.
        assert_eq!(nl.fanouts(q).len(), 2);
        let d = nl.find_net("d").unwrap();
        assert!(matches!(nl.driver(d), Driver::Gate(_)));
        assert!(matches!(nl.fanouts(d)[0], Sink::FfD(_)));
        let y = nl.find_net("y").unwrap();
        assert!(matches!(nl.fanouts(y)[0], Sink::Po(_)));
    }

    #[test]
    fn id_based_api_matches_name_based_api() {
        let by_name = toy();
        let mut b = NetlistBuilder::with_capacity("toy", 5, 2, 1);
        let a = b.net("a");
        let bb = b.net("b");
        let q = b.net("q");
        let d = b.net("d");
        let y = b.net("y");
        b.input_net(a);
        b.input_net(bb);
        b.dff_nets(q, d);
        b.gate_nets(GateKind::And, d, &[a, q]);
        b.gate_nets(GateKind::Xor, y, &[bb, q]);
        b.output_net(y);
        let by_id = b.finish().unwrap();
        assert_eq!(by_id.num_nets(), by_name.num_nets());
        assert_eq!(by_id.gates(), by_name.gates());
        assert_eq!(by_id.ffs(), by_name.ffs());
        assert_eq!(by_id.pis(), by_name.pis());
        assert_eq!(by_id.pos(), by_name.pos());
        for net in by_name.net_ids() {
            assert_eq!(by_id.net_name(net), by_name.net_name(net));
            assert_eq!(by_id.fanouts(net), by_name.fanouts(net));
        }
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut b = NetlistBuilder::new("chain");
        b.input("a");
        b.gate(GateKind::Not, "x", &["a"]);
        b.gate(GateKind::Not, "y", &["x"]);
        b.gate(GateKind::Not, "z", &["y"]);
        b.output("z");
        let nl = b.finish().unwrap();
        let order = nl.topo_order();
        let pos_of = |net: &str| {
            let id = nl.find_net(net).unwrap();
            order
                .iter()
                .position(|&g| nl.gate(g).output() == id)
                .unwrap()
        };
        assert!(pos_of("x") < pos_of("y"));
        assert!(pos_of("y") < pos_of("z"));
        assert_eq!(nl.level(nl.find_net("z").unwrap()), 3);
        assert_eq!(nl.max_level(), 3);
    }

    #[test]
    fn ff_breaks_cycles() {
        // d = NOT(q) with q = DFF(d) is fine: the loop crosses a flip-flop.
        let mut b = NetlistBuilder::new("tff");
        b.input("en");
        b.dff("q", "d");
        b.gate(GateKind::Xor, "d", &["q", "en"]);
        b.output("q");
        assert!(b.finish().is_ok());
    }

    #[test]
    fn detects_combinational_cycle() {
        let mut b = NetlistBuilder::new("cyc");
        b.input("a");
        b.gate(GateKind::And, "x", &["a", "y"]);
        b.gate(GateKind::And, "y", &["a", "x"]);
        b.output("y");
        assert!(matches!(
            b.finish(),
            Err(CircuitError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn detects_multiple_drivers() {
        let mut b = NetlistBuilder::new("md");
        b.input("a");
        b.gate(GateKind::Not, "x", &["a"]);
        b.gate(GateKind::Buf, "x", &["a"]);
        b.output("x");
        assert!(matches!(
            b.finish(),
            Err(CircuitError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn detects_undriven_net() {
        let mut b = NetlistBuilder::new("ud");
        b.input("a");
        b.gate(GateKind::And, "x", &["a", "ghost"]);
        b.output("x");
        assert!(matches!(b.finish(), Err(CircuitError::Undriven { .. })));
    }

    #[test]
    fn detects_bad_fanin() {
        let mut b = NetlistBuilder::new("bf");
        b.input("a");
        b.input("b");
        b.gate(GateKind::Not, "x", &["a", "b"]);
        b.output("x");
        assert!(matches!(b.finish(), Err(CircuitError::BadFanin { .. })));
    }

    #[test]
    fn rejects_input_free_circuit() {
        let b = NetlistBuilder::new("empty");
        assert!(matches!(b.finish(), Err(CircuitError::NoInputs)));
    }

    #[test]
    fn find_net_resolves_names() {
        let nl = toy();
        assert!(nl.find_net("a").is_some());
        assert!(nl.find_net("nope").is_none());
        let a = nl.find_net("a").unwrap();
        assert_eq!(nl.net_name(a), "a");
    }

    #[test]
    fn find_net_resolves_every_name_on_a_larger_circuit() {
        let mut b = NetlistBuilder::new("many");
        b.input("a");
        let mut prev = "a".to_owned();
        for i in 0..200 {
            let name = format!("n{i}");
            b.gate(GateKind::Not, &name, &[&prev]);
            prev = name;
        }
        b.output(&prev);
        let nl = b.finish().unwrap();
        for net in nl.net_ids() {
            assert_eq!(nl.find_net(nl.net_name(net)), Some(net));
        }
        assert!(nl.find_net("absent").is_none());
    }
}
