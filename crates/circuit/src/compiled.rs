//! A flat, cache-friendly compiled view of a [`Netlist`].
//!
//! [`Netlist`] stores each gate's inputs in its own heap-allocated
//! `Vec<NetId>` and each net's fanouts in a `Vec<Vec<Sink>>`, which is
//! convenient to build and inspect but forces a pointer chase per gate in
//! every simulation inner loop. [`CompiledCircuit`] re-lays the same
//! structure out as a handful of contiguous arrays in compressed-sparse-row
//! (CSR) form:
//!
//! - all gate input pins live in one `pin_nets` array, with a `pin_offsets`
//!   table giving each gate its span;
//! - the evaluation `schedule` pre-sorts gates into level buckets
//!   (`level_offsets` delimits the gates of each combinational level), so a
//!   full pass is a single linear sweep and an event-driven pass can seek
//!   directly to the first affected level;
//! - the gate-sink fanout of every net is one `fanout_gates` array with a
//!   `fanout_offsets` table (net → span of consuming gates, deduplicated);
//! - per-gate [`GateKind`]/output/level and per-net observability and
//!   driver-class flags are plain dense arrays indexed by id.
//!
//! The compiled view is built once per netlist — [`Netlist::compiled`]
//! caches it — and [`CompiledCircuit::validate`] cross-checks every array
//! against the pointer-based representation, which the differential test
//! suites lean on.

use crate::{FfId, GateId, GateKind, NetId, Netlist, Sink};

/// Flat CSR view of a [`Netlist`]'s combinational core (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledCircuit {
    num_nets: usize,
    max_level: u32,
    // Per-gate dense arrays.
    kinds: Vec<GateKind>,
    outputs: Vec<NetId>,
    gate_levels: Vec<u32>,
    // Gate-input CSR: inputs of gate `g` are `pin_nets[pin_offsets[g]..pin_offsets[g+1]]`.
    pin_offsets: Vec<u32>,
    pin_nets: Vec<NetId>,
    // Level-bucketed evaluation order: gates of level `l` are
    // `schedule[level_offsets[l]..level_offsets[l+1]]`.
    level_offsets: Vec<u32>,
    schedule: Vec<GateId>,
    // Net-fanout CSR restricted to gate sinks, deduplicated per net.
    fanout_offsets: Vec<u32>,
    fanout_gates: Vec<GateId>,
    // Per-net flags.
    observed: Vec<bool>,
    gate_driven: Vec<bool>,
    // Interface nets.
    pi_nets: Vec<NetId>,
    ff_q: Vec<NetId>,
    ff_d: Vec<NetId>,
    po_nets: Vec<NetId>,
}

impl CompiledCircuit {
    /// Compiles `nl` into the flat CSR layout.
    pub fn compile(nl: &Netlist) -> Self {
        let num_gates = nl.num_gates();
        let num_nets = nl.num_nets();

        let total_pins: usize = nl.gates().iter().map(|g| g.inputs().len()).sum();

        let mut kinds = Vec::with_capacity(num_gates);
        let mut outputs = Vec::with_capacity(num_gates);
        let mut gate_levels = Vec::with_capacity(num_gates);
        let mut pin_offsets = Vec::with_capacity(num_gates + 1);
        let mut pin_nets = Vec::with_capacity(total_pins);
        pin_offsets.push(0u32);
        for g in nl.gates() {
            kinds.push(g.kind());
            outputs.push(g.output());
            gate_levels.push(nl.level(g.output()));
            pin_nets.extend_from_slice(g.inputs());
            pin_offsets.push(u32::try_from(pin_nets.len()).expect("pin count overflow"));
        }

        // Counting sort of gates into level buckets. Gates within a level
        // are independent, so id order inside a bucket is as good as any;
        // it is also deterministic.
        let levels = nl.max_level() as usize + 1;
        let mut counts = vec![0u32; levels + 1];
        for &lvl in &gate_levels {
            counts[lvl as usize + 1] += 1;
        }
        for l in 0..levels {
            counts[l + 1] += counts[l];
        }
        let level_offsets = counts.clone();
        let mut schedule = vec![GateId::from_index(0); num_gates];
        let mut cursor = counts;
        for (gi, &lvl) in gate_levels.iter().enumerate() {
            let slot = cursor[lvl as usize];
            schedule[slot as usize] = GateId::from_index(gi);
            cursor[lvl as usize] += 1;
        }

        // Every gate pin contributes at most one fanout entry (duplicates
        // to the same gate are removed), so `total_pins` is a tight bound.
        let mut fanout_offsets = Vec::with_capacity(num_nets + 1);
        let mut fanout_gates = Vec::with_capacity(total_pins);
        let mut observed = vec![false; num_nets];
        fanout_offsets.push(0u32);
        for net in nl.net_ids() {
            for sink in nl.fanouts(net) {
                match *sink {
                    Sink::GatePin(gid, _) => {
                        // Multi-pin connections to one gate are adjacent in
                        // the fanout table (it is built gate-by-gate in pin
                        // order), so adjacent dedup removes all duplicates.
                        if fanout_gates.last() != Some(&gid)
                            || *fanout_offsets.last().expect("non-empty") as usize
                                == fanout_gates.len()
                        {
                            fanout_gates.push(gid);
                        }
                    }
                    Sink::FfD(_) | Sink::Po(_) => observed[net.index()] = true,
                }
            }
            fanout_offsets.push(u32::try_from(fanout_gates.len()).expect("fanout overflow"));
        }

        let gate_driven = nl
            .net_ids()
            .map(|n| matches!(nl.driver(n), crate::Driver::Gate(_)))
            .collect();

        let cc = CompiledCircuit {
            num_nets,
            max_level: nl.max_level(),
            kinds,
            outputs,
            gate_levels,
            pin_offsets,
            pin_nets,
            level_offsets,
            schedule,
            fanout_offsets,
            fanout_gates,
            observed,
            gate_driven,
            pi_nets: nl.pis().to_vec(),
            ff_q: nl.ffs().iter().map(|ff| ff.q()).collect(),
            ff_d: nl.ffs().iter().map(|ff| ff.d()).collect(),
            po_nets: nl.pos().to_vec(),
        };
        debug_assert_eq!(cc.validate(nl), Ok(()));
        cc
    }

    /// Cross-checks every compiled array against the pointer-based netlist.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self, nl: &Netlist) -> Result<(), String> {
        if self.num_nets != nl.num_nets() {
            return Err(format!("net count {} != {}", self.num_nets, nl.num_nets()));
        }
        if self.kinds.len() != nl.num_gates() || self.max_level != nl.max_level() {
            return Err("gate count or max level mismatch".into());
        }
        for gid in nl.gate_ids() {
            let g = nl.gate(gid);
            let gi = gid.index();
            if self.kinds[gi] != g.kind() {
                return Err(format!("{gid}: kind mismatch"));
            }
            if self.outputs[gi] != g.output() {
                return Err(format!("{gid}: output mismatch"));
            }
            if self.inputs(gid) != g.inputs() {
                return Err(format!("{gid}: input span mismatch"));
            }
            if self.gate_levels[gi] != nl.level(g.output()) {
                return Err(format!("{gid}: level mismatch"));
            }
        }
        // The schedule must be a level-sorted permutation of all gates.
        let mut seen = vec![false; nl.num_gates()];
        let mut last_level = 0;
        for &gid in &self.schedule {
            if std::mem::replace(&mut seen[gid.index()], true) {
                return Err(format!("{gid}: scheduled twice"));
            }
            let lvl = self.gate_levels[gid.index()];
            if lvl < last_level {
                return Err(format!("{gid}: schedule not level-sorted"));
            }
            last_level = lvl;
        }
        if !seen.iter().all(|&s| s) {
            return Err("schedule misses a gate".into());
        }
        for l in 0..=self.max_level {
            for &gid in self.gates_at_level(l) {
                if self.gate_levels[gid.index()] != l {
                    return Err(format!("{gid}: wrong level bucket"));
                }
            }
        }
        for net in nl.net_ids() {
            let mut expect: Vec<GateId> = Vec::new();
            let mut obs = false;
            for sink in nl.fanouts(net) {
                match *sink {
                    Sink::GatePin(gid, _) => {
                        if expect.last() != Some(&gid) {
                            expect.push(gid);
                        }
                    }
                    Sink::FfD(_) | Sink::Po(_) => obs = true,
                }
            }
            if self.fanout_gates(net) != expect.as_slice() {
                return Err(format!("{net}: fanout span mismatch"));
            }
            if self.observed[net.index()] != obs {
                return Err(format!("{net}: observed flag mismatch"));
            }
            let driven = matches!(nl.driver(net), crate::Driver::Gate(_));
            if self.gate_driven[net.index()] != driven {
                return Err(format!("{net}: gate_driven flag mismatch"));
            }
        }
        if self.pi_nets != nl.pis()
            || self.po_nets != nl.pos()
            || self.ff_q.len() != nl.num_ffs()
            || self.ff_d.len() != nl.num_ffs()
        {
            return Err("interface net arrays mismatch".into());
        }
        for (fi, ff) in nl.ffs().iter().enumerate() {
            if self.ff_q[fi] != ff.q() || self.ff_d[fi] != ff.d() {
                return Err(format!("ff{fi}: q/d net mismatch"));
            }
        }
        Ok(())
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Number of gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.kinds.len()
    }

    /// The maximum combinational level (0 if gate-free).
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// The logic function of a gate.
    #[inline]
    pub fn kind(&self, gate: GateId) -> GateKind {
        self.kinds[gate.index()]
    }

    /// The net driven by a gate.
    #[inline]
    pub fn output(&self, gate: GateId) -> NetId {
        self.outputs[gate.index()]
    }

    /// The combinational level of a gate's output.
    #[inline]
    pub fn gate_level(&self, gate: GateId) -> u32 {
        self.gate_levels[gate.index()]
    }

    /// A gate's input nets in pin order (a span of the `pin_nets` CSR).
    #[inline]
    pub fn inputs(&self, gate: GateId) -> &[NetId] {
        let gi = gate.index();
        let lo = self.pin_offsets[gi] as usize;
        let hi = self.pin_offsets[gi + 1] as usize;
        &self.pin_nets[lo..hi]
    }

    /// All gates, pre-sorted by ascending level (a valid evaluation order).
    #[inline]
    pub fn schedule(&self) -> &[GateId] {
        &self.schedule
    }

    /// The gates whose output sits at combinational level `level`.
    #[inline]
    pub fn gates_at_level(&self, level: u32) -> &[GateId] {
        let l = level as usize;
        let lo = self.level_offsets[l] as usize;
        let hi = self.level_offsets[l + 1] as usize;
        &self.schedule[lo..hi]
    }

    /// The gates consuming a net (deduplicated; multi-pin connections to
    /// the same gate appear once).
    #[inline]
    pub fn fanout_gates(&self, net: NetId) -> &[GateId] {
        let ni = net.index();
        let lo = self.fanout_offsets[ni] as usize;
        let hi = self.fanout_offsets[ni + 1] as usize;
        &self.fanout_gates[lo..hi]
    }

    /// Whether a net is directly observed (feeds a primary output position
    /// or a flip-flop D input).
    #[inline]
    pub fn observed(&self, net: NetId) -> bool {
        self.observed[net.index()]
    }

    /// Whether a net is driven by a gate (as opposed to a primary input or
    /// flip-flop output — the source nets a simulation seeds).
    #[inline]
    pub fn gate_driven(&self, net: NetId) -> bool {
        self.gate_driven[net.index()]
    }

    /// Primary-input nets in declaration order.
    #[inline]
    pub fn pis(&self) -> &[NetId] {
        &self.pi_nets
    }

    /// Flip-flop Q (state output) nets, indexed by [`FfId`].
    #[inline]
    pub fn ff_qs(&self) -> &[NetId] {
        &self.ff_q
    }

    /// Flip-flop D (state input) nets, indexed by [`FfId`].
    #[inline]
    pub fn ff_ds(&self) -> &[NetId] {
        &self.ff_d
    }

    /// The Q net of one flip-flop.
    #[inline]
    pub fn ff_q(&self, ff: FfId) -> NetId {
        self.ff_q[ff.index()]
    }

    /// The D net of one flip-flop.
    #[inline]
    pub fn ff_d(&self, ff: FfId) -> NetId {
        self.ff_d[ff.index()]
    }

    /// Primary-output nets in declaration order.
    #[inline]
    pub fn pos(&self) -> &[NetId] {
        &self.po_nets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_fmt::s27;
    use crate::synth::{generate, SynthSpec};
    use crate::NetlistBuilder;

    #[test]
    fn compiles_and_validates_s27() {
        let nl = s27();
        let cc = CompiledCircuit::compile(&nl);
        assert_eq!(cc.validate(&nl), Ok(()));
        assert_eq!(cc.num_gates(), nl.num_gates());
        assert_eq!(cc.num_nets(), nl.num_nets());
        assert_eq!(cc.pis(), nl.pis());
        assert_eq!(cc.pos(), nl.pos());
    }

    #[test]
    fn compiles_and_validates_synthetic() {
        let nl = generate(&SynthSpec::new("cc", 7, 5, 11, 240, 3)).unwrap();
        let cc = CompiledCircuit::compile(&nl);
        assert_eq!(cc.validate(&nl), Ok(()));
    }

    #[test]
    fn schedule_is_a_valid_evaluation_order() {
        let nl = s27();
        let cc = CompiledCircuit::compile(&nl);
        // Walking the schedule, every gate input must already be defined:
        // either a source net or the output of an earlier-scheduled gate.
        let mut defined = vec![false; nl.num_nets()];
        for net in nl.net_ids() {
            if !cc.gate_driven(net) {
                defined[net.index()] = true;
            }
        }
        for &gid in cc.schedule() {
            for &input in cc.inputs(gid) {
                assert!(defined[input.index()], "{gid} reads undefined {input}");
            }
            defined[cc.output(gid).index()] = true;
        }
        assert!(defined.iter().all(|&d| d));
    }

    #[test]
    fn fanout_spans_dedup_multi_pin_connections() {
        // y = AND(a, a): net `a` feeds gate 0 on two pins but must appear
        // once in the compiled fanout span.
        let mut b = NetlistBuilder::new("dup");
        b.input("a");
        b.gate(crate::GateKind::And, "y", &["a", "a"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let cc = CompiledCircuit::compile(&nl);
        let a = nl.find_net("a").unwrap();
        assert_eq!(cc.fanout_gates(a).len(), 1);
        assert_eq!(cc.validate(&nl), Ok(()));
    }

    #[test]
    fn observed_marks_po_and_ffd_nets() {
        let nl = s27();
        let cc = CompiledCircuit::compile(&nl);
        for &po in nl.pos() {
            assert!(cc.observed(po));
        }
        for ff in nl.ffs() {
            assert!(cc.observed(ff.d()));
        }
    }

    #[test]
    fn cached_view_is_shared_across_clones() {
        let nl = s27();
        let a: *const CompiledCircuit = nl.compiled();
        let nl2 = nl.clone();
        let b: *const CompiledCircuit = nl2.compiled();
        assert_eq!(a, b, "clones share the compiled cache");
    }
}
