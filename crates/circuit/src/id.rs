//! Typed indices into a [`Netlist`](crate::Netlist).

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflow"))
            }

            /// Returns the dense index this id wraps.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a net (a named signal) within a netlist.
    NetId,
    "n"
);
id_type!(
    /// Identifies a logic gate within a netlist.
    GateId,
    "g"
);
id_type!(
    /// Identifies a D flip-flop within a netlist.
    FfId,
    "ff"
);
id_type!(
    /// Identifies a primary output position within a netlist.
    PoId,
    "po"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        let id = NetId::from_index(42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn debug_and_display_are_tagged() {
        assert_eq!(format!("{:?}", GateId::from_index(3)), "g3");
        assert_eq!(format!("{}", FfId::from_index(7)), "ff7");
        assert_eq!(format!("{}", PoId::from_index(0)), "po0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NetId::from_index(1) < NetId::from_index(2));
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn rejects_oversized_index() {
        let _ = NetId::from_index(usize::MAX);
    }
}
