//! Property-based tests for the netlist substrate.

use atspeed_circuit::bench_fmt;
use atspeed_circuit::synth::{generate, SynthSpec};
use atspeed_circuit::{Driver, Sink};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = SynthSpec> {
    (1usize..8, 1usize..6, 0usize..12, 4usize..120, any::<u64>())
        .prop_map(|(pis, pos, ffs, gates, seed)| SynthSpec::new("prop", pis, pos, ffs, gates, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated circuit parses back from its own `.bench` text with
    /// identical structure.
    #[test]
    fn bench_round_trip(spec in arb_spec()) {
        let nl = generate(&spec).unwrap();
        let text = bench_fmt::write(&nl);
        let back = bench_fmt::parse(nl.name(), &text).unwrap();
        prop_assert_eq!(back.num_nets(), nl.num_nets());
        prop_assert_eq!(back.num_gates(), nl.num_gates());
        prop_assert_eq!(back.num_ffs(), nl.num_ffs());
        prop_assert_eq!(back.num_pis(), nl.num_pis());
        prop_assert_eq!(back.num_pos(), nl.num_pos());
        for net in nl.net_ids() {
            let other = back.find_net(nl.net_name(net)).expect("same names");
            prop_assert_eq!(back.level(other), nl.level(net));
        }
    }

    /// Topological order lists every gate exactly once, after its driven
    /// inputs.
    #[test]
    fn topo_order_is_a_valid_schedule(spec in arb_spec()) {
        let nl = generate(&spec).unwrap();
        let order = nl.topo_order();
        prop_assert_eq!(order.len(), nl.num_gates());
        let mut seen = vec![false; nl.num_gates()];
        for &gid in order {
            for &input in nl.gate(gid).inputs() {
                if let Driver::Gate(dep) = nl.driver(input) {
                    prop_assert!(seen[dep.index()], "gate scheduled before driver");
                }
            }
            prop_assert!(!seen[gid.index()], "gate scheduled twice");
            seen[gid.index()] = true;
        }
    }

    /// Levels strictly increase along gate edges, and fanout tables agree
    /// with gate inputs.
    #[test]
    fn levels_and_fanouts_are_consistent(spec in arb_spec()) {
        let nl = generate(&spec).unwrap();
        for g in nl.gates() {
            for (pin, &input) in g.inputs().iter().enumerate() {
                prop_assert!(nl.level(input) < nl.level(g.output()));
                // The input net's fanout table must list this pin.
                let gid = match nl.driver(g.output()) {
                    Driver::Gate(gid) => gid,
                    other => { prop_assert!(false, "gate output driven by {other:?}"); unreachable!() }
                };
                let listed = nl
                    .fanouts(input)
                    .iter()
                    .any(|s| matches!(s, Sink::GatePin(g2, p2) if *g2 == gid && *p2 == pin as u8));
                prop_assert!(listed, "missing fanout entry");
            }
        }
    }

    /// Generation is a pure function of the spec.
    #[test]
    fn generation_is_deterministic(spec in arb_spec()) {
        let a = generate(&spec).unwrap();
        let b = generate(&spec).unwrap();
        prop_assert_eq!(a.num_nets(), b.num_nets());
        prop_assert!(a.gates().iter().zip(b.gates().iter()).all(|(x, y)| x == y));
    }
}
