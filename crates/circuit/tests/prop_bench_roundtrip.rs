//! `.bench` writer→parser round-trip properties.
//!
//! [`bench_fmt::write`] promises that its output parses back to a
//! structurally identical circuit. These tests hold it to that over the
//! whole benchmark catalog and a space of random synthetic circuits:
//! net names, flip-flop ordering, gate kinds and input order, and the
//! interface counts embedded in the header comments must all survive the
//! trip.

use atspeed_circuit::bench_fmt::{self, s27};
use atspeed_circuit::synth::{generate, SynthSpec};
use atspeed_circuit::{catalog, Netlist};
use proptest::prelude::*;

/// Asserts that `nl` and `write(nl)` re-parsed describe the same circuit.
fn assert_round_trips(nl: &Netlist) {
    let text = bench_fmt::write(nl);
    let back = bench_fmt::parse(nl.name(), &text).expect("writer output parses");

    assert_eq!(back.num_pis(), nl.num_pis());
    assert_eq!(back.num_pos(), nl.num_pos());
    assert_eq!(back.num_ffs(), nl.num_ffs());
    assert_eq!(back.num_gates(), nl.num_gates());
    assert_eq!(back.num_nets(), nl.num_nets());

    // Interface names and ordering.
    let names = |nl: &Netlist, nets: &[atspeed_circuit::NetId]| -> Vec<String> {
        nets.iter().map(|&n| nl.net_name(n).to_owned()).collect()
    };
    assert_eq!(names(&back, back.pis()), names(nl, nl.pis()));
    assert_eq!(names(&back, back.pos()), names(nl, nl.pos()));

    // Flip-flop ordering (scan-chain order!) with q/d wiring by name.
    for (a, b) in nl.ffs().iter().zip(back.ffs().iter()) {
        assert_eq!(nl.net_name(a.q()), back.net_name(b.q()));
        assert_eq!(nl.net_name(a.d()), back.net_name(b.d()));
    }

    // Gates: same kind and same inputs in the same order, matched by
    // output-net name.
    assert_eq!(nl.gates().len(), back.gates().len());
    for (a, b) in nl.gates().iter().zip(back.gates().iter()) {
        assert_eq!(nl.net_name(a.output()), back.net_name(b.output()));
        assert_eq!(a.kind(), b.kind());
        let ins_a: Vec<&str> = a.inputs().iter().map(|&n| nl.net_name(n)).collect();
        let ins_b: Vec<&str> = b.inputs().iter().map(|&n| back.net_name(n)).collect();
        assert_eq!(ins_a, ins_b, "inputs of {}", nl.net_name(a.output()));
    }

    // The header comments carry the circuit name and interface counts.
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some(format!("# {}", nl.name()).as_str()));
    let counts = lines.next().expect("counts comment");
    assert!(counts.starts_with('#'));
    assert!(
        counts.contains(&format!("{} inputs", nl.num_pis())),
        "{counts}"
    );
    assert!(
        counts.contains(&format!("{} gates", nl.num_gates())),
        "{counts}"
    );

    // Writing the re-parsed circuit reproduces the text exactly (the writer
    // is a fixpoint of parse∘write).
    assert_eq!(bench_fmt::write(&back), text);
}

#[test]
fn s27_fixture_round_trips() {
    assert_round_trips(&s27());
}

#[test]
fn catalog_circuits_round_trip() {
    for info in catalog::all() {
        assert_round_trips(&info.instantiate());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_synthetic_circuits_round_trip(
        (pis, pos, ffs, gates, seed) in (1usize..6, 1usize..5, 0usize..10, 8usize..120, any::<u64>())
    ) {
        let spec = SynthSpec::new("rt", pis, pos, ffs, gates.max(pos + ffs), seed);
        let nl = generate(&spec).unwrap();
        assert_round_trips(&nl);
    }
}
