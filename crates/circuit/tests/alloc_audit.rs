//! Allocation audit for the `.bench` parser and `CompiledCircuit` build.
//!
//! Integration tests get their own binary, so installing a counting global
//! allocator here observes only this file's work. The test pins the
//! allocation count per gate for parse → build → compile of a large
//! synthetic netlist, which is the regression guard for the reservation and
//! name-interning work (see DESIGN.md "Scaling").

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use atspeed_circuit::bench_fmt;
use atspeed_circuit::synth::{generate, SynthSpec};
use atspeed_circuit::CompiledCircuit;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: Counting = Counting;

fn count<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCS.load(Ordering::Relaxed) - before)
}

#[test]
fn parse_and_compile_allocations_stay_bounded() {
    let spec = SynthSpec::new("audit", 32, 16, 64, 10_000, 11);
    let nl = generate(&spec).unwrap();
    let text = bench_fmt::write(&nl);
    let gates = nl.num_gates() as u64;

    let (parsed, parse_allocs) = count(|| bench_fmt::parse("audit", &text).unwrap());
    let (_cc, compile_allocs) = count(|| CompiledCircuit::compile(&parsed));

    let per_gate_parse = parse_allocs as f64 / gates as f64;
    let per_gate_compile = compile_allocs as f64 / gates as f64;
    eprintln!(
        "gates={gates} parse_allocs={parse_allocs} ({per_gate_parse:.2}/gate) \
         compile_allocs={compile_allocs} ({per_gate_compile:.2}/gate)"
    );

    // Bounds chosen with ~50% headroom over the measured counts after the
    // reservation/interning work (3.01/gate parse, 16 total compile; the
    // pre-refactor code measured 7.15/gate and 42); see DESIGN.md "Scaling".
    assert!(
        per_gate_parse < 4.5,
        "parser allocates {per_gate_parse:.2} per gate"
    );
    // Debug builds run the allocating field-by-field validator inside
    // `compile` (`debug_assert_eq!(cc.validate(nl), ..)`), so the flat
    // ceiling only holds without debug assertions; under them, bound the
    // validator's per-gate cost instead (measured 1.11/gate).
    #[cfg(not(debug_assertions))]
    assert!(
        compile_allocs < 64,
        "compile allocates {compile_allocs} times"
    );
    #[cfg(debug_assertions)]
    assert!(
        per_gate_compile < 2.0,
        "compile+validate allocates {per_gate_compile:.2} per gate"
    );
}
