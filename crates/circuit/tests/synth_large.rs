//! Property tests for [`SynthSpec`] at large-circuit parameters.
//!
//! The stress pipeline leans on the layered generator for 100k+-gate
//! circuits; these tests pin the properties it relies on at a CI-friendly
//! scale (≥10k gates): the generated netlist is valid and levelizable, it
//! round-trips through the `.bench` parser, and `shrink_candidates` still
//! converges from the enlarged parameter space.

use atspeed_circuit::bench_fmt;
use atspeed_circuit::synth::{generate, SynthSpec};
use atspeed_circuit::Driver;

fn large_specs() -> Vec<SynthSpec> {
    vec![
        SynthSpec::new("large-uniform", 64, 32, 200, 10_000, 2001).with_layers(40),
        SynthSpec::new("large-hubs", 32, 8, 500, 12_000, 7)
            .with_layers(25)
            .with_fanout_hubs(16),
        SynthSpec::new("large-deep", 16, 4, 64, 10_000, 99)
            .with_layers(200)
            .with_fanout_hubs(4),
        // Legacy generator at the same scale, for contrast.
        SynthSpec::new("large-legacy", 32, 16, 128, 10_000, 5),
    ]
}

#[test]
fn large_specs_generate_valid_levelizable_circuits() {
    for spec in large_specs() {
        assert!(spec.is_valid(), "{spec:?}");
        let nl = generate(&spec).expect("large spec generates");
        assert_eq!(nl.num_pis(), spec.num_pis);
        assert_eq!(nl.num_pos(), spec.num_pos);
        assert_eq!(nl.num_ffs(), spec.num_ffs);
        assert!(nl.num_gates() >= spec.num_gates);

        // Levelizable: the builder already ran Kahn's algorithm; check the
        // level map it produced is a consistent schedule witness.
        assert_eq!(nl.topo_order().len(), nl.num_gates());
        let mut max_seen = 0;
        for &gid in nl.topo_order() {
            let g = nl.gate(gid);
            let out_lvl = nl.level(g.output());
            for &i in g.inputs() {
                assert!(nl.level(i) < out_lvl, "{gid}: level inversion");
            }
            max_seen = max_seen.max(out_lvl);
        }
        assert_eq!(max_seen, nl.max_level());
        if spec.layers > 0 {
            assert!(
                nl.max_level() as usize >= spec.layers / 2,
                "{}: depth {} for {} layers",
                spec.name,
                nl.max_level(),
                spec.layers
            );
        }

        // The flip-flop initializability guarantee holds at scale.
        for ff in nl.ffs() {
            assert!(matches!(nl.driver(ff.d()), Driver::Gate(_)));
        }

        // The compiled CSR view cross-validates against the pointer form.
        assert_eq!(nl.compiled().validate(&nl), Ok(()));
    }
}

#[test]
fn large_specs_round_trip_through_the_parser() {
    for spec in large_specs() {
        let nl = generate(&spec).expect("large spec generates");
        let text = bench_fmt::write(&nl);
        let back = bench_fmt::parse(&spec.name, &text).expect("round-trip parses");
        assert_eq!(back.num_nets(), nl.num_nets());
        assert_eq!(back.num_gates(), nl.num_gates());
        assert_eq!(back.num_ffs(), nl.num_ffs());
        assert_eq!(back.num_pis(), nl.num_pis());
        assert_eq!(back.num_pos(), nl.num_pos());
        assert_eq!(back.max_level(), nl.max_level());
        // The writer emits statements in a deterministic order, so the
        // reparsed circuit is structurally identical gate for gate.
        for (a, b) in nl.gates().iter().zip(back.gates().iter()) {
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.inputs().len(), b.inputs().len());
        }
    }
}

#[test]
fn shrinking_converges_from_the_enlarged_space() {
    for spec in large_specs() {
        let mut cur = spec.clone();
        let mut steps = 0usize;
        loop {
            let mut candidates = cur.shrink_candidates();
            match candidates.drain(..).next() {
                Some(next) => {
                    assert!(next.is_valid(), "{next:?}");
                    cur = next;
                }
                None => break,
            }
            steps += 1;
            assert!(steps < 10_000, "shrinking diverges from {spec:?}");
        }
        // The fixed point is a minimal legacy spec.
        assert_eq!(cur.layers, 0, "layers did not shrink away: {cur:?}");
        assert_eq!(cur.fanout_hubs, 0, "hubs did not shrink away: {cur:?}");
        assert!(cur.num_gates <= cur.num_pos + cur.num_ffs.max(1));
        // Aggressive-first ordering keeps convergence fast even from 12k
        // gates: halvings dominate (with a linear tail once the gate count
        // hits the `num_pos + num_ffs` floor), so a few hundred steps
        // suffice where naive decrementing would take tens of thousands.
        assert!(steps < 1_000, "took {steps} steps from {spec:?}");
    }
}
