//! Per-circuit experiment orchestration shared by the `tables` binary and
//! the Criterion benches.
//!
//! One [`CircuitExperiment`] holds everything the five tables need for one
//! circuit: the proposed pipeline run with an ATPG-style `T_0`
//! (the \[10\]/\[12\] stand-ins: directed generation for ISCAS-89 circuits,
//! property-based for ITC-99), the proposed pipeline run with a random
//! `T_0` of length 1000 (Table 5), the \[4\] baseline (initial and
//! compacted), and the \[2,3\]-style dynamic baseline.

use atspeed_circuit::catalog::{BenchmarkInfo, Suite};
use atspeed_circuit::Netlist;
use atspeed_core::dynamic::{dynamic_schedule, DynamicConfig, DynamicResult};
use atspeed_core::phase4::baseline4;
use atspeed_core::{CoreError, Pipeline, PipelineResult, T0Source, TestSet};
use atspeed_sim::fault::FaultUniverse;
use atspeed_sim::SimConfig;

/// Effort profile for an experiment sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Full settings used for the committed tables.
    Full,
    /// Reduced settings for smoke runs (shorter sequences, same structure).
    Quick,
}

/// All measured quantities for one circuit.
#[derive(Debug, Clone)]
pub struct CircuitExperiment {
    /// Benchmark descriptor.
    pub info: BenchmarkInfo,
    /// Proposed procedure with the ATPG-style `T_0` (Tables 1–4).
    pub proposed: PipelineResult,
    /// Proposed procedure with the random `T_0` (Tables 3–5). `None` for
    /// s35932, which the paper also leaves out of the random columns.
    pub proposed_rand: Option<PipelineResult>,
    /// Clock cycles of the \[4\] baseline's initial test set.
    pub b4_init_cycles: usize,
    /// Clock cycles of the \[4\] baseline after compaction.
    pub b4_comp_cycles: usize,
    /// At-speed stats of the \[4\]-compacted set.
    pub b4_at_speed: Option<atspeed_core::AtSpeedStats>,
    /// The \[2,3\]-style dynamic baseline.
    pub dynamic: DynamicResult,
}

/// Master seed for the committed tables.
pub const TABLE_SEED: u64 = 2001;

/// The random-`T_0` length used by the paper's Table 5.
pub const RANDOM_T0_LEN: usize = 1000;

fn t0_source_for(info: &BenchmarkInfo, effort: Effort) -> T0Source {
    // Cap each circuit's T0 at the length the paper reports for it: the
    // synthetic stand-ins then face workloads of the same scale, and the
    // large circuits stay tractable.
    let paper_len = crate::paper::paper_row(info.name).map_or(1024, |r| r.len_t0);
    let max_len = match effort {
        Effort::Full => paper_len.clamp(32, 1024),
        Effort::Quick => paper_len.clamp(16, 128),
    };
    match info.suite {
        Suite::Iscas89 => T0Source::Directed { max_len },
        Suite::Itc99 => T0Source::Property { max_len },
    }
}

/// Options for one experiment run beyond the effort profile: threading and
/// whether each pipeline re-checks its own coverage claims through the
/// end-to-end oracle (`tables --verify`).
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Effort profile.
    pub effort: Effort,
    /// Threading configuration for every simulation stage.
    pub sim: SimConfig,
    /// Run [`Pipeline::verify`]: independently re-fault-simulate the final
    /// test sets and fail the run if any phase's coverage claim is inflated.
    pub verify: bool,
}

impl RunOptions {
    /// Options matching the historical `run_circuit_with` behavior.
    pub fn new(effort: Effort, sim: SimConfig) -> Self {
        RunOptions {
            effort,
            sim,
            verify: false,
        }
    }
}

/// Runs every experiment for one circuit with the threading configuration
/// from the environment (`SIM_THREADS`, serial when unset).
pub fn run_circuit(info: &BenchmarkInfo, effort: Effort) -> CircuitExperiment {
    run_circuit_with(info, effort, SimConfig::from_env())
}

/// Runs every experiment for one circuit with an explicit threading
/// configuration (every stage, Phase 2's speculative omission included,
/// produces identical results at any thread count).
pub fn run_circuit_with(info: &BenchmarkInfo, effort: Effort, sim: SimConfig) -> CircuitExperiment {
    try_run_circuit_opts(info, &RunOptions::new(effort, sim))
        .expect("pipeline runs on catalog circuits")
}

/// [`run_circuit_with`] with full [`RunOptions`], surfacing pipeline errors
/// — in particular [`CoreError::VerificationFailed`] when the coverage
/// oracle rejects a claim under `verify`.
pub fn try_run_circuit_opts(
    info: &BenchmarkInfo,
    opts: &RunOptions,
) -> Result<CircuitExperiment, CoreError> {
    let _sp = atspeed_trace::span_args("circuit", &[("name", &info.name)]);
    let (effort, sim) = (opts.effort, opts.sim);
    let started = std::time::Instant::now();
    let nl: Netlist = info.instantiate();
    let universe = FaultUniverse::full(&nl);
    let targets = universe.representatives().to_vec();

    let proposed = Pipeline::new(&nl)
        .t0_source(t0_source_for(info, effort))
        .seed(TABLE_SEED)
        .sim_config(sim)
        .verify(opts.verify)
        .run()?;

    // Reuse the same combinational test set C for every flow, as the paper
    // does ("the initial test set compacted in [4] is based on the same
    // combinational test set C used for our experiments").
    let comb = proposed.comb_tests.clone();

    let rand_len = match effort {
        Effort::Full => RANDOM_T0_LEN,
        Effort::Quick => 128,
    };
    // The paper reports no random-T0 results for s35932 (its Tables 3-5
    // show "-"); skip it here too.
    let proposed_rand = if info.name != "s35932" {
        Some(
            Pipeline::new(&nl)
                .t0_source(T0Source::Random { len: rand_len })
                .seed(TABLE_SEED)
                .sim_config(sim)
                .verify(opts.verify)
                .with_comb_tests(comb.clone())
                .run()?,
        )
    } else {
        None
    };

    atspeed_sim::stats::set_phase("baseline4");
    let b4 = baseline4(&nl, &universe, &comb, &targets);
    let n_sv = nl.num_ffs();
    atspeed_sim::stats::set_phase("baseline-dynamic");
    let dynamic = dynamic_schedule(
        &nl,
        &universe,
        &comb,
        &targets,
        &DynamicConfig {
            seed: TABLE_SEED,
            ..DynamicConfig::default()
        },
    );

    atspeed_trace::info!("bench.runner", "circuit done";
        circuit = info.name,
        wall_ms = started.elapsed().as_millis(),
        verified = opts.verify,
    );
    Ok(CircuitExperiment {
        info: *info,
        proposed,
        proposed_rand,
        b4_init_cycles: b4.initial.clock_cycles(n_sv),
        b4_comp_cycles: b4.compacted.clock_cycles(n_sv),
        b4_at_speed: b4.compacted.at_speed_stats(),
        dynamic,
    })
}

/// Runs experiments for several circuits in parallel: a pool of workers
/// pulls circuits from a shared queue, so long-running circuits never
/// serialize behind a batch barrier. Output order matches `infos`.
pub fn run_circuits(infos: &[BenchmarkInfo], effort: Effort) -> Vec<CircuitExperiment> {
    run_circuits_with(infos, effort, SimConfig::from_env())
}

/// [`run_circuits`] with an explicit threading configuration passed to
/// every per-circuit pipeline.
pub fn run_circuits_with(
    infos: &[BenchmarkInfo],
    effort: Effort,
    sim: SimConfig,
) -> Vec<CircuitExperiment> {
    try_run_circuits_opts(infos, &RunOptions::new(effort, sim))
        .expect("pipelines run on catalog circuits")
}

/// [`run_circuits_with`] with full [`RunOptions`]: the worker pool is
/// unchanged, but per-circuit errors (oracle rejections under `verify`)
/// propagate instead of panicking — the first failing circuit in `infos`
/// order wins.
pub fn try_run_circuits_opts(
    infos: &[BenchmarkInfo],
    opts: &RunOptions,
) -> Result<Vec<CircuitExperiment>, CoreError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(infos.len().max(1));
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<Option<Result<CircuitExperiment, CoreError>>>> =
        Mutex::new((0..infos.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..max_threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= infos.len() {
                    break;
                }
                let exp = try_run_circuit_opts(&infos[i], opts);
                // Recover from poisoning: a panicking sibling worker must
                // not hide this circuit's (already computed) result.
                out.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(exp);
            });
        }
    });
    out.into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        // `scope` re-raises worker panics before we get here, so every
        // slot is filled whenever this line runs.
        .map(|e| e.expect("every circuit ran"))
        .collect()
}

/// Sanity predicate used by tests and the harness: the qualitative claims
/// of the paper that a healthy run reproduces on a circuit.
pub fn shape_holds(e: &CircuitExperiment) -> bool {
    let p = &e.proposed;
    // τ_seq detects at least T0's faults; final detects at least τ_seq's.
    p.t0_detected <= p.tau_seq_detected
        && p.tau_seq_detected <= p.final_detected
        // Compaction never increases application time.
        && p.comp_cycles <= p.init_cycles
        && e.b4_comp_cycles <= e.b4_init_cycles
        // The proposed sets contain far longer at-speed sequences than [4].
        && match (p.at_speed_comp, e.b4_at_speed) {
            (Some(prop), Some(b4)) => prop.max >= b4.max,
            _ => true,
        }
}

/// Helper for benches: total clock cycles of a test set under this
/// circuit's cost model.
pub fn cycles_of(nl: &Netlist, set: &TestSet) -> usize {
    set.clock_cycles(nl.num_ffs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::catalog;

    #[test]
    fn quick_run_on_smallest_circuits_holds_shape() {
        for name in ["b02", "b01"] {
            let info = catalog::by_name(name).unwrap();
            let e = run_circuit(&info, Effort::Quick);
            assert!(shape_holds(&e), "{name} failed shape checks: {e:?}");
            assert_eq!(e.info.name, name);
        }
    }

    #[test]
    fn verified_run_carries_oracle_reports() {
        let info = catalog::by_name("b02").unwrap();
        let opts = RunOptions {
            verify: true,
            ..RunOptions::new(Effort::Quick, SimConfig::default())
        };
        let e = try_run_circuit_opts(&info, &opts).expect("oracle accepts honest claims");
        assert!(e.proposed.oracle.is_some());
        assert!(e.proposed_rand.unwrap().oracle.is_some());
        // Without `verify` the oracle never runs.
        let plain = run_circuit(&info, Effort::Quick);
        assert!(plain.proposed.oracle.is_none());
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let infos: Vec<_> = ["b02", "b06"]
            .iter()
            .map(|n| catalog::by_name(n).unwrap())
            .collect();
        let out = run_circuits(&infos, Effort::Quick);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].info.name, "b02");
        assert_eq!(out[1].info.name, "b06");
    }
}
