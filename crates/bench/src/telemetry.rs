//! Shared telemetry plumbing for the bench binaries: the `--trace FILE`,
//! `--metrics-json FILE`, `--profile FILE`, `--history FILE`, and
//! `--log LEVEL` flags.
//!
//! - `--trace FILE` enables span recording for the whole run and writes a
//!   Chrome trace-event JSON on exit — open it at <https://ui.perfetto.dev>
//!   or `chrome://tracing`;
//! - `--metrics-json FILE` writes every counter, gauge, and histogram from
//!   the global registry, plus a small `derived` section with headline
//!   figures computed from the simulation report;
//! - `--profile FILE` runs the span-stack sampling profiler for the whole
//!   run and writes collapsed/folded stacks on exit (speedscope and
//!   `inferno-flamegraph` load the file as-is); `--profile-hz N` tunes the
//!   sampling rate (default 250 Hz);
//! - `--history FILE` overrides where the run-history record is appended
//!   (default `target/bench-history.jsonl`). Every telemetry-enabled run
//!   appends one schema-versioned JSONL record; see
//!   [`atspeed_trace::history`];
//! - `--log LEVEL` sets the structured-log filter (`error`, `warn`,
//!   `info`, `debug`; default `info`).

use std::io;
use std::time::Instant;

use atspeed_sim::stats::SimReport;
use atspeed_trace::history::RunRecord;
use atspeed_trace::Level;

/// Telemetry-related command-line options shared by `tables`, `calibrate`,
/// `stress`, and `verifier`.
#[derive(Debug, Default)]
pub struct TelemetryArgs {
    /// Chrome-trace output path (`--trace`). `None` leaves tracing off.
    pub trace: Option<String>,
    /// Metrics JSON output path (`--metrics-json`).
    pub metrics_json: Option<String>,
    /// Folded-profile output path (`--profile`). `None` leaves the
    /// sampling profiler off.
    pub profile: Option<String>,
    /// Sampling rate override (`--profile-hz`).
    pub profile_hz: Option<u32>,
    /// Run-history path override (`--history`).
    pub history: Option<String>,
    /// Log-level filter (`--log`).
    pub log: Option<Level>,
    /// When [`TelemetryArgs::init`] ran, for the history record's wall
    /// time.
    started: Option<Instant>,
}

impl TelemetryArgs {
    /// Consumes one flag if it is telemetry-related. Returns `Ok(true)`
    /// when `flag` was handled (its value pulled from `it`), `Ok(false)`
    /// when the caller should handle it.
    pub fn consume(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        match flag {
            "--trace" => {
                self.trace = Some(it.next().ok_or("--trace needs a path")?);
                Ok(true)
            }
            "--metrics-json" => {
                self.metrics_json = Some(it.next().ok_or("--metrics-json needs a path")?);
                Ok(true)
            }
            "--profile" => {
                self.profile = Some(it.next().ok_or("--profile needs a path")?);
                Ok(true)
            }
            "--profile-hz" => {
                let v = it.next().ok_or("--profile-hz needs a rate")?;
                self.profile_hz = Some(
                    v.parse()
                        .ok()
                        .filter(|hz| *hz > 0)
                        .ok_or(format!("bad profile rate `{v}` (positive Hz)"))?,
                );
                Ok(true)
            }
            "--history" => {
                self.history = Some(it.next().ok_or("--history needs a path")?);
                Ok(true)
            }
            "--log" => {
                let v = it.next().ok_or("--log needs a level")?;
                self.log = Some(
                    Level::parse(&v)
                        .ok_or(format!("bad log level `{v}` (error|warn|info|debug)"))?,
                );
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Whether any output was requested — the condition for appending a
    /// run-history record.
    pub fn telemetry_enabled(&self) -> bool {
        self.trace.is_some()
            || self.metrics_json.is_some()
            || self.profile.is_some()
            || self.history.is_some()
    }

    /// Applies the flags that take effect at startup: the log filter,
    /// span recording (when `--trace` was given), and the sampling
    /// profiler (when `--profile` was given). Starts the wall-time clock
    /// for the history record.
    pub fn init(&mut self) {
        self.started = Some(Instant::now());
        if let Some(level) = self.log {
            atspeed_trace::log::set_max_level(level);
        }
        if self.trace.is_some() {
            atspeed_trace::set_tracing(true);
        }
        if self.profile.is_some() {
            let hz = self
                .profile_hz
                .unwrap_or(atspeed_trace::profile::DEFAULT_HZ);
            atspeed_trace::profile::start(hz);
        }
    }

    /// Writes the trace, metrics, and profile files requested on the
    /// command line, and appends the run-history record when any
    /// telemetry output was requested. Call once, after the run's
    /// [`SimReport`] is taken.
    ///
    /// # Errors
    ///
    /// Propagates the first filesystem error.
    pub fn write_outputs(&self, report: &SimReport) -> io::Result<()> {
        // Stop the sampler before exporting anything, so no sample lands
        // mid-write.
        if let Some(path) = &self.profile {
            atspeed_trace::profile::stop_and_write(path)?;
            atspeed_trace::info!("bench.telemetry", "wrote folded profile"; path = path);
        }
        if let Some(path) = &self.trace {
            atspeed_trace::write_chrome_trace(path)?;
            atspeed_trace::info!("bench.telemetry", "wrote chrome trace"; path = path);
        }
        if let Some(path) = &self.metrics_json {
            std::fs::write(path, metrics_json_with_derived(report))?;
            atspeed_trace::info!("bench.telemetry", "wrote metrics json"; path = path);
        }
        if self.telemetry_enabled() {
            let path = self
                .history
                .as_deref()
                .unwrap_or(atspeed_trace::history::DEFAULT_PATH);
            let record = self.history_record(report);
            record.append(path)?;
            atspeed_trace::info!("bench.telemetry", "appended run-history record"; path = path);
        }
        Ok(())
    }

    /// The history record for this run: process identity plus the same
    /// derived figures `--metrics-json` exports.
    fn history_record(&self, report: &SimReport) -> RunRecord {
        let snapshot = atspeed_trace::metrics::global().snapshot();
        let derived = DerivedMetrics::compute(report, &snapshot);
        let mut record = RunRecord::for_current_process();
        record.wall_us = self
            .started
            .map(|s| s.elapsed().as_micros().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        record.peak_rss_bytes = derived.peak_rss_bytes;
        record.derived = derived.pairs();
        record
    }
}

/// The headline figures benchmark CI compares across runs — the `derived`
/// object of `--metrics-json` and the `derived` field of every history
/// record, computed once from the same sources.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedMetrics {
    /// Gate evaluations summed over phases.
    pub gate_evals_total: u64,
    /// Phase wall time summed over phases, µs.
    pub wall_us_total: u64,
    /// `gate_evals_total` per second of summed phase wall time.
    pub gate_evals_per_sec: f64,
    /// Whole-run partition imbalance (see
    /// [`atspeed_sim::stats::PhaseStats::partition_imbalance`]).
    pub partition_imbalance: f64,
    /// Phase-2 vector-omission attempts (zero when Phase 2 never ran).
    pub omission_attempts_total: u64,
    /// Wall time the omission engine charged itself, µs.
    pub omission_wall_us: u64,
    /// Omission attempts per second of omission wall time.
    pub omission_attempts_per_sec: f64,
    /// Peak resident set in bytes (0 where unmeasurable).
    pub peak_rss_bytes: u64,
}

impl DerivedMetrics {
    /// Computes the figures from a run's report and a registry snapshot.
    pub fn compute(
        report: &SimReport,
        snapshot: &atspeed_trace::MetricsSnapshot,
    ) -> DerivedMetrics {
        let t = report.totals();
        let om_attempts = snapshot.counter("omission/attempts").unwrap_or(0);
        let om_wall_us = snapshot.counter("omission/wall_us").unwrap_or(0);
        let om_rate = if om_wall_us > 0 {
            om_attempts as f64 / (om_wall_us as f64 / 1e6)
        } else {
            0.0
        };
        // Peak RSS: measure at export time (the kernel high-water mark
        // only grows, so this is the whole run's peak), falling back to
        // whatever a binary recorded explicitly.
        let peak_rss = atspeed_trace::rss::peak_rss_bytes()
            .or_else(|| snapshot.gauge("process/peak_rss_bytes").map(|v| v as u64))
            .unwrap_or(0);
        DerivedMetrics {
            gate_evals_total: t.gate_evals,
            wall_us_total: t.wall.as_micros().min(u128::from(u64::MAX)) as u64,
            gate_evals_per_sec: if t.wall.as_secs_f64() > 0.0 {
                t.gate_evals as f64 / t.wall.as_secs_f64()
            } else {
                0.0
            },
            partition_imbalance: t.partition_imbalance(),
            omission_attempts_total: om_attempts,
            omission_wall_us: om_wall_us,
            omission_attempts_per_sec: om_rate,
            peak_rss_bytes: peak_rss,
        }
    }

    /// `(name, value)` pairs in schema order, for the history record.
    pub fn pairs(&self) -> Vec<(String, f64)> {
        vec![
            ("gate_evals_total".into(), self.gate_evals_total as f64),
            ("wall_us_total".into(), self.wall_us_total as f64),
            ("gate_evals_per_sec".into(), self.gate_evals_per_sec),
            ("partition_imbalance".into(), self.partition_imbalance),
            (
                "omission_attempts_total".into(),
                self.omission_attempts_total as f64,
            ),
            ("omission_wall_us".into(), self.omission_wall_us as f64),
            (
                "omission_attempts_per_sec".into(),
                self.omission_attempts_per_sec,
            ),
            ("peak_rss_bytes".into(), self.peak_rss_bytes as f64),
        ]
    }

    /// The body of the `derived` JSON object (no `"derived":` wrapper),
    /// field names and formatting identical to what the metrics-baseline
    /// gate has always parsed.
    pub fn to_json_body(&self) -> String {
        format!(
            "\"gate_evals_total\":{},\"wall_us_total\":{},\
             \"gate_evals_per_sec\":{:.1},\"partition_imbalance\":{:.3},\
             \"omission_attempts_total\":{},\
             \"omission_wall_us\":{},\
             \"omission_attempts_per_sec\":{:.1},\
             \"peak_rss_bytes\":{}",
            self.gate_evals_total,
            self.wall_us_total,
            self.gate_evals_per_sec,
            self.partition_imbalance,
            self.omission_attempts_total,
            self.omission_wall_us,
            self.omission_attempts_per_sec,
            self.peak_rss_bytes,
        )
    }
}

/// The global metrics registry as JSON, extended with a `derived` object
/// holding the headline figures benchmark CI compares across runs.
pub fn metrics_json_with_derived(report: &SimReport) -> String {
    let snapshot = atspeed_trace::metrics::global().snapshot();
    let base = snapshot.to_json();
    let derived = format!(
        "\"derived\":{{{}}}",
        DerivedMetrics::compute(report, &snapshot).to_json_body()
    );
    // Splice the derived object into the snapshot's top-level JSON object.
    // If the snapshot ever isn't one, fall back to wrapping rather than
    // aborting a run whose results are already computed.
    let trimmed = base.trim_end();
    let Some(body) = trimmed.strip_suffix('}') else {
        return format!("{{\"snapshot\":{trimmed},{derived}}}");
    };
    if body.trim_end().ends_with('{') {
        format!("{body}{derived}}}")
    } else {
        format!("{body},{derived}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn consume_handles_only_telemetry_flags() {
        let mut t = TelemetryArgs::default();
        let mut it = vec!["out.json".to_string()].into_iter();
        assert!(t.consume("--trace", &mut it).unwrap());
        assert_eq!(t.trace.as_deref(), Some("out.json"));
        let mut empty = std::iter::empty();
        assert!(!t.consume("--csv", &mut empty).unwrap());
        assert!(t.consume("--log", &mut empty).is_err());
        let mut lvl = vec!["debug".to_string()].into_iter();
        assert!(t.consume("--log", &mut lvl).unwrap());
        assert_eq!(t.log, Some(Level::Debug));
    }

    #[test]
    fn consume_handles_profile_and_history_flags() {
        let mut t = TelemetryArgs::default();
        assert!(!t.telemetry_enabled());
        let mut it = vec!["prof.folded".to_string()].into_iter();
        assert!(t.consume("--profile", &mut it).unwrap());
        assert_eq!(t.profile.as_deref(), Some("prof.folded"));
        assert!(t.telemetry_enabled());
        let mut hz = vec!["500".to_string()].into_iter();
        assert!(t.consume("--profile-hz", &mut hz).unwrap());
        assert_eq!(t.profile_hz, Some(500));
        let mut bad = vec!["zero".to_string()].into_iter();
        assert!(t.consume("--profile-hz", &mut bad).is_err());
        let mut hist = vec!["runs.jsonl".to_string()].into_iter();
        assert!(t.consume("--history", &mut hist).unwrap());
        assert_eq!(t.history.as_deref(), Some("runs.jsonl"));
    }

    #[test]
    fn derived_section_is_spliced_into_valid_json() {
        let mut report = SimReport::default();
        report.phases.push((
            "p".into(),
            atspeed_sim::stats::PhaseStats {
                gate_evals: 1000,
                wall: Duration::from_millis(10),
                ..Default::default()
            },
        ));
        let json = metrics_json_with_derived(&report);
        assert!(json.contains("\"derived\""));
        assert!(json.contains("\"gate_evals_total\":1000"));
        assert!(json.contains("\"gate_evals_per_sec\":100000.0"));
        assert!(json.contains("\"omission_attempts_per_sec\""));
        assert!(json.contains("\"peak_rss_bytes\""));
        // Balanced braces — cheap structural sanity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
        atspeed_trace::json::parse(&json).expect("metrics JSON parses");
    }

    #[test]
    fn history_record_carries_the_derived_figures() {
        let mut t = TelemetryArgs::default();
        t.init();
        let mut report = SimReport::default();
        report.phases.push((
            "p".into(),
            atspeed_sim::stats::PhaseStats {
                gate_evals: 500,
                wall: Duration::from_millis(5),
                ..Default::default()
            },
        ));
        let record = t.history_record(&report);
        assert_eq!(record.schema, atspeed_trace::history::SCHEMA_VERSION);
        let get = |name: &str| {
            record
                .derived
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("gate_evals_total"), Some(500.0));
        assert_eq!(get("gate_evals_per_sec"), Some(100_000.0));
        assert!(get("peak_rss_bytes").is_some());
        atspeed_trace::json::parse(&record.to_json_line()).expect("record parses");
    }
}
