//! Shared telemetry plumbing for the bench binaries: the `--trace FILE`,
//! `--metrics-json FILE`, and `--log LEVEL` flags.
//!
//! - `--trace FILE` enables span recording for the whole run and writes a
//!   Chrome trace-event JSON on exit — open it at <https://ui.perfetto.dev>
//!   or `chrome://tracing`;
//! - `--metrics-json FILE` writes every counter, gauge, and histogram from
//!   the global registry, plus a small `derived` section with headline
//!   figures computed from the simulation report;
//! - `--log LEVEL` sets the structured-log filter (`error`, `warn`,
//!   `info`, `debug`; default `info`).

use std::io;

use atspeed_sim::stats::SimReport;
use atspeed_trace::Level;

/// Telemetry-related command-line options shared by `tables` and
/// `calibrate`.
#[derive(Debug, Default)]
pub struct TelemetryArgs {
    /// Chrome-trace output path (`--trace`). `None` leaves tracing off.
    pub trace: Option<String>,
    /// Metrics JSON output path (`--metrics-json`).
    pub metrics_json: Option<String>,
    /// Log-level filter (`--log`).
    pub log: Option<Level>,
}

impl TelemetryArgs {
    /// Consumes one flag if it is telemetry-related. Returns `Ok(true)`
    /// when `flag` was handled (its value pulled from `it`), `Ok(false)`
    /// when the caller should handle it.
    pub fn consume(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        match flag {
            "--trace" => {
                self.trace = Some(it.next().ok_or("--trace needs a path")?);
                Ok(true)
            }
            "--metrics-json" => {
                self.metrics_json = Some(it.next().ok_or("--metrics-json needs a path")?);
                Ok(true)
            }
            "--log" => {
                let v = it.next().ok_or("--log needs a level")?;
                self.log = Some(
                    Level::parse(&v)
                        .ok_or(format!("bad log level `{v}` (error|warn|info|debug)"))?,
                );
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Applies the flags that take effect at startup: the log filter and
    /// (when `--trace` was given) span recording.
    pub fn init(&self) {
        if let Some(level) = self.log {
            atspeed_trace::log::set_max_level(level);
        }
        if self.trace.is_some() {
            atspeed_trace::set_tracing(true);
        }
    }

    /// Writes the trace and metrics files requested on the command line.
    /// Call once, after the run's [`SimReport`] is taken.
    ///
    /// # Errors
    ///
    /// Propagates the first filesystem error.
    pub fn write_outputs(&self, report: &SimReport) -> io::Result<()> {
        if let Some(path) = &self.trace {
            atspeed_trace::write_chrome_trace(path)?;
            atspeed_trace::info!("bench.telemetry", "wrote chrome trace"; path = path);
        }
        if let Some(path) = &self.metrics_json {
            std::fs::write(path, metrics_json_with_derived(report))?;
            atspeed_trace::info!("bench.telemetry", "wrote metrics json"; path = path);
        }
        Ok(())
    }
}

/// The global metrics registry as JSON, extended with a `derived` object
/// holding the headline figures benchmark CI compares across runs.
pub fn metrics_json_with_derived(report: &SimReport) -> String {
    let snapshot = atspeed_trace::metrics::global().snapshot();
    let base = snapshot.to_json();
    let t = report.totals();
    // Phase-2 vector-omission throughput, from the counters the omission
    // engine maintains (zero when the run never reached Phase 2).
    let om_attempts = snapshot.counter("omission/attempts").unwrap_or(0);
    let om_wall_us = snapshot.counter("omission/wall_us").unwrap_or(0);
    let om_rate = if om_wall_us > 0 {
        om_attempts as f64 / (om_wall_us as f64 / 1e6)
    } else {
        0.0
    };
    // Peak RSS: measure at export time (the kernel high-water mark only
    // grows, so this is the whole run's peak), falling back to whatever a
    // binary recorded explicitly; 0 off Linux.
    let peak_rss = atspeed_trace::rss::peak_rss_bytes()
        .or_else(|| snapshot.gauge("process/peak_rss_bytes").map(|v| v as u64))
        .unwrap_or(0);
    let derived = format!(
        "\"derived\":{{\"gate_evals_total\":{},\"wall_us_total\":{},\
         \"gate_evals_per_sec\":{:.1},\"partition_imbalance\":{:.3},\
         \"omission_attempts_total\":{om_attempts},\
         \"omission_wall_us\":{om_wall_us},\
         \"omission_attempts_per_sec\":{om_rate:.1},\
         \"peak_rss_bytes\":{peak_rss}}}",
        t.gate_evals,
        t.wall.as_micros(),
        if t.wall.as_secs_f64() > 0.0 {
            t.gate_evals as f64 / t.wall.as_secs_f64()
        } else {
            0.0
        },
        t.partition_imbalance(),
    );
    // Splice the derived object into the snapshot's top-level JSON object.
    let trimmed = base.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .expect("snapshot JSON is an object");
    if body.trim_end().ends_with('{') {
        format!("{body}{derived}}}")
    } else {
        format!("{body},{derived}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn consume_handles_only_telemetry_flags() {
        let mut t = TelemetryArgs::default();
        let mut it = vec!["out.json".to_string()].into_iter();
        assert!(t.consume("--trace", &mut it).unwrap());
        assert_eq!(t.trace.as_deref(), Some("out.json"));
        let mut empty = std::iter::empty();
        assert!(!t.consume("--csv", &mut empty).unwrap());
        assert!(t.consume("--log", &mut empty).is_err());
        let mut lvl = vec!["debug".to_string()].into_iter();
        assert!(t.consume("--log", &mut lvl).unwrap());
        assert_eq!(t.log, Some(Level::Debug));
    }

    #[test]
    fn derived_section_is_spliced_into_valid_json() {
        let mut report = SimReport::default();
        report.phases.push((
            "p".into(),
            atspeed_sim::stats::PhaseStats {
                gate_evals: 1000,
                wall: Duration::from_millis(10),
                ..Default::default()
            },
        ));
        let json = metrics_json_with_derived(&report);
        assert!(json.contains("\"derived\""));
        assert!(json.contains("\"gate_evals_total\":1000"));
        assert!(json.contains("\"gate_evals_per_sec\":100000.0"));
        assert!(json.contains("\"omission_attempts_per_sec\""));
        assert!(json.contains("\"peak_rss_bytes\""));
        // Balanced braces — cheap structural sanity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }
}
