//! Benchmark harness for the atspeed workspace.
//!
//! Regenerates the five tables of Pomeranz & Reddy (DAC 2001) from the
//! synthetic benchmark catalog:
//!
//! ```text
//! cargo run -p atspeed-bench --release --bin tables            # all tables
//! cargo run -p atspeed-bench --release --bin tables -- --table 3
//! cargo run -p atspeed-bench --release --bin tables -- --circuits s298,b06 --quick
//! ```
//!
//! The Criterion benches under `benches/` time the workload behind each
//! table on small circuits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod paper;
pub mod report;
pub mod runner;
pub mod tables;
pub mod telemetry;
