//! Rendering of the paper's Tables 1–5 from measured experiments.
//!
//! Each `render_tableN` prints the same rows and columns the paper reports,
//! with the measured values for the synthetic stand-ins; paper-reported
//! values are shown alongside (in parentheses) so shape comparisons are
//! immediate. Totals follow the paper's convention (computed without
//! s35932).

use std::fmt::Write as _;

use crate::paper::paper_row;
use crate::runner::CircuitExperiment;

fn opt(v: Option<usize>) -> String {
    v.map_or_else(|| "-".to_owned(), |x| x.to_string())
}

/// Table 1: detected faults (`T_0` / `τ_seq` / final), plus circuit data.
pub fn render_table1(exps: &[CircuitExperiment]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 1: Detected faults ([10]-[12] stand-in T0)");
    let _ = writeln!(
        s,
        "{:<8} {:>5} {:>6} {:>7} | {:>7} {:>7} {:>7} | paper(T0/scan/final/flts)",
        "circuit", "ff", "ctsts", "flts", "T0", "scan", "final"
    );
    for e in exps {
        let p = &e.proposed;
        let pr = paper_row(e.info.name);
        let paper = pr.map_or_else(String::new, |r| {
            format!("({}/{}/{}/{})", r.det_t0, r.det_scan, r.det_final, r.faults)
        });
        let _ = writeln!(
            s,
            "{:<8} {:>5} {:>6} {:>7} | {:>7} {:>7} {:>7} | {}",
            e.info.name,
            p.n_sv,
            p.num_comb_tests,
            p.total_faults,
            p.t0_detected,
            p.tau_seq_detected,
            p.final_detected,
            paper
        );
    }
    s
}

/// Table 2: sequence lengths and Phase 3 additions.
pub fn render_table2(exps: &[CircuitExperiment]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 2: Test lengths ([10]-[12] stand-in T0)");
    let _ = writeln!(
        s,
        "{:<8} {:>6} {:>6} {:>6} | paper(T0/scan/added)",
        "circuit", "T0", "scan", "added"
    );
    for e in exps {
        let p = &e.proposed;
        let paper = paper_row(e.info.name).map_or_else(String::new, |r| {
            format!("({}/{}/{})", r.len_t0, r.len_scan, r.added)
        });
        let _ = writeln!(
            s,
            "{:<8} {:>6} {:>6} {:>6} | {}",
            e.info.name, p.t0_len, p.tau_seq_len, p.added_tests, paper
        );
    }
    s
}

/// Table 3: clock cycles of every method.
pub fn render_table3(exps: &[CircuitExperiment]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 3: Numbers of clock cycles");
    let _ = writeln!(
        s,
        "{:<8} {:>8} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "circuit", "[2,3]", "[4]init", "[4]comp", "prop.ini", "prop.cmp", "rand.ini", "rand.cmp"
    );
    let mut tot = [0usize; 6];
    for e in exps {
        let p = &e.proposed;
        let r = e.proposed_rand.as_ref();
        let _ = writeln!(
            s,
            "{:<8} {:>8} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
            e.info.name,
            e.dynamic.cycles,
            e.b4_init_cycles,
            e.b4_comp_cycles,
            p.init_cycles,
            p.comp_cycles,
            opt(r.map(|r| r.init_cycles)),
            opt(r.map(|r| r.comp_cycles))
        );
        if e.info.name != "s35932" {
            tot[0] += e.b4_init_cycles;
            tot[1] += e.b4_comp_cycles;
            tot[2] += p.init_cycles;
            tot[3] += p.comp_cycles;
            tot[4] += r.map_or(0, |r| r.init_cycles);
            tot[5] += r.map_or(0, |r| r.comp_cycles);
        }
    }
    let _ = writeln!(
        s,
        "{:<8} {:>8} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}   (totals w/o s35932)",
        "total*", "-", tot[0], tot[1], tot[2], tot[3], tot[4], tot[5]
    );
    let _ = writeln!(
        s,
        "paper totals: [4] 39343/29219, proposed 29471/28493, rand 32219/30671"
    );
    s
}

/// Table 4: at-speed (primary-input sequence) length statistics.
pub fn render_table4(exps: &[CircuitExperiment]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 4: At-speed test lengths (after compaction)");
    let _ = writeln!(
        s,
        "{:<8} {:>16} | {:>16} | {:>16} | paper([4]avg / prop.avg)",
        "circuit", "[4]", "proposed", "rand"
    );
    let fmt_stats = |st: Option<atspeed_core::AtSpeedStats>| {
        st.map_or_else(|| "-".to_owned(), |x| x.to_string())
    };
    for e in exps {
        let paper = paper_row(e.info.name).map_or_else(String::new, |r| {
            format!("({:.2} / {:.2})", r.as4_avg, r.asp_avg)
        });
        let _ = writeln!(
            s,
            "{:<8} {:>16} | {:>16} | {:>16} | {}",
            e.info.name,
            fmt_stats(e.b4_at_speed),
            fmt_stats(e.proposed.at_speed_comp),
            fmt_stats(e.proposed_rand.as_ref().and_then(|r| r.at_speed_comp)),
            paper
        );
    }
    s
}

/// Table 5: the random-`T_0` flow in detail.
pub fn render_table5(exps: &[CircuitExperiment]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5: Results for random sequences (T0 length 1000)");
    let _ = writeln!(
        s,
        "{:<8} {:>7} {:>7} {:>7} | {:>6} {:>6} {:>6} | paper(T0det/scandet/final/scanlen/added)",
        "circuit", "T0", "scan", "final", "lenT0", "scan", "added"
    );
    for e in exps {
        let Some(r) = e.proposed_rand.as_ref() else {
            let _ = writeln!(
                s,
                "{:<8} (no random-T0 run; the paper omits it too)",
                e.info.name
            );
            continue;
        };
        let paper = paper_row(e.info.name).map_or_else(String::new, |p| {
            format!(
                "({}/{}/{}/{}/{})",
                opt(p.r_det_t0),
                opt(p.r_det_scan),
                opt(p.r_det_final),
                opt(p.r_len_scan),
                opt(p.r_added)
            )
        });
        let _ = writeln!(
            s,
            "{:<8} {:>7} {:>7} {:>7} | {:>6} {:>6} {:>6} | {}",
            e.info.name,
            r.t0_detected,
            r.tau_seq_detected,
            r.final_detected,
            r.t0_len,
            r.tau_seq_len,
            r.added_tests,
            paper
        );
    }
    s
}

/// Renders one table by number (1–5).
///
/// # Panics
///
/// Panics if `n` is not in `1..=5`.
pub fn render_table(n: usize, exps: &[CircuitExperiment]) -> String {
    match n {
        1 => render_table1(exps),
        2 => render_table2(exps),
        3 => render_table3(exps),
        4 => render_table4(exps),
        5 => render_table5(exps),
        other => panic!("no table {other}; the paper has Tables 1-5"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_circuit, Effort};
    use atspeed_circuit::catalog;

    fn sample() -> Vec<CircuitExperiment> {
        vec![run_circuit(
            &catalog::by_name("b02").unwrap(),
            Effort::Quick,
        )]
    }

    #[test]
    fn all_tables_render_without_panicking() {
        let exps = sample();
        for n in 1..=5 {
            let text = render_table(n, &exps);
            assert!(text.contains("b02"), "table {n} missing circuit row");
            assert!(text.contains("Table"), "table {n} missing header");
        }
    }

    #[test]
    #[should_panic(expected = "no table 6")]
    fn unknown_table_panics() {
        let _ = render_table(6, &[]);
    }
}
