//! Self-contained HTML run reports from telemetry artifacts.
//!
//! [`render_html`] consumes whatever subset of a run's outputs exists —
//! metrics JSON (`--metrics-json`), Chrome trace (`--trace`), folded
//! profile (`--profile`), run history (`target/bench-history.jsonl`) —
//! and renders one HTML file with **zero external references**: styles
//! inline, charts as inline SVG, no scripts, no fonts, no links out. The
//! file is the CI artifact a human opens to answer "where did this run's
//! time go, and how does it compare to the last N runs".
//!
//! Sections (each rendered only when its input is present):
//!
//! - **Run summary** — headline `derived.*` figures plus git SHA/command
//!   from the latest history record;
//! - **Phase waterfall** — wall-time bars per pipeline phase, from the
//!   trace's `pipeline.*` spans when a trace is given, else from the
//!   `phase/<label>/wall_ns` counters;
//! - **Hottest stacks** — top-k folded stacks by sample count from the
//!   profiler output;
//! - **Slowest spans** — top-k longest spans from the Chrome trace, with
//!   their arguments (this is where the slowest PODEM faults surface,
//!   labelled by the `fault` argument);
//! - **Trends** — sparklines of throughput and peak RSS across history
//!   records sharing this run's command fingerprint (all records when
//!   none match);
//! - **Metrics tables** — omission/PODEM counters and per-phase counters
//!   from the metrics JSON, quantiles included.

use std::fmt::Write as _;

use atspeed_trace::json::Value;

/// Everything the renderer may consume. Any field may be absent; the
/// report renders the sections it has data for.
#[derive(Debug, Default)]
pub struct ReportInputs {
    /// Parsed `--metrics-json` output.
    pub metrics: Option<Value>,
    /// Parsed Chrome trace (`--trace` output).
    pub trace: Option<Value>,
    /// Raw folded-profile text (`--profile` output).
    pub profile: Option<String>,
    /// Parsed run-history records, file order (oldest first).
    pub history: Vec<Value>,
    /// How many rows the top-k tables show.
    pub top_k: usize,
}

impl ReportInputs {
    /// Inputs with the default table depth.
    pub fn new() -> ReportInputs {
        ReportInputs {
            top_k: 15,
            ..ReportInputs::default()
        }
    }
}

/// One completed span recovered from a Chrome trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDuration {
    /// Span name.
    pub name: String,
    /// Wall time between the begin and end events, µs.
    pub dur_us: u64,
    /// Begin timestamp, µs since the tracer epoch.
    pub start_us: u64,
    /// Rendered `key=value` argument summary, empty when the span had
    /// none.
    pub args: String,
}

/// One open span awaiting its end event: (name, start_us, args).
type OpenSpan = (String, u64, String);

/// Pairs up `ph:B`/`ph:E` events per thread track and returns every
/// completed span. Tolerates truncated traces (unmatched begins are
/// dropped).
pub fn span_durations(trace: &Value) -> Vec<SpanDuration> {
    let Some(events) = trace.get("traceEvents").and_then(Value::as_arr) else {
        return Vec::new();
    };
    // Per-tid stack of open spans — spans nest LIFO per thread.
    let mut stacks: Vec<(u64, Vec<OpenSpan>)> = Vec::new();
    let mut out = Vec::new();
    for ev in events {
        let (Some(name), Some(ph), Some(tid), Some(ts)) = (
            ev.get("name").and_then(Value::as_str),
            ev.get("ph").and_then(Value::as_str),
            ev.get("tid").and_then(Value::as_u64),
            ev.get("ts").and_then(Value::as_u64),
        ) else {
            continue;
        };
        let stack = match stacks.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => {
                let args = ev
                    .get("args")
                    .and_then(Value::as_obj)
                    .map(|kvs| {
                        kvs.iter()
                            .map(|(k, v)| match v.as_str() {
                                Some(s) => format!("{k}={s}"),
                                None => format!("{k}={v:?}"),
                            })
                            .collect::<Vec<_>>()
                            .join(" ")
                    })
                    .unwrap_or_default();
                stack.push((name.to_owned(), ts, args));
            }
            "E" => {
                if let Some((n, start, args)) = stack.pop() {
                    out.push(SpanDuration {
                        dur_us: ts.saturating_sub(start),
                        start_us: start,
                        name: n,
                        args,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// `(stack, samples)` rows of a folded profile, heaviest first. Malformed
/// lines are skipped (the writer validates; the reader stays lenient).
pub fn folded_rows(folded: &str) -> Vec<(String, u64)> {
    let mut rows: Vec<(String, u64)> = folded
        .lines()
        .filter_map(|l| {
            let (stack, count) = l.rsplit_once(' ')?;
            let n: u64 = count.parse().ok()?;
            (n > 0 && !stack.is_empty()).then(|| (stack.to_owned(), n))
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

/// Escapes text for HTML element and attribute content.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.1} s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if v == v.trunc() {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn fmt_bytes(b: f64) -> String {
    if b >= (1u64 << 30) as f64 {
        format!("{:.2} GiB", b / (1u64 << 30) as f64)
    } else if b >= (1u64 << 20) as f64 {
        format!("{:.1} MiB", b / (1u64 << 20) as f64)
    } else {
        format!("{:.0} KiB", b / 1024.0)
    }
}

/// An inline-SVG sparkline of `values` (left = oldest). Returns an empty
/// string for fewer than two points.
fn sparkline(values: &[f64], stroke: &str) -> String {
    if values.len() < 2 {
        return String::new();
    }
    let (w, h, pad) = (220.0, 44.0, 4.0);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = if (max - min).abs() < f64::EPSILON {
        1.0
    } else {
        max - min
    };
    let pts: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let x = pad + (w - 2.0 * pad) * i as f64 / (values.len() - 1) as f64;
            let y = h - pad - (h - 2.0 * pad) * (v - min) / range;
            format!("{x:.1},{y:.1}")
        })
        .collect();
    let last = pts.last().expect("len >= 2").clone();
    format!(
        "<svg width=\"{w:.0}\" height=\"{h:.0}\" viewBox=\"0 0 {w:.0} {h:.0}\" \
         role=\"img\" aria-label=\"trend\">\
         <polyline fill=\"none\" stroke=\"{stroke}\" stroke-width=\"1.5\" points=\"{}\"/>\
         <circle cx=\"{}\" cy=\"{}\" r=\"2.5\" fill=\"{stroke}\"/></svg>",
        pts.join(" "),
        last.split(',').next().unwrap_or("0"),
        last.split(',').nth(1).unwrap_or("0"),
    )
}

/// A horizontal bar scaled to `frac` of the column, with a label.
fn bar(frac: f64, label: &str) -> String {
    let pct = (frac.clamp(0.0, 1.0) * 100.0).max(0.5);
    format!(
        "<div class=\"bar\"><div class=\"fill\" style=\"width:{pct:.1}%\"></div>\
         <span>{}</span></div>",
        esc(label)
    )
}

fn section(out: &mut String, title: &str, body: &str) {
    let _ = write!(out, "<section><h2>{}</h2>{body}</section>", esc(title));
}

/// The phase wall times the waterfall draws: trace `pipeline.*` spans
/// when available, else `phase/<label>/wall_ns` counters from metrics.
fn phase_walls(inputs: &ReportInputs) -> Vec<(String, u64)> {
    if let Some(trace) = &inputs.trace {
        let mut spans: Vec<(String, u64)> = span_durations(trace)
            .into_iter()
            .filter(|s| s.name.starts_with("pipeline."))
            .map(|s| (s.name["pipeline.".len()..].to_owned(), s.dur_us))
            .collect();
        if !spans.is_empty() {
            // Same phase may run once per circuit; sum repeats.
            spans.sort_by(|a, b| a.0.cmp(&b.0));
            spans.dedup_by(|b, a| {
                if a.0 == b.0 {
                    a.1 += b.1;
                    true
                } else {
                    false
                }
            });
            return spans;
        }
    }
    let Some(metrics) = &inputs.metrics else {
        return Vec::new();
    };
    let Some(counters) = metrics.get("counters").and_then(Value::as_obj) else {
        return Vec::new();
    };
    counters
        .iter()
        .filter_map(|(name, v)| {
            let rest = name.strip_prefix("phase/")?;
            let (label, field) = rest.rsplit_once('/')?;
            (field == "wall_ns")
                .then(|| (label.to_owned(), (v.as_f64().unwrap_or(0.0) / 1e3) as u64))
        })
        .collect()
}

/// Renders the report. Always returns a complete HTML document, even for
/// empty inputs (sections without data are omitted; an empty report says
/// so).
pub fn render_html(inputs: &ReportInputs) -> String {
    let top_k = if inputs.top_k == 0 { 15 } else { inputs.top_k };
    let mut body = String::new();

    // --- Run summary ------------------------------------------------
    let derived = inputs
        .metrics
        .as_ref()
        .and_then(|m| m.get("derived"))
        .and_then(Value::as_obj);
    let latest = inputs.history.last();
    if derived.is_some() || latest.is_some() {
        let mut cards = String::new();
        let mut card = |label: &str, value: String| {
            let _ = write!(
                cards,
                "<div class=\"card\"><div class=\"v\">{}</div><div class=\"l\">{}</div></div>",
                esc(&value),
                esc(label)
            );
        };
        if let Some(d) = derived {
            let get = |k: &str| {
                d.iter()
                    .find(|(n, _)| n == k)
                    .and_then(|(_, v)| v.as_f64())
                    .unwrap_or(0.0)
            };
            card("gate evals / s", fmt_count(get("gate_evals_per_sec")));
            card("gate evals", fmt_count(get("gate_evals_total")));
            card("phase wall", fmt_us(get("wall_us_total") as u64));
            card("omission attempts / s", {
                let r = get("omission_attempts_per_sec");
                if r > 0.0 {
                    fmt_count(r)
                } else {
                    "—".into()
                }
            });
            card("peak RSS", fmt_bytes(get("peak_rss_bytes")));
        }
        let mut meta = String::new();
        if let Some(rec) = latest {
            let s = |k: &str| rec.get(k).and_then(Value::as_str).unwrap_or("");
            let _ = write!(
                meta,
                "<p class=\"meta\">latest recorded run: <code>{}</code> @ <code>{}</code></p>",
                esc(s("command")),
                esc(&s("git_sha").chars().take(12).collect::<String>()),
            );
        }
        section(
            &mut body,
            "Run summary",
            &format!("<div class=\"cards\">{cards}</div>{meta}"),
        );
    }

    // --- Phase waterfall --------------------------------------------
    let walls = phase_walls(inputs);
    if !walls.is_empty() {
        let max = walls.iter().map(|(_, us)| *us).max().unwrap_or(1).max(1);
        let rows: String = walls
            .iter()
            .map(|(label, us)| {
                format!(
                    "<tr><td>{}</td><td class=\"n\">{}</td><td class=\"w\">{}</td></tr>",
                    esc(label),
                    fmt_us(*us),
                    bar(*us as f64 / max as f64, "")
                )
            })
            .collect();
        section(
            &mut body,
            "Phase waterfall",
            &format!("<table><tr><th>phase</th><th>wall</th><th></th></tr>{rows}</table>"),
        );
    }

    // --- Hottest stacks (profiler) ----------------------------------
    if let Some(folded) = &inputs.profile {
        let rows = folded_rows(folded);
        let total: u64 = rows.iter().map(|(_, n)| n).sum();
        if total > 0 {
            let table: String = rows
                .iter()
                .take(top_k)
                .map(|(stack, n)| {
                    format!(
                        "<tr><td class=\"n\">{n}</td><td class=\"n\">{:.1}%</td>\
                         <td><code>{}</code></td></tr>",
                        *n as f64 * 100.0 / total as f64,
                        esc(stack)
                    )
                })
                .collect();
            section(
                &mut body,
                "Hottest stacks",
                &format!(
                    "<p class=\"meta\">{total} samples; top {} of {} distinct stacks. \
                     Load the <code>.folded</code> file in speedscope for the full \
                     flame graph.</p>\
                     <table><tr><th>samples</th><th>share</th><th>stack</th></tr>{table}</table>",
                    rows.len().min(top_k),
                    rows.len()
                ),
            );
        }
    }

    // --- Slowest spans (incl. PODEM faults) -------------------------
    if let Some(trace) = &inputs.trace {
        let mut spans = span_durations(trace);
        spans.sort_by_key(|s| std::cmp::Reverse(s.dur_us));
        if !spans.is_empty() {
            let table: String = spans
                .iter()
                .take(top_k)
                .map(|s| {
                    format!(
                        "<tr><td class=\"n\">{}</td><td><code>{}</code></td><td>{}</td></tr>",
                        fmt_us(s.dur_us),
                        esc(&s.name),
                        esc(&s.args)
                    )
                })
                .collect();
            let podem: Vec<&SpanDuration> = spans.iter().filter(|s| s.name == "podem").collect();
            let podem_table = if podem.is_empty() {
                String::new()
            } else {
                let rows: String = podem
                    .iter()
                    .take(top_k)
                    .map(|s| {
                        format!(
                            "<tr><td class=\"n\">{}</td><td>{}</td></tr>",
                            fmt_us(s.dur_us),
                            esc(&s.args)
                        )
                    })
                    .collect();
                format!(
                    "<h3>Slowest PODEM faults</h3>\
                     <table><tr><th>wall</th><th>fault</th></tr>{rows}</table>"
                )
            };
            section(
                &mut body,
                "Slowest spans",
                &format!(
                    "<table><tr><th>wall</th><th>span</th><th>args</th></tr>{table}</table>\
                     {podem_table}"
                ),
            );
        }
    }

    // --- Trends across history --------------------------------------
    if inputs.history.len() >= 2 {
        // Prefer records comparable to the newest one (same config
        // fingerprint); fall back to everything.
        let newest_fp = inputs
            .history
            .last()
            .and_then(|r| r.get("config_fingerprint"))
            .and_then(Value::as_str)
            .map(str::to_owned);
        let matching: Vec<&Value> = match &newest_fp {
            Some(fp) => inputs
                .history
                .iter()
                .filter(|r| r.get("config_fingerprint").and_then(Value::as_str) == Some(fp))
                .collect(),
            None => inputs.history.iter().collect(),
        };
        let records: Vec<&Value> = if matching.len() >= 2 {
            matching
        } else {
            inputs.history.iter().collect()
        };
        let series = |path: &[&str]| -> Vec<f64> {
            records
                .iter()
                .filter_map(|r| {
                    let mut v: &Value = r;
                    for k in path {
                        v = v.get(k)?;
                    }
                    v.as_f64()
                })
                .collect()
        };
        let mut charts = String::new();
        let mut chart = |label: &str, values: &[f64], fmt: &dyn Fn(f64) -> String| {
            if values.len() < 2 {
                return;
            }
            let _ = write!(
                charts,
                "<div class=\"trend\"><div class=\"l\">{} <b>{}</b> \
                 <span class=\"meta\">({} runs)</span></div>{}</div>",
                esc(label),
                esc(&fmt(*values.last().expect("len >= 2"))),
                values.len(),
                sparkline(values, "#2a7ae2")
            );
        };
        chart(
            "gate evals / s",
            &series(&["derived", "gate_evals_per_sec"]),
            &|v| fmt_count(v),
        );
        chart(
            "omission attempts / s",
            &series(&["derived", "omission_attempts_per_sec"])
                .into_iter()
                .filter(|v| *v > 0.0)
                .collect::<Vec<_>>(),
            &|v| fmt_count(v),
        );
        chart("peak RSS", &series(&["peak_rss_bytes"]), &|v| fmt_bytes(v));
        chart("wall time", &series(&["wall_us"]), &|v| fmt_us(v as u64));
        if !charts.is_empty() {
            section(&mut body, "Trends", &charts);
        }
    }

    // --- Metrics tables ---------------------------------------------
    if let Some(metrics) = &inputs.metrics {
        let mut tables = String::new();
        if let Some(counters) = metrics.get("counters").and_then(Value::as_obj) {
            let interesting: Vec<&(String, Value)> = counters
                .iter()
                .filter(|(n, _)| !n.starts_with("phase/"))
                .collect();
            if !interesting.is_empty() {
                let rows: String = interesting
                    .iter()
                    .map(|(n, v)| {
                        format!(
                            "<tr><td><code>{}</code></td><td class=\"n\">{}</td></tr>",
                            esc(n),
                            fmt_count(v.as_f64().unwrap_or(0.0))
                        )
                    })
                    .collect();
                let _ = write!(
                    tables,
                    "<h3>Counters</h3><table><tr><th>name</th><th>value</th></tr>{rows}</table>"
                );
            }
        }
        if let Some(hists) = metrics.get("histograms").and_then(Value::as_obj) {
            if !hists.is_empty() {
                let rows: String = hists
                    .iter()
                    .map(|(n, h)| {
                        let f = |k: &str| h.get(k).and_then(Value::as_f64).unwrap_or(0.0);
                        format!(
                            "<tr><td><code>{}</code></td><td class=\"n\">{}</td>\
                             <td class=\"n\">{}</td><td class=\"n\">{}</td>\
                             <td class=\"n\">{}</td></tr>",
                            esc(n),
                            fmt_count(f("count")),
                            fmt_count(f("mean")),
                            fmt_count(f("p50")),
                            fmt_count(f("p99")),
                        )
                    })
                    .collect();
                let _ = write!(
                    tables,
                    "<h3>Histograms</h3><table><tr><th>name</th><th>count</th>\
                     <th>mean</th><th>p50</th><th>p99</th></tr>{rows}</table>"
                );
            }
        }
        if !tables.is_empty() {
            section(&mut body, "Metrics", &tables);
        }
    }

    if body.is_empty() {
        body = "<section><h2>No data</h2><p>No inputs were provided; pass \
                <code>--metrics</code>, <code>--trace</code>, <code>--profile</code>, \
                or <code>--history</code>.</p></section>"
            .to_owned();
    }

    format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\
         <title>atspeed run report</title><style>{CSS}</style></head>\
         <body><h1>atspeed run report</h1>{body}\
         <footer>generated by the <code>report</code> binary from local telemetry \
         artifacts; this file is fully self-contained.</footer></body></html>\n"
    )
}

const CSS: &str = "\
body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:70rem;\
padding:0 1rem;color:#1a1a2e;background:#fff}\
h1{font-size:1.5rem;border-bottom:2px solid #2a7ae2;padding-bottom:.3rem}\
h2{font-size:1.15rem;margin:1.6rem 0 .5rem}\
h3{font-size:1rem;margin:1rem 0 .3rem}\
section{margin-bottom:1.5rem}\
table{border-collapse:collapse;width:100%}\
th,td{text-align:left;padding:.25rem .6rem;border-bottom:1px solid #e4e7ee}\
th{font-weight:600;color:#555}\
td.n{text-align:right;font-variant-numeric:tabular-nums;white-space:nowrap}\
td.w{width:45%}\
code{font:12px ui-monospace,monospace;background:#f4f6fa;padding:0 .2rem;\
border-radius:3px}\
.cards{display:flex;flex-wrap:wrap;gap:.8rem}\
.card{background:#f4f6fa;border-radius:8px;padding:.7rem 1rem;min-width:8rem}\
.card .v{font-size:1.25rem;font-weight:650;font-variant-numeric:tabular-nums}\
.card .l{color:#667;font-size:.8rem}\
.meta{color:#667;font-size:.85rem}\
.bar{position:relative;background:#eef1f7;border-radius:3px;height:1rem;\
min-width:8rem}\
.bar .fill{background:#2a7ae2;height:100%;border-radius:3px}\
.bar span{position:absolute;left:.3rem;top:0;font-size:.75rem;color:#123}\
.trend{display:inline-block;margin:.4rem 1.4rem .4rem 0;vertical-align:top}\
.trend .l{font-size:.85rem;margin-bottom:.15rem}\
footer{margin-top:2rem;color:#889;font-size:.8rem;border-top:1px solid #e4e7ee;\
padding-top:.5rem}";

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_trace::json::parse;

    fn sample_metrics() -> Value {
        parse(
            r#"{
              "counters": {"omission/attempts": 120, "phase/phase1-2/wall_ns": 2000000,
                           "phase/phase3/wall_ns": 1000000},
              "gauges": {"process/peak_rss_bytes": 1048576},
              "histograms": {"podem/backtracks": {"count": 10, "sum": 50, "mean": 5.0,
                             "p50": 4.0, "p99": 9.5, "buckets": {"4": 10}}},
              "derived": {"gate_evals_total": 500000, "wall_us_total": 3000,
                          "gate_evals_per_sec": 166666666.7, "partition_imbalance": 1.0,
                          "omission_attempts_total": 120, "omission_wall_us": 900,
                          "omission_attempts_per_sec": 133333.3,
                          "peak_rss_bytes": 1048576}
            }"#,
        )
        .unwrap()
    }

    fn sample_trace() -> Value {
        parse(
            r#"{"traceEvents":[
              {"name":"pipeline.phase1-2","ph":"B","tid":1,"ts":0},
              {"name":"podem","ph":"B","tid":1,"ts":10,
               "args":{"fault":"G17 s-a-1"}},
              {"name":"podem","ph":"E","tid":1,"ts":900},
              {"name":"podem","ph":"B","tid":1,"ts":910,
               "args":{"fault":"G5->G9 s-a-0"}},
              {"name":"podem","ph":"E","tid":1,"ts":930},
              {"name":"pipeline.phase1-2","ph":"E","tid":1,"ts":2000}
            ]}"#,
        )
        .unwrap()
    }

    fn history_record(fp: &str, rate: f64, rss: f64) -> Value {
        parse(&format!(
            r#"{{"schema":1,"unix_time_s":1,"git_sha":"abc","command":"tables --quick",
                "config_fingerprint":"{fp}","wall_us":1000,"peak_rss_bytes":{rss},
                "derived":{{"gate_evals_per_sec":{rate},"omission_attempts_per_sec":10.0}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn span_durations_pair_begin_end_per_thread() {
        let spans = span_durations(&sample_trace());
        assert_eq!(spans.len(), 3);
        let podem: Vec<_> = spans.iter().filter(|s| s.name == "podem").collect();
        assert_eq!(podem.len(), 2);
        assert_eq!(podem[0].dur_us, 890);
        assert_eq!(podem[0].args, "fault=G17 s-a-1");
        let pipe = spans
            .iter()
            .find(|s| s.name == "pipeline.phase1-2")
            .unwrap();
        assert_eq!(pipe.dur_us, 2000);
    }

    #[test]
    fn folded_rows_sort_heaviest_first_and_skip_garbage() {
        let rows = folded_rows("main;a 3\nmain;b 10\nnot-a-row\nmain;c 0\n");
        assert_eq!(
            rows,
            vec![("main;b".to_owned(), 10), ("main;a".to_owned(), 3)]
        );
    }

    #[test]
    fn report_renders_all_sections_self_contained() {
        let mut inputs = ReportInputs::new();
        inputs.metrics = Some(sample_metrics());
        inputs.trace = Some(sample_trace());
        inputs.profile = Some("main;pipeline.phase1-2;podem 42\nmain;pipeline.phase3 7\n".into());
        inputs.history = vec![
            history_record("f00d", 1.0e8, 1e6),
            history_record("f00d", 1.2e8, 1.1e6),
            history_record("beef", 9.9e7, 9e5),
            history_record("f00d", 1.3e8, 1.2e6),
        ];
        let html = render_html(&inputs);
        for needle in [
            "<!DOCTYPE html>",
            "Run summary",
            "Phase waterfall",
            "Hottest stacks",
            "Slowest spans",
            "Slowest PODEM faults",
            "G17 s-a-1",
            "Trends",
            "<svg",
            "Metrics",
            "podem/backtracks",
        ] {
            assert!(html.contains(needle), "missing {needle:?}");
        }
        // Self-contained: no external references of any scheme.
        for banned in ["http://", "https://", "<script", "src=", "@import", "url("] {
            assert!(!html.contains(banned), "found {banned:?}");
        }
    }

    #[test]
    fn trend_prefers_records_with_matching_fingerprint() {
        let mut inputs = ReportInputs::new();
        inputs.history = vec![
            history_record("aaaa", 1.0, 1.0),
            history_record("bbbb", 2.0, 2.0),
            history_record("bbbb", 3.0, 3.0),
        ];
        let html = render_html(&inputs);
        // Newest record's fingerprint (bbbb) matches 2 records — the
        // trend uses those, shown in the "(2 runs)" annotation.
        assert!(html.contains("(2 runs)"), "{html}");
    }

    #[test]
    fn empty_inputs_render_a_valid_empty_report() {
        let html = render_html(&ReportInputs::new());
        assert!(html.contains("No data"));
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(!html.contains("http"));
    }

    #[test]
    fn html_escaping_covers_span_names_and_args() {
        let trace = parse(
            r#"{"traceEvents":[
              {"name":"<evil>&\"name\"","ph":"B","tid":1,"ts":0,
               "args":{"k":"<script>alert(1)</script>"}},
              {"name":"<evil>&\"name\"","ph":"E","tid":1,"ts":5}
            ]}"#,
        )
        .unwrap();
        let mut inputs = ReportInputs::new();
        inputs.trace = Some(trace);
        let html = render_html(&inputs);
        assert!(!html.contains("<script>"), "{html}");
        assert!(!html.contains("<evil>"));
        assert!(html.contains("&lt;evil&gt;"));
    }
}
