//! Regenerates the paper's Tables 1–5 over the benchmark catalog.
//!
//! Usage:
//!
//! ```text
//! tables [--table N] [--circuits a,b,c] [--quick] [--verify] [--no-parallel]
//!        [--sim-threads N] [--csv FILE] [--sim-json FILE]
//!        [--trace FILE] [--metrics-json FILE] [--profile FILE]
//!        [--profile-hz N] [--history FILE] [--log LEVEL]
//! ```
//!
//! Without `--table`, all five tables print. `--circuits` filters by name
//! (comma-separated); `--quick` uses reduced effort for smoke runs.
//! `--verify` runs the end-to-end coverage oracle inside every pipeline:
//! the final test sets are independently re-fault-simulated and the run
//! exits nonzero if any phase's coverage claim does not hold.
//!
//! Telemetry: `--trace FILE` records hierarchical spans for the whole run
//! and writes Chrome trace-event JSON (open at <https://ui.perfetto.dev>);
//! `--metrics-json FILE` dumps every counter/gauge/histogram plus derived
//! headline figures; `--profile FILE` samples the live span stacks
//! (`--profile-hz N`, default 250) and writes collapsed stacks loadable in
//! speedscope or inferno; `--log LEVEL` filters the structured JSONL run
//! log (default `info`). Any telemetry-enabled run appends one run-history
//! record to `target/bench-history.jsonl` (`--history FILE` overrides).
//! Feed the outputs to the `report` binary for a self-contained HTML view.
//!
//! A per-phase simulation-instrumentation report (gate evaluations,
//! fault-sim invocations, faults dropped, partition wall times) prints
//! after the tables; `--sim-json FILE` additionally writes it as JSON
//! (conventionally `BENCH_<tag>.json`). Phase attribution is exact under
//! `--no-parallel`; with the parallel circuit runner, concurrently running
//! circuits share the phase labels, so per-phase rows are approximate while
//! totals remain exact. `--sim-threads N` (or the `SIM_THREADS` environment
//! variable when the flag is absent) sets the fault-simulation thread count
//! inside each pipeline, speculative vector omission included (unset or
//! 1 = serial, 0 = all cores); results are identical at any thread count.

use std::process::ExitCode;
use std::time::Instant;

use atspeed_bench::runner::{try_run_circuit_opts, try_run_circuits_opts, Effort, RunOptions};
use atspeed_bench::tables::render_table;
use atspeed_bench::telemetry::TelemetryArgs;
use atspeed_circuit::catalog;
use atspeed_sim::SimConfig;

struct Args {
    table: Option<usize>,
    circuits: Option<Vec<String>>,
    quick: bool,
    parallel: bool,
    verify: bool,
    sim_threads: Option<usize>,
    csv: Option<String>,
    sim_json: Option<String>,
    telemetry: TelemetryArgs,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        table: None,
        circuits: None,
        quick: false,
        parallel: true,
        verify: false,
        sim_threads: None,
        csv: None,
        sim_json: None,
        telemetry: TelemetryArgs::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if args.telemetry.consume(a.as_str(), &mut it)? {
            continue;
        }
        match a.as_str() {
            "--table" => {
                let v = it.next().ok_or("--table needs a number")?;
                let n: usize = v.parse().map_err(|_| format!("bad table `{v}`"))?;
                if !(1..=5).contains(&n) {
                    return Err(format!("table {n} out of range (paper has 1-5)"));
                }
                args.table = Some(n);
            }
            "--circuits" => {
                let v = it.next().ok_or("--circuits needs a list")?;
                args.circuits = Some(v.split(',').map(str::to_owned).collect());
            }
            "--quick" => args.quick = true,
            "--verify" => args.verify = true,
            "--csv" => {
                args.csv = Some(it.next().ok_or("--csv needs a path")?);
            }
            "--sim-json" => {
                args.sim_json = Some(it.next().ok_or("--sim-json needs a path")?);
            }
            "--no-parallel" => args.parallel = false,
            "--sim-threads" => {
                let v = it.next().ok_or("--sim-threads needs a count")?;
                args.sim_threads = Some(v.parse().map_err(|_| format!("bad thread count `{v}`"))?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: tables [--table N] [--circuits a,b,c] [--quick] [--verify] \
                     [--no-parallel] [--sim-threads N] [--csv FILE] [--sim-json FILE] \
                     [--trace FILE] [--metrics-json FILE] [--profile FILE] \
                     [--profile-hz N] [--history FILE] [--log LEVEL]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn sim_config(args: &Args) -> SimConfig {
    match args.sim_threads {
        Some(n) => SimConfig::with_threads(n),
        None => SimConfig::from_env(),
    }
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let infos: Vec<_> = match &args.circuits {
        Some(names) => {
            let mut selected = Vec::new();
            for n in names {
                match catalog::by_name(n) {
                    Ok(info) => selected.push(info),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            selected
        }
        None => catalog::all().to_vec(),
    };
    let effort = if args.quick {
        Effort::Quick
    } else {
        Effort::Full
    };

    args.telemetry.init();
    atspeed_sim::stats::reset();
    let sim = sim_config(&args);
    let start = Instant::now();
    atspeed_trace::info!("bench.tables", "starting experiments";
        circuits = infos.len(),
        effort = if args.quick { "quick" } else { "full" },
        mode = if args.parallel { "parallel" } else { "serial" },
        sim_threads = sim.threads,
        verify = args.verify,
    );
    let opts = RunOptions {
        effort,
        sim,
        verify: args.verify,
    };
    let run = if args.parallel {
        try_run_circuits_opts(&infos, &opts)
    } else {
        infos
            .iter()
            .map(|i| try_run_circuit_opts(i, &opts))
            .collect()
    };
    let exps = match run {
        Ok(exps) => exps,
        Err(e) => {
            eprintln!("{e}");
            atspeed_trace::error!("bench.tables", "experiments failed"; error = e.to_string());
            return ExitCode::FAILURE;
        }
    };
    atspeed_trace::info!("bench.tables", "experiments done";
        wall_ms = start.elapsed().as_millis(),
    );

    match args.table {
        Some(n) => println!("{}", render_table(n, &exps)),
        None => {
            for n in 1..=5 {
                println!("{}", render_table(n, &exps));
            }
        }
    }
    let report = atspeed_sim::stats::report();
    println!(
        "Simulation instrumentation (sim threads = {}):",
        sim.threads
    );
    println!("{report}");
    if let Some(path) = args.sim_json {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            atspeed_trace::error!("bench.tables", "failed to write sim json";
                path = path, error = e);
            return ExitCode::FAILURE;
        }
        atspeed_trace::info!("bench.tables", "wrote sim json"; path = path);
    }
    if let Some(path) = args.csv {
        let csv = atspeed_bench::csv::to_csv(&exps);
        if let Err(e) = std::fs::write(&path, csv) {
            atspeed_trace::error!("bench.tables", "failed to write csv";
                path = path, error = e);
            return ExitCode::FAILURE;
        }
        atspeed_trace::info!("bench.tables", "wrote csv"; path = path);
    }
    if let Err(e) = args.telemetry.write_outputs(&report) {
        atspeed_trace::error!("bench.tables", "failed to write telemetry output";
            error = e);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
