//! Renders a self-contained HTML run report from telemetry artifacts.
//!
//! Usage:
//!
//! ```text
//! report [--metrics FILE] [--trace FILE] [--profile FILE]
//!        [--history FILE] [--top N] [--out FILE]
//! ```
//!
//! Consumes any subset of the files the other binaries emit — metrics
//! JSON (`--metrics-json`), Chrome trace (`--trace`), folded profile
//! (`--profile`), and the run-history JSONL (`target/bench-history.jsonl`
//! by default) — and writes one HTML file (default `target/report.html`)
//! with no external assets: phase waterfall, hottest profiler stacks,
//! slowest spans (PODEM faults included), trend sparklines across history
//! records, and the metrics tables. Inputs that are missing or malformed
//! drop their section with a warning rather than failing the run, so the
//! report can always be produced from whatever a CI job managed to save.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use atspeed_bench::report::{render_html, ReportInputs};
use atspeed_trace::json::{parse, Value};

struct Args {
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    profile: Option<PathBuf>,
    history: PathBuf,
    top_k: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        metrics: None,
        trace: None,
        profile: None,
        history: PathBuf::from(atspeed_trace::history::DEFAULT_PATH),
        top_k: 15,
        out: PathBuf::from("target/report.html"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut path_arg = |flag: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{flag} needs a path"))
        };
        match a.as_str() {
            "--metrics" => args.metrics = Some(path_arg("--metrics")?),
            "--trace" => args.trace = Some(path_arg("--trace")?),
            "--profile" => args.profile = Some(path_arg("--profile")?),
            "--history" => args.history = path_arg("--history")?,
            "--out" => args.out = path_arg("--out")?,
            "--top" => {
                let v = it.next().ok_or("--top needs a count")?;
                args.top_k = v
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("bad --top count `{v}`"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: report [--metrics FILE] [--trace FILE] [--profile FILE] \
                     [--history FILE] [--top N] [--out FILE]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Reads and parses one JSON input; `None` (with a stderr warning) when
/// the file is absent or malformed so the report degrades per-section.
fn load_json(label: &str, path: &Path) -> Option<Value> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("report: skipping {label} ({}: {e})", path.display());
            return None;
        }
    };
    match parse(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("report: skipping {label} ({}: {e})", path.display());
            None
        }
    }
}

fn load_history(path: &Path) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse(line) {
            Ok(v) => records.push(v),
            Err(e) => eprintln!(
                "report: skipping history line {} ({}: {e})",
                i + 1,
                path.display()
            ),
        }
    }
    records
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut inputs = ReportInputs::new();
    inputs.top_k = args.top_k;
    if let Some(p) = &args.metrics {
        inputs.metrics = load_json("metrics", p);
    }
    if let Some(p) = &args.trace {
        inputs.trace = load_json("trace", p);
    }
    if let Some(p) = &args.profile {
        match std::fs::read_to_string(p) {
            Ok(folded) => {
                if let Err(e) = atspeed_trace::validate_folded(&folded) {
                    eprintln!(
                        "report: profile {} is not valid folded output: {e}",
                        p.display()
                    );
                }
                inputs.profile = Some(folded);
            }
            Err(e) => eprintln!("report: skipping profile ({}: {e})", p.display()),
        }
    }
    inputs.history = load_history(&args.history);

    let html = render_html(&inputs);
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("report: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, &html) {
        eprintln!("report: cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "report: wrote {} ({} bytes; {} history records)",
        args.out.display(),
        html.len(),
        inputs.history.len()
    );
    ExitCode::SUCCESS
}
