//! Command-line front end for the differential verification subsystem.
//!
//! Usage:
//!
//! ```text
//! verifier [--seed N] [--iters N] [--threads a,b] [--out-dir DIR]
//!          [--shrink-steps N] [--replay DIR]
//!          [--trace FILE] [--metrics-json FILE] [--profile FILE]
//!          [--profile-hz N] [--history FILE] [--log LEVEL]
//! ```
//!
//! Default mode fuzzes `--iters` deterministic cases (derived from
//! `--seed`) through every differential check in
//! [`atspeed_verify::fuzz`]: legacy vs compiled logic values, serial vs
//! parallel detection (combinational, matrix, and sequential), and serial
//! vs speculative vector omission, each at every thread count in
//! `--threads` (default `2,3`). A diverging case is minimized and dumped
//! as a reproduction bundle under `--out-dir`
//! (default `target/verify-repros`); the exit code is nonzero if any case
//! diverged.
//!
//! `--replay DIR` instead loads a previously dumped bundle and re-runs the
//! serial-vs-parallel differentials on it — the tight loop for debugging a
//! divergence after the engines changed.
//!
//! `--malformed N` instead runs the malformed-input fuzz loop: `N`
//! deterministically mutated `.bench` and vector payloads through the
//! parsing surfaces a served request reaches, asserting structured
//! rejection and no panics.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use atspeed_bench::telemetry::TelemetryArgs;
use atspeed_verify::{load_repro, replay, run_fuzz, run_malformed_fuzz, FuzzConfig};

struct Args {
    fuzz: FuzzConfig,
    replay: Option<PathBuf>,
    malformed: Option<usize>,
    telemetry: TelemetryArgs,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        fuzz: FuzzConfig {
            out_dir: Some(PathBuf::from("target/verify-repros")),
            ..FuzzConfig::default()
        },
        replay: None,
        malformed: None,
        telemetry: TelemetryArgs::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if args.telemetry.consume(a.as_str(), &mut it)? {
            continue;
        }
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a number")?;
                args.fuzz.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--iters" => {
                let v = it.next().ok_or("--iters needs a count")?;
                args.fuzz.iters = v
                    .parse()
                    .map_err(|_| format!("bad iteration count `{v}`"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a comma-separated list")?;
                let parsed: Result<Vec<usize>, _> = v.split(',').map(str::parse).collect();
                args.fuzz.threads = parsed.map_err(|_| format!("bad thread list `{v}`"))?;
                if args.fuzz.threads.is_empty() {
                    return Err("--threads needs at least one count".to_owned());
                }
            }
            "--out-dir" => {
                args.fuzz.out_dir = Some(PathBuf::from(it.next().ok_or("--out-dir needs a path")?));
            }
            "--shrink-steps" => {
                let v = it.next().ok_or("--shrink-steps needs a count")?;
                args.fuzz.shrink_steps = v.parse().map_err(|_| format!("bad step count `{v}`"))?;
            }
            "--replay" => {
                args.replay = Some(PathBuf::from(it.next().ok_or("--replay needs a path")?));
            }
            "--malformed" => {
                let v = it.next().ok_or("--malformed needs an iteration count")?;
                args.malformed = Some(
                    v.parse()
                        .map_err(|_| format!("bad iteration count `{v}`"))?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: verifier [--seed N] [--iters N] [--threads a,b] [--out-dir DIR] \
                     [--shrink-steps N] [--replay DIR] [--malformed N] [--trace FILE] \
                     [--metrics-json FILE] [--profile FILE] [--profile-hz N] [--history FILE] \
                     [--log LEVEL]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn replay_bundle(dir: &std::path::Path, threads: &[usize]) -> ExitCode {
    let bundle = match load_repro(dir) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("failed to load repro bundle {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replaying {}: {} PIs, {} FFs, {} gates, {} vectors",
        dir.display(),
        bundle.netlist.num_pis(),
        bundle.netlist.num_ffs(),
        bundle.netlist.num_gates(),
        bundle.seq.len(),
    );
    match replay(&bundle, threads) {
        Ok(rep) => {
            println!(
                "engines agree: {} faults simulated, {} detected, omission differential {}",
                rep.faults,
                rep.detected,
                if rep.omission_checked {
                    "ran"
                } else {
                    "skipped"
                },
            );
            ExitCode::SUCCESS
        }
        Err(div) => {
            eprintln!("{div}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    args.telemetry.init();
    atspeed_sim::stats::reset();
    atspeed_sim::stats::set_phase("verify");

    if let Some(dir) = &args.replay {
        return replay_bundle(dir, &args.fuzz.threads);
    }

    if let Some(iters) = args.malformed {
        let start = Instant::now();
        let out = run_malformed_fuzz(args.fuzz.seed, iters);
        println!(
            "{} malformed inputs: {} rejected, {} accepted, 0 panics ({} ms)",
            out.cases_run,
            out.rejected,
            out.accepted,
            start.elapsed().as_millis(),
        );
        return ExitCode::SUCCESS;
    }

    let start = Instant::now();
    atspeed_trace::info!("bench.verifier", "fuzzing engines";
        seed = args.fuzz.seed,
        iters = args.fuzz.iters,
        threads = format!("{:?}", args.fuzz.threads),
    );
    let outcome = run_fuzz(&args.fuzz);
    println!(
        "{} cases, {} differential checks, {} divergences ({} ms)",
        outcome.cases_run,
        outcome.checks_run,
        outcome.failures.len(),
        start.elapsed().as_millis(),
    );
    for f in &outcome.failures {
        println!("  {}", f.divergence);
        println!(
            "    original: {:?} seq_len={} fault_cap={}",
            f.case.spec, f.case.seq_len, f.case.fault_cap
        );
        println!(
            "    minimized: {:?} seq_len={} fault_cap={}",
            f.minimized.spec, f.minimized.seq_len, f.minimized.fault_cap
        );
        match &f.repro_dir {
            Some(dir) => println!("    repro: {}", dir.display()),
            None => println!("    repro: not written"),
        }
    }
    let report = atspeed_sim::stats::report();
    if let Err(e) = args.telemetry.write_outputs(&report) {
        eprintln!("failed to write telemetry output: {e}");
        return ExitCode::FAILURE;
    }
    if outcome.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
