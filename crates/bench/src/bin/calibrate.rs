//! Stage-by-stage timing of the pipeline on one catalog circuit.
//!
//! Usage:
//!
//! ```text
//! calibrate [CIRCUIT] [--sim-threads N] [--trace FILE] [--metrics-json FILE]
//! [--profile FILE] [--profile-hz N] [--history FILE]
//!           [--log LEVEL]
//! ```
//!
//! Runs each pipeline stage in sequence on `CIRCUIT` (default `s298`) and
//! logs one structured event per stage with its wall time and headline
//! figures. `--sim-threads N` sets the fault-simulation thread count for
//! every stage, Phase 2's speculative omission included (default: the
//! `SIM_THREADS` environment variable, serial when unset; results are
//! identical at any thread count). `--trace FILE` additionally records
//! spans as Chrome trace-event JSON (open at <https://ui.perfetto.dev>);
//! `--metrics-json FILE` dumps the metrics registry; `--log LEVEL` filters
//! the run log.

use atspeed_atpg::comb_tset::{self, CombTsetConfig};
use atspeed_atpg::{directed_t0, DirectedConfig};
use atspeed_bench::telemetry::TelemetryArgs;
use atspeed_circuit::catalog;
use atspeed_core::iterate::{build_tau_seq, IterateConfig};
use atspeed_core::phase3::top_up_with;
use atspeed_sim::fault::FaultUniverse;
use atspeed_sim::SimConfig;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut name = "s298".to_owned();
    let mut sim = SimConfig::from_env();
    let mut telemetry = TelemetryArgs::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match telemetry.consume(a.as_str(), &mut it) {
            Ok(true) => {}
            Ok(false) if a == "--sim-threads" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--sim-threads needs a count");
                    return ExitCode::FAILURE;
                };
                sim = SimConfig::with_threads(n);
            }
            Ok(false) if a == "--help" || a == "-h" => {
                eprintln!(
                    "usage: calibrate [CIRCUIT] [--sim-threads N] [--trace FILE] \
                     [--metrics-json FILE] [--profile FILE] [--profile-hz N] \
                     [--history FILE] [--log LEVEL]"
                );
                return ExitCode::FAILURE;
            }
            Ok(false) => name = a,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    telemetry.init();
    atspeed_sim::stats::reset();

    let nl = match catalog::by_name(&name) {
        Ok(info) => info.instantiate(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut t = Instant::now();
    atspeed_sim::stats::set_phase("universe");
    let u = FaultUniverse::full(&nl);
    let targets = u.representatives().to_vec();
    atspeed_trace::info!("bench.calibrate", "universe built";
        circuit = name,
        wall_us = t.elapsed().as_micros(),
        collapsed = u.num_collapsed(),
    );

    t = Instant::now();
    atspeed_sim::stats::set_phase("comb-gen");
    let comb_cfg = CombTsetConfig {
        sim,
        ..CombTsetConfig::default()
    };
    let c = match comb_tset::generate(&nl, &u, &comb_cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("combinational test generation failed for {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    atspeed_trace::info!("bench.calibrate", "comb tset generated";
        wall_us = t.elapsed().as_micros(),
        tests = c.tests.len(),
        untestable = c.untestable.len(),
        aborted = c.aborted.len(),
    );

    t = Instant::now();
    atspeed_sim::stats::set_phase("t0-gen");
    let t0 = directed_t0(
        &nl,
        &u,
        &targets,
        &DirectedConfig {
            sim,
            ..DirectedConfig::default()
        },
    );
    atspeed_trace::info!("bench.calibrate", "directed t0 generated";
        wall_us = t.elapsed().as_micros(),
        len = t0.len(),
    );

    t = Instant::now();
    atspeed_sim::stats::set_phase("phase1-2");
    let mut iterate_cfg = IterateConfig::default();
    iterate_cfg.phase1.sim = sim;
    iterate_cfg.omission.sim = sim;
    let tau = match build_tau_seq(&nl, &u, &t0, &c.tests, &targets, iterate_cfg) {
        Ok(tau) => tau,
        Err(e) => {
            eprintln!("tau_seq construction failed for {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    atspeed_trace::info!("bench.calibrate", "tau_seq built";
        wall_us = t.elapsed().as_micros(),
        len = tau.test.len(),
        detected = tau.detected.len(),
        iterations = tau.iterations,
    );

    t = Instant::now();
    atspeed_sim::stats::set_phase("phase3");
    let undet: Vec<_> = targets
        .iter()
        .filter(|f| !tau.detected.contains(f))
        .copied()
        .collect();
    let p3 = top_up_with(&nl, &u, &c.tests, &undet, sim);
    atspeed_trace::info!("bench.calibrate", "phase3 top-up done";
        wall_us = t.elapsed().as_micros(),
        added = p3.added.len(),
    );

    let report = atspeed_sim::stats::report();
    println!("{report}");
    if let Err(e) = telemetry.write_outputs(&report) {
        atspeed_trace::error!("bench.calibrate", "failed to write telemetry output";
            error = e);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
