use atspeed_atpg::comb_tset::{self, CombTsetConfig};
use atspeed_atpg::{directed_t0, DirectedConfig};
use atspeed_circuit::catalog;
use atspeed_core::iterate::{build_tau_seq, IterateConfig};
use atspeed_core::phase3::top_up;
use atspeed_sim::fault::FaultUniverse;
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "s298".into());
    let nl = catalog::by_name(&name).unwrap().instantiate();
    let mut t = Instant::now();
    let u = FaultUniverse::full(&nl);
    let targets = u.representatives().to_vec();
    eprintln!(
        "universe: {:?} ({} collapsed)",
        t.elapsed(),
        u.num_collapsed()
    );

    t = Instant::now();
    let c = comb_tset::generate(&nl, &u, &CombTsetConfig::default()).unwrap();
    eprintln!(
        "comb tset: {:?} ({} tests, {} unt, {} ab)",
        t.elapsed(),
        c.tests.len(),
        c.untestable.len(),
        c.aborted.len()
    );

    t = Instant::now();
    let t0 = directed_t0(&nl, &u, &targets, &DirectedConfig::default());
    eprintln!("directed t0: {:?} (len {})", t.elapsed(), t0.len());

    t = Instant::now();
    let tau = build_tau_seq(&nl, &u, &t0, &c.tests, &targets, IterateConfig::default()).unwrap();
    eprintln!(
        "tau_seq: {:?} (len {}, {} det, {} iters)",
        t.elapsed(),
        tau.test.len(),
        tau.detected.len(),
        tau.iterations
    );

    t = Instant::now();
    let undet: Vec<_> = targets
        .iter()
        .filter(|f| !tau.detected.contains(f))
        .copied()
        .collect();
    let p3 = top_up(&nl, &u, &c.tests, &undet);
    eprintln!("phase3: {:?} ({} added)", t.elapsed(), p3.added.len());
}
