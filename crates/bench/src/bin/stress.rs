//! Large-circuit stress driver: Phases 1–4 end to end on a fixed-seed
//! 100k+-gate synthetic circuit, with peak RSS and wall time emitted for
//! the CI stress gate.
//!
//! Usage:
//!
//! ```text
//! stress [--gates N] [--ffs N] [--faults N] [--t0-len N] [--seed N]
//!        [--attempts N] [--mem-words N] [--max-rss-mb N] [--sim-threads N]
//!        [--engine scalar|wide|wide+fused]
//!        [--trace FILE] [--metrics-json FILE] [--profile FILE]
//!        [--profile-hz N] [--history FILE] [--log LEVEL]
//! ```
//!
//! The circuit comes from the layered [`SynthSpec`] generator (fixed seed,
//! so every run stresses the identical structure), is serialized through
//! the `.bench` writer and re-ingested by the parser — exercising the
//! large-netlist parse path — and then driven through the paper's phases
//! directly: a random `T_0`, Phases 1–2 via `build_tau_seq` on a
//! stride-sampled fault list, Phase 3 top-up from a synthetic
//! combinational test set, and Phase 4 static compaction. Full-circuit
//! combinational ATPG is deliberately skipped: the gate is about the
//! engines' scaling, not PODEM's.
//!
//! Memory stays bounded via the engines' budget knobs
//! (`--mem-words` caps per-fault omission-profile words; the Phase 4
//! failed-pair memo is capped at its default) and the run reports
//! `derived.peak_rss_bytes` (from `/proc/self/status` VmHWM) and the
//! `stress/wall_us` gauge in `--metrics-json` output.
//! `--max-rss-mb` additionally makes the binary itself exit nonzero when
//! the peak exceeds the budget.

use std::process::ExitCode;
use std::time::Instant;

use atspeed_atpg::compact::OmissionConfig;
use atspeed_atpg::random_t0;
use atspeed_bench::telemetry::TelemetryArgs;
use atspeed_circuit::bench_fmt;
use atspeed_circuit::synth::{generate, SynthSpec};
use atspeed_core::iterate::{build_tau_seq, IterateConfig};
use atspeed_core::phase1::Phase1Config;
use atspeed_core::phase3::top_up_with;
use atspeed_core::phase4::{combine_tests_cfg, CombineConfig};
use atspeed_core::test::{ScanTest, TestSet};
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{stats, CombTest, EngineKind, SimConfig, V3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Args {
    gates: usize,
    ffs: usize,
    faults: usize,
    t0_len: usize,
    seed: u64,
    attempts: usize,
    mem_words: usize,
    max_rss_mb: Option<u64>,
    sim_threads: Option<usize>,
    engine: Option<EngineKind>,
    telemetry: TelemetryArgs,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        gates: 100_000,
        ffs: 512,
        faults: 600,
        t0_len: 96,
        seed: 2001,
        attempts: 24,
        mem_words: 4,
        max_rss_mb: None,
        sim_threads: None,
        engine: None,
        telemetry: TelemetryArgs::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if args.telemetry.consume(a.as_str(), &mut it)? {
            continue;
        }
        let num = |flag: &str, it: &mut dyn Iterator<Item = String>| -> Result<usize, String> {
            let v = it.next().ok_or(format!("{flag} needs a number"))?;
            v.parse().map_err(|_| format!("bad {flag} value `{v}`"))
        };
        match a.as_str() {
            "--gates" => args.gates = num("--gates", &mut it)?,
            "--ffs" => args.ffs = num("--ffs", &mut it)?,
            "--faults" => args.faults = num("--faults", &mut it)?,
            "--t0-len" => args.t0_len = num("--t0-len", &mut it)?,
            "--seed" => args.seed = num("--seed", &mut it)? as u64,
            "--attempts" => args.attempts = num("--attempts", &mut it)?,
            "--mem-words" => args.mem_words = num("--mem-words", &mut it)?,
            "--max-rss-mb" => args.max_rss_mb = Some(num("--max-rss-mb", &mut it)? as u64),
            "--sim-threads" => args.sim_threads = Some(num("--sim-threads", &mut it)?),
            "--engine" => {
                let v = it
                    .next()
                    .ok_or("--engine needs scalar|wide|wide+fused".to_owned())?;
                args.engine = Some(v.parse::<EngineKind>()?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: stress [--gates N] [--ffs N] [--faults N] [--t0-len N] [--seed N] \
                     [--profile FILE] [--profile-hz N] [--history FILE] \
                     [--attempts N] [--mem-words N] [--max-rss-mb N] [--sim-threads N] \
                     [--engine scalar|wide|wide+fused] \
                     [--trace FILE] [--metrics-json FILE] [--log LEVEL]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// A synthetic combinational test set: random scan-in states and input
/// vectors. The stress run needs scan-in *candidates* with plausible
/// structure, not high-coverage ATPG vectors.
fn synthetic_comb_tests(n: usize, num_ffs: usize, num_pis: usize, seed: u64) -> Vec<CombTest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let state: Vec<V3> = (0..num_ffs).map(|_| V3::from_bool(rng.gen())).collect();
            let inputs: Vec<V3> = (0..num_pis).map(|_| V3::from_bool(rng.gen())).collect();
            CombTest::new(state, inputs)
        })
        .collect()
}

/// Stride-samples `n` faults from the collapsed representative set, so the
/// sample spans the whole circuit instead of clustering in one region.
fn sample_faults(universe: &FaultUniverse, n: usize) -> Vec<FaultId> {
    let reps = universe.representatives();
    if reps.len() <= n {
        return reps.to_vec();
    }
    let stride = reps.len() / n;
    reps.iter()
        .step_by(stride.max(1))
        .take(n)
        .copied()
        .collect()
}

fn run(args: &Args) -> Result<(), String> {
    let mut sim = match args.sim_threads {
        Some(n) => SimConfig::with_threads(n),
        None => SimConfig::from_env(),
    };
    if let Some(engine) = args.engine {
        sim.engine = engine;
    }
    let start = Instant::now();
    let registry = atspeed_trace::metrics::global();

    // Circuit synthesis + .bench round trip: the parser must ingest the
    // 100k-gate netlist without superlinear behavior.
    stats::set_phase("synth");
    let sp = atspeed_trace::span("stress.synth");
    let spec = SynthSpec::new("stress", 64, 32, args.ffs, args.gates, args.seed)
        .with_layers(64)
        .with_fanout_hubs(32);
    let synthesized = generate(&spec).map_err(|e| format!("synthesis failed: {e}"))?;
    let text = bench_fmt::write(&synthesized);
    drop(sp);

    stats::set_phase("parse");
    let sp = atspeed_trace::span("stress.parse");
    let parse_started = Instant::now();
    let nl = bench_fmt::parse("stress", &text).map_err(|e| format!("parse failed: {e}"))?;
    registry
        .gauge("stress/parse_us")
        .set(parse_started.elapsed().as_micros() as i64);
    drop(sp);
    atspeed_trace::info!("bench.stress", "circuit ready";
        gates = nl.num_gates(),
        nets = nl.num_nets(),
        ffs = nl.num_ffs(),
        levels = nl.max_level(),
        bench_bytes = text.len(),
    );
    drop(text);
    if nl.num_gates() < args.gates {
        return Err(format!(
            "generator delivered {} gates, below the requested {}",
            nl.num_gates(),
            args.gates
        ));
    }

    let universe = FaultUniverse::full(&nl);
    let targets = sample_faults(&universe, args.faults);
    // 12 candidates keeps the Phase 4 pair count (quadratic in the test
    // count) inside the CI wall-time budget while still exercising the
    // failed-pair memo.
    let comb_tests = synthetic_comb_tests(12, nl.num_ffs(), nl.num_pis(), args.seed ^ 0xC0DE);
    let t0 = random_t0(&nl, args.t0_len, args.seed.wrapping_add(17));

    // Phases 1–2: scan-test selection and bounded vector omission.
    stats::set_phase("phase1-2");
    let sp = atspeed_trace::span("stress.phase1-2");
    let iterate_cfg = IterateConfig {
        phase1: Phase1Config {
            max_candidates: Some(8),
            score_sample: Some(64),
            scan_out_rule: Default::default(),
            sim,
        },
        omission: OmissionConfig {
            max_passes: 1,
            chunked: true,
            attempt_budget: args.attempts,
            sim,
            profile_state_words: args.mem_words,
        },
        max_iterations: Some(2),
    };
    let tau = build_tau_seq(&nl, &universe, &t0, &comb_tests, &targets, iterate_cfg)
        .map_err(|e| format!("phases 1-2 failed: {e}"))?;
    drop(sp);
    atspeed_trace::info!("bench.stress", "phases 1-2 done";
        tau_len = tau.test.len(),
        detected = tau.detected.len(),
        iterations = tau.iterations,
    );

    // Phase 3: top up the sampled faults τ_seq missed.
    stats::set_phase("phase3");
    let sp = atspeed_trace::span("stress.phase3");
    let undetected: Vec<FaultId> = targets
        .iter()
        .filter(|f| !tau.detected.contains(f))
        .copied()
        .collect();
    let p3 = top_up_with(&nl, &universe, &comb_tests, &undetected, sim);
    drop(sp);

    // Phase 4: static compaction with the bounded failed-pair memo.
    stats::set_phase("phase4");
    let sp = atspeed_trace::span("stress.phase4");
    let mut tests: Vec<ScanTest> = Vec::with_capacity(1 + p3.added.len());
    tests.push(tau.test.clone());
    tests.extend(p3.added.iter().cloned());
    let initial = TestSet::from_tests(tests);
    let detected_by_set: Vec<FaultId> = targets
        .iter()
        .filter(|f| !p3.still_undetected.contains(f))
        .copied()
        .collect();
    let (compacted, p4_stats) = combine_tests_cfg(
        &nl,
        &universe,
        &initial,
        &detected_by_set,
        CombineConfig {
            transfer: None,
            sim,
            ..CombineConfig::default()
        },
    );
    drop(sp);
    stats::set_phase("post-stress");

    let wall = start.elapsed();
    registry
        .gauge("stress/wall_us")
        .set(wall.as_micros() as i64);
    registry
        .gauge("stress/sampled_faults")
        .set(targets.len() as i64);
    let peak_rss = atspeed_trace::rss::record_peak_rss(registry);

    println!(
        "stress: {} gates / {} ffs / {} levels, {} sampled faults",
        nl.num_gates(),
        nl.num_ffs(),
        nl.max_level(),
        targets.len()
    );
    println!(
        "  tau_seq: {} vectors detecting {} ({} iterations)",
        tau.test.len(),
        tau.detected.len(),
        tau.iterations
    );
    println!(
        "  phase3: +{} tests, {} of {} sampled faults undetected by C",
        p3.added.len(),
        p3.still_undetected.len(),
        targets.len()
    );
    println!(
        "  phase4: {} -> {} tests ({} combinations, {} memo entries)",
        initial.len(),
        compacted.len(),
        p4_stats.combinations,
        p4_stats.failed_pairs
    );
    println!(
        "  wall: {:.1}s, peak RSS: {}",
        wall.as_secs_f64(),
        match peak_rss {
            Some(b) => format!("{:.0} MiB", b as f64 / (1 << 20) as f64),
            None => "unavailable".to_owned(),
        }
    );

    if let (Some(budget_mb), Some(rss)) = (args.max_rss_mb, peak_rss) {
        if rss > budget_mb * (1 << 20) {
            return Err(format!(
                "peak RSS {:.0} MiB exceeds the {budget_mb} MiB budget",
                rss as f64 / (1 << 20) as f64
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    args.telemetry.init();
    stats::reset();
    let outcome = run(&args);
    let report = stats::report();
    println!("{report}");
    if let Err(e) = args.telemetry.write_outputs(&report) {
        eprintln!("failed to write telemetry output: {e}");
        return ExitCode::FAILURE;
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("stress run failed: {msg}");
            atspeed_trace::error!("bench.stress", "stress run failed"; error = msg);
            ExitCode::FAILURE
        }
    }
}
