//! CSV export of the measured experiments (for plotting or regression
//! tracking outside this crate).

use std::fmt::Write as _;

use crate::runner::CircuitExperiment;

/// Header row of [`to_csv`].
pub const CSV_HEADER: &str = "circuit,ff,comb_tests,faults,untestable,\
t0_len,t0_detected,tau_len,tau_detected,added,final_detected,\
prop_init_cycles,prop_comp_cycles,\
b4_init_cycles,b4_comp_cycles,dynamic_cycles,\
rand_t0_detected,rand_tau_len,rand_added,rand_init_cycles,rand_comp_cycles";

/// Renders every experiment as one CSV row (empty cells for the
/// configurations a circuit did not run).
pub fn to_csv(exps: &[CircuitExperiment]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{CSV_HEADER}");
    for e in exps {
        let p = &e.proposed;
        let _ = write!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            e.info.name,
            p.n_sv,
            p.num_comb_tests,
            p.total_faults,
            p.untestable_faults,
            p.t0_len,
            p.t0_detected,
            p.tau_seq_len,
            p.tau_seq_detected,
            p.added_tests,
            p.final_detected,
            p.init_cycles,
            p.comp_cycles,
            e.b4_init_cycles,
            e.b4_comp_cycles,
            e.dynamic.cycles,
        );
        match &e.proposed_rand {
            Some(r) => {
                let _ = writeln!(
                    out,
                    ",{},{},{},{},{}",
                    r.t0_detected, r.tau_seq_len, r.added_tests, r.init_cycles, r.comp_cycles
                );
            }
            None => {
                let _ = writeln!(out, ",,,,,");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_circuit, Effort};
    use atspeed_circuit::catalog;

    #[test]
    fn rows_align_with_header() {
        let exps = vec![run_circuit(
            &catalog::by_name("b02").unwrap(),
            Effort::Quick,
        )];
        let csv = to_csv(&exps);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "column count mismatch:\n{header}\n{row}"
        );
        assert!(row.starts_with("b02,"));
    }
}
