//! Times the workload behind Table 3: the [4] baseline (initial set plus
//! static compaction by combining) whose clock-cycle columns anchor the
//! comparison.

use atspeed_atpg::comb_tset::{self, CombTsetConfig};
use atspeed_circuit::catalog;
use atspeed_core::phase4::baseline4;
use atspeed_sim::fault::FaultUniverse;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_cycles");
    g.sample_size(10);
    for name in ["b02", "b06", "s298"] {
        let nl = catalog::by_name(name).unwrap().instantiate();
        let u = FaultUniverse::full(&nl);
        let targets = u.representatives().to_vec();
        let comb = comb_tset::generate(&nl, &u, &CombTsetConfig::default())
            .unwrap()
            .tests;
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = baseline4(&nl, &u, &comb, &targets);
                black_box((
                    r.initial.clock_cycles(nl.num_ffs()),
                    r.compacted.clock_cycles(nl.num_ffs()),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
