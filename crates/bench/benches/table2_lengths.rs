//! Times the workload behind Table 2: T0 generation plus the iterated
//! Phases 1-2 that produce the T0/T_seq length columns.

use atspeed_atpg::{directed_t0, DirectedConfig};
use atspeed_circuit::catalog;
use atspeed_core::iterate::{build_tau_seq, IterateConfig};
use atspeed_sim::fault::FaultUniverse;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_lengths");
    g.sample_size(10);
    for name in ["b02", "s298"] {
        let nl = catalog::by_name(name).unwrap().instantiate();
        let u = FaultUniverse::full(&nl);
        let targets = u.representatives().to_vec();
        let comb = atspeed_atpg::comb_tset::generate(
            &nl,
            &u,
            &atspeed_atpg::comb_tset::CombTsetConfig::default(),
        )
        .unwrap()
        .tests;
        let t0 = directed_t0(
            &nl,
            &u,
            &targets,
            &DirectedConfig {
                max_len: 128,
                ..DirectedConfig::default()
            },
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                let r =
                    build_tau_seq(&nl, &u, &t0, &comb, &targets, IterateConfig::default()).unwrap();
                black_box((r.test.len(), r.iterations))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
