//! Kernel micro-benchmarks: legacy pointer walker vs compiled full pass vs
//! event-driven delta path vs the SIMD-widened (`W3x4`) and cone-fused
//! kernels, over the ISCAS-89 circuits of the catalog.
//!
//! Besides the human-readable criterion output, the bench writes a
//! machine-readable JSON summary (per circuit, per kernel: rounds, wall
//! time, gate evaluations, events skipped, gate-evals/sec) so CI can
//! archive runs and compare kernels across commits:
//!
//! - `KERNELS_JSON` — output path (default `target/kernels.json`);
//! - `KERNELS_CIRCUITS` — comma-separated circuit filter (default: every
//!   ISCAS-89 catalog circuit).
//!
//! The workload is a sequence of reseed-and-evaluate rounds: round 0
//! assigns every source net a random 3-valued word, later rounds reseed a
//! small random subset — the regime the event-driven path is built for.
//! All kernels compute identical values on the nets they guarantee (the
//! differential tests in `atspeed-sim` prove it); only the traversal
//! strategy and pass width differ. Gate evaluations are counted in
//! gate-words, so a wide pass reports `LANES` evaluations per gate and
//! `gate_evals_per_sec` stays comparable across widths.

use atspeed_atpg::compact::{omit_vectors, OmissionConfig};
use atspeed_atpg::random_t0;
use atspeed_circuit::catalog::{self, BenchmarkInfo, Suite};
use atspeed_circuit::{NetId, Netlist};
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{
    stats, CombSim, CompiledSim, FusedSim, SeqFaultSim, SimConfig, SimScratch, W3x4,
    FUSED_SLICE_PAD, V3, W3,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn selected() -> Vec<BenchmarkInfo> {
    let filter = std::env::var("KERNELS_CIRCUITS").ok();
    catalog::all()
        .iter()
        .copied()
        .filter(|b| b.suite == Suite::Iscas89)
        .filter(|b| {
            filter
                .as_deref()
                .is_none_or(|f| f.split(',').any(|n| n.trim() == b.name))
        })
        .collect()
}

fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    move || {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn random_w3(next: &mut impl FnMut() -> u64) -> W3 {
    let a = next();
    let b = next();
    W3 {
        zero: a & !b,
        one: !a & b,
    }
}

/// Pre-generated reseed rounds: round 0 assigns every source, later rounds
/// a ~1/8 subset, so the delta path has real events to skip around.
struct Workload {
    nl: Netlist,
    rounds: Vec<Vec<(NetId, W3)>>,
}

fn make_workload(info: &BenchmarkInfo, num_rounds: usize) -> Workload {
    let nl = info.instantiate();
    let mut next = rng(0xBEEF ^ info.num_gates as u64);
    let mut sources: Vec<NetId> = nl.pis().to_vec();
    sources.extend(nl.ffs().iter().map(|ff| ff.q()));
    let mut rounds = Vec::with_capacity(num_rounds);
    for r in 0..num_rounds {
        let mut round: Vec<(NetId, W3)> = Vec::new();
        for &s in &sources {
            if r == 0 || next() & 7 == 0 {
                round.push((s, random_w3(&mut next)));
            }
        }
        rounds.push(round);
    }
    Workload { nl, rounds }
}

/// One timed sweep over every round with the legacy pointer walker.
fn run_legacy(w: &Workload, sim: &mut CombSim<'_>, vals: &mut [W3]) {
    for round in &w.rounds {
        for &(net, val) in round {
            vals[net.index()] = val;
        }
        sim.eval(vals);
    }
    black_box(vals.first().copied());
}

/// One timed sweep with compiled full passes over a caller slice.
fn run_compiled(w: &Workload, sim: &CompiledSim<'_>, vals: &mut [W3]) {
    for round in &w.rounds {
        for &(net, val) in round {
            vals[net.index()] = val;
        }
        sim.eval_slice(vals);
    }
    black_box(vals.first().copied());
}

/// One timed sweep with the event-driven delta path: full pass on round 0,
/// fanout-cone re-evaluation afterwards.
fn run_event(w: &Workload, sim: &CompiledSim<'_>, scratch: &mut SimScratch) {
    for (r, round) in w.rounds.iter().enumerate() {
        for &(net, val) in round {
            scratch.set_source(net, val);
        }
        if r == 0 {
            sim.eval(scratch);
        } else {
            sim.eval_delta(scratch);
        }
    }
    black_box(scratch.value(NetId::from_index(0)));
}

/// One timed sweep with wide (`W3x4`) compiled full passes: each round's
/// reseed value is splat across all lanes, so one pass does `LANES` words
/// of gate work.
fn run_wide(w: &Workload, sim: &CompiledSim<'_>, wvals: &mut [W3x4]) {
    for round in &w.rounds {
        for &(net, val) in round {
            wvals[net.index()] = W3x4::splat(val);
        }
        sim.eval_slice_wide(wvals);
    }
    black_box(wvals.first().copied());
}

/// One timed sweep with scalar cone-fused full passes.
fn run_fused(w: &Workload, sim: &FusedSim<'_>, vals: &mut [W3]) {
    for round in &w.rounds {
        for &(net, val) in round {
            vals[net.index()] = val;
        }
        sim.eval_slice(vals);
    }
    black_box(vals.first().copied());
}

/// One timed sweep with wide cone-fused full passes — the fastest engine,
/// and the one CI gates against the scalar compiled baseline.
fn run_wide_fused(w: &Workload, sim: &FusedSim<'_>, wvals: &mut [W3x4]) {
    for round in &w.rounds {
        for &(net, val) in round {
            wvals[net.index()] = W3x4::splat(val);
        }
        sim.eval_slice_wide(wvals);
    }
    black_box(wvals.first().copied());
}

struct KernelRow {
    kernel: &'static str,
    wall_s: f64,
    gate_evals: u64,
    events_skipped: u64,
}

/// Timed measurement windows per kernel (window 0 is an untimed warm-up).
/// Windows are interleaved across kernels — every kernel gets one window,
/// then every kernel gets the next — and each kernel keeps its fastest
/// window. The JSON numbers feed a CI throughput-*ratio* gate, so what
/// matters is that the best windows of two kernels land in the same quiet
/// phases of a noisy shared runner, which interleaving makes likely and
/// sequential per-kernel measurement does not.
const MEASURE_WINDOWS: usize = 5;

fn measure_circuit(info: &BenchmarkInfo, num_rounds: usize, repeats: usize) -> Vec<KernelRow> {
    let w = make_workload(info, num_rounds);
    let cc = w.nl.compiled();

    let mut legacy = CombSim::new(&w.nl);
    let mut lvals = vec![W3::ALL_X; w.nl.num_nets()];
    let sim = CompiledSim::new(cc);
    let mut cvals = vec![W3::ALL_X; w.nl.num_nets()];
    let mut scratch = SimScratch::new(cc);
    let mut wvals = vec![W3x4::ALL_X; w.nl.num_nets()];
    let fsim = FusedSim::new(cc, w.nl.fused());
    let mut fvals = vec![W3::ALL_X; w.nl.num_nets() + FUSED_SLICE_PAD];
    let mut fwvals = vec![W3x4::ALL_X; w.nl.num_nets() + FUSED_SLICE_PAD];

    type Runner<'a> = (&'static str, Box<dyn FnMut() + 'a>);
    let mut runners: Vec<Runner<'_>> = vec![
        (
            "legacy",
            Box::new(|| run_legacy(&w, &mut legacy, &mut lvals)),
        ),
        ("compiled", Box::new(|| run_compiled(&w, &sim, &mut cvals))),
        ("event", Box::new(|| run_event(&w, &sim, &mut scratch))),
        ("wide", Box::new(|| run_wide(&w, &sim, &mut wvals))),
        ("fused", Box::new(|| run_fused(&w, &fsim, &mut fvals))),
        (
            "wide_fused",
            Box::new(|| run_wide_fused(&w, &fsim, &mut fwvals)),
        ),
    ];

    let mut rows: Vec<KernelRow> = Vec::new();
    for window in 0..MEASURE_WINDOWS {
        for (k, (kernel, run)) in runners.iter_mut().enumerate() {
            stats::reset();
            let start = Instant::now();
            for _ in 0..repeats {
                run();
            }
            let wall = start.elapsed().as_secs_f64();
            let t = stats::report().totals();
            if window == 0 {
                // Warm-up window: record the (deterministic) counter
                // totals, discard the cold wall time.
                rows.push(KernelRow {
                    kernel,
                    wall_s: f64::INFINITY,
                    gate_evals: t.gate_evals,
                    events_skipped: t.events_skipped,
                });
            } else if wall < rows[k].wall_s {
                rows[k].wall_s = wall;
            }
        }
    }
    rows
}

/// One timed sweep like [`run_compiled`] but with a span per round — the
/// instrumentation density of real pipeline code — so the profiler
/// overhead measurement exercises the push/pop hot path, not just the
/// background sampler.
///
/// Production spans wrap phases, PODEM fault generations, and fault-sim
/// partitions — units of 0.1 ms and up, never per-gate or per-round work.
/// One span per 64-round block reproduces that density (a few thousand
/// spans per second of kernel work); per-round spans would measure a
/// regime the codebase deliberately avoids.
fn run_compiled_spanned(w: &Workload, sim: &CompiledSim<'_>, vals: &mut [W3]) {
    for block in w.rounds.chunks(64) {
        let _sp = atspeed_trace::span("bench.block");
        for round in block {
            for &(net, val) in round {
                vals[net.index()] = val;
            }
            sim.eval_slice(vals);
        }
    }
    black_box(vals.first().copied());
}

/// Wall time of the spanned compiled sweep with the profiler off vs
/// sampling at 250 Hz. The contract is <2% overhead enabled; the JSON
/// summary archives the measured ratio per run.
struct ProfilerOverhead {
    wall_s_off: f64,
    wall_s_on: f64,
}

fn measure_profiler_overhead(w: &Workload, repeats: usize) -> ProfilerOverhead {
    let sim = CompiledSim::new(w.nl.compiled());
    let mut vals = vec![W3::ALL_X; w.nl.num_nets()];
    let time_sweeps = |vals: &mut [W3]| {
        let start = Instant::now();
        for _ in 0..repeats {
            run_compiled_spanned(w, &sim, vals);
        }
        start.elapsed().as_secs_f64()
    };
    // Warm-up pass so both timed passes see hot caches.
    time_sweeps(&mut vals);
    let wall_s_off = time_sweeps(&mut vals);
    atspeed_trace::profile::start(atspeed_trace::profile::DEFAULT_HZ);
    let wall_s_on = time_sweeps(&mut vals);
    let _ = atspeed_trace::profile::stop();
    ProfilerOverhead {
        wall_s_off,
        wall_s_on,
    }
}

/// One measured Phase-2 omission run at a given thread count.
struct OmissionRow {
    threads: usize,
    wall_s: f64,
    attempts: usize,
    removed: usize,
    wasted: usize,
}

/// The vector-omission workload: a random sequence over a catalog circuit
/// plus the faults it detects (the set every omission must preserve).
struct OmissionWorkload {
    nl: Netlist,
    init: Vec<V3>,
    seq: atspeed_sim::Sequence,
    targets: Vec<FaultId>,
    universe: FaultUniverse,
}

fn make_omission_workload(info: &BenchmarkInfo, seq_len: usize) -> OmissionWorkload {
    let nl = info.instantiate();
    let universe = FaultUniverse::full(&nl);
    let seq = random_t0(&nl, seq_len, 0xA75);
    let init = vec![V3::Zero; nl.num_ffs()];
    let mut fsim = SeqFaultSim::new(&nl);
    let reps: Vec<FaultId> = universe.representatives().to_vec();
    let det = fsim.detect(&init, &seq, &reps, &universe, true);
    let targets = reps
        .iter()
        .zip(det.iter())
        .filter(|(_, &d)| d)
        .map(|(&f, _)| f)
        .collect();
    OmissionWorkload {
        nl,
        init,
        seq,
        targets,
        universe,
    }
}

fn run_omission(w: &OmissionWorkload, threads: usize) -> (usize, usize, usize) {
    let cfg = OmissionConfig {
        sim: SimConfig::with_threads(threads),
        ..OmissionConfig::default()
    };
    let (short, stats) = omit_vectors(&w.nl, &w.universe, &w.init, &w.seq, &w.targets, true, cfg);
    black_box(short.len());
    (stats.attempts, stats.removed, stats.wasted)
}

fn measure_omission(w: &OmissionWorkload, repeats: usize) -> Vec<OmissionRow> {
    [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let start = Instant::now();
            let mut attempts = 0;
            let mut removed = 0;
            let mut wasted = 0;
            for _ in 0..repeats {
                let (a, r, wst) = run_omission(w, threads);
                attempts += a;
                removed += r;
                wasted += wst;
            }
            OmissionRow {
                threads,
                wall_s: start.elapsed().as_secs_f64(),
                attempts,
                removed,
                wasted,
            }
        })
        .collect()
}

fn emit_json(
    circuits: &[(BenchmarkInfo, Vec<KernelRow>)],
    rounds: usize,
    repeats: usize,
    omission: &(BenchmarkInfo, usize, Vec<OmissionRow>),
    profiler: &(BenchmarkInfo, ProfilerOverhead),
) {
    let path = std::env::var("KERNELS_JSON").unwrap_or_else(|_| {
        // Default into the workspace target dir, independent of the cwd
        // cargo runs the bench from.
        format!("{}/../../target/kernels.json", env!("CARGO_MANIFEST_DIR"))
    });
    let mut out = String::from("{\n  \"circuits\": [\n");
    for (i, (info, rows)) in circuits.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"gates\": {}, \"rounds\": {}, \"repeats\": {}, \
             \"kernels\": [\n",
            info.name, info.num_gates, rounds, repeats
        ));
        for (j, r) in rows.iter().enumerate() {
            let evals_per_sec = if r.wall_s > 0.0 {
                r.gate_evals as f64 / r.wall_s
            } else {
                0.0
            };
            out.push_str(&format!(
                "      {{\"kernel\": \"{}\", \"wall_us\": {}, \"gate_evals\": {}, \
                 \"events_skipped\": {}, \"gate_evals_per_sec\": {:.1}}}{}\n",
                r.kernel,
                (r.wall_s * 1e6) as u64,
                r.gate_evals,
                r.events_skipped,
                evals_per_sec,
                if j + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == circuits.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    let (info, seq_len, rows) = omission;
    out.push_str(&format!(
        "  \"omission\": {{\"circuit\": \"{}\", \"seq_len\": {}, \"runs\": [\n",
        info.name, seq_len
    ));
    for (j, r) in rows.iter().enumerate() {
        let attempts_per_sec = if r.wall_s > 0.0 {
            r.attempts as f64 / r.wall_s
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_us\": {}, \"attempts\": {}, \"removed\": {}, \
             \"wasted\": {}, \"attempts_per_sec\": {:.1}}}{}\n",
            r.threads,
            (r.wall_s * 1e6) as u64,
            r.attempts,
            r.removed,
            r.wasted,
            attempts_per_sec,
            if j + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]},\n");
    let (pinfo, po) = profiler;
    let overhead_pct = if po.wall_s_off > 0.0 {
        (po.wall_s_on / po.wall_s_off - 1.0) * 100.0
    } else {
        0.0
    };
    out.push_str(&format!(
        "  \"profiler_overhead\": {{\"circuit\": \"{}\", \"hz\": {}, \
         \"wall_us_off\": {}, \"wall_us_on\": {}, \"overhead_pct\": {:.2}}}\n}}\n",
        pinfo.name,
        atspeed_trace::profile::DEFAULT_HZ,
        (po.wall_s_off * 1e6) as u64,
        (po.wall_s_on * 1e6) as u64,
        overhead_pct,
    ));
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &out) {
        Ok(()) => println!("kernel summary written to {path}"),
        Err(e) => atspeed_trace::warn!("bench.kernels", "could not write kernel summary";
            path = path, error = e),
    }
}

fn bench_kernels(c: &mut Criterion) {
    // Criterion timings for humans; a fixed-round measured pass for the
    // JSON artifact. Smoke mode (plain `cargo test`) keeps both tiny.
    let (rounds, repeats, samples) = if bench_mode() {
        (64, 16, 10)
    } else {
        (4, 1, 1)
    };

    let mut summary = Vec::new();
    for info in selected() {
        let w = make_workload(&info, rounds);
        let cc = w.nl.compiled();
        let mut g = c.benchmark_group(format!("kernels_{}", info.name));
        g.sample_size(samples);
        let mut legacy = CombSim::new(&w.nl);
        let mut vals = vec![W3::ALL_X; w.nl.num_nets()];
        g.bench_function("legacy", |b| {
            b.iter(|| run_legacy(&w, &mut legacy, &mut vals))
        });
        let sim = CompiledSim::new(cc);
        let mut vals = vec![W3::ALL_X; w.nl.num_nets()];
        g.bench_function("compiled", |b| b.iter(|| run_compiled(&w, &sim, &mut vals)));
        let mut scratch = SimScratch::new(cc);
        g.bench_function("event", |b| b.iter(|| run_event(&w, &sim, &mut scratch)));
        let mut wvals = vec![W3x4::ALL_X; w.nl.num_nets()];
        g.bench_function("wide", |b| b.iter(|| run_wide(&w, &sim, &mut wvals)));
        let fsim = FusedSim::new(cc, w.nl.fused());
        let mut vals = vec![W3::ALL_X; w.nl.num_nets() + FUSED_SLICE_PAD];
        g.bench_function("fused", |b| b.iter(|| run_fused(&w, &fsim, &mut vals)));
        let mut wvals = vec![W3x4::ALL_X; w.nl.num_nets() + FUSED_SLICE_PAD];
        g.bench_function("wide_fused", |b| {
            b.iter(|| run_wide_fused(&w, &fsim, &mut wvals))
        });
        g.finish();

        summary.push((info, measure_circuit(&info, rounds, repeats)));
    }

    // Phase-2 omission throughput: serial vs speculative-parallel sweeps on
    // a fixed catalog circuit (results are identical at every thread count;
    // only wall time and speculation waste differ).
    let om_info = catalog::by_name("s298").expect("s298 is in the catalog");
    let (om_len, om_repeats) = if bench_mode() { (48, 3) } else { (12, 1) };
    let ow = make_omission_workload(&om_info, om_len);
    let mut g = c.benchmark_group("omission_s298");
    g.sample_size(samples);
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("t{threads}").as_str(), |b| {
            b.iter(|| run_omission(&ow, threads))
        });
    }
    g.finish();
    let om_rows = measure_omission(&ow, om_repeats);

    // Profiler tax: the same compiled sweep (with per-round spans) timed
    // with sampling off and at the default 250 Hz. Longer rounds in bench
    // mode so the ratio is measured over a multi-second window.
    let prof_info = catalog::by_name("s1423").unwrap_or(om_info);
    // ~1 s per timed pass in bench mode: long enough for hundreds of
    // 250 Hz samples, so the ratio measures the tax rather than noise.
    let prof_rounds = if bench_mode() { 512 } else { 8 };
    let prof_repeats = if bench_mode() { 320 } else { 1 };
    let pw = make_workload(&prof_info, prof_rounds);
    let overhead = measure_profiler_overhead(&pw, prof_repeats);

    emit_json(
        &summary,
        rounds,
        repeats,
        &(om_info, om_len, om_rows),
        &(prof_info, overhead),
    );
}

criterion_group!(kernels, bench_kernels);
criterion_main!(kernels);
