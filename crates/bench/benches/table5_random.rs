//! Times the workload behind Table 5: the proposed pipeline driven by a
//! random T0 sequence.

use atspeed_circuit::catalog;
use atspeed_core::{Pipeline, T0Source};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_random");
    g.sample_size(10);
    for name in ["b02", "b01", "s298"] {
        let nl = catalog::by_name(name).unwrap().instantiate();
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = Pipeline::new(&nl)
                    .t0_source(T0Source::Random { len: 256 })
                    .seed(2001)
                    .run()
                    .unwrap();
                black_box((r.t0_detected, r.tau_seq_len, r.added_tests))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
