//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! - omission sweep style (chunked delta-debugging rounds vs. plain
//!   single-vector passes);
//! - Phase 4 combining with vs. without transfer sequences ([7]);
//! - scan-out rule i0 vs. i1 (the paper's Section 3.1 discussion).

use atspeed_atpg::comb_tset::{self, CombTsetConfig};
use atspeed_atpg::compact::{omit_vectors, OmissionConfig};
use atspeed_atpg::{directed_t0, DirectedConfig};
use atspeed_circuit::catalog;
use atspeed_core::iterate::{build_tau_seq, IterateConfig};
use atspeed_core::phase4::{combine_tests_with, TransferConfig};
use atspeed_core::{Phase1Config, ScanOutRule, TestSet};
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{SeqFaultSim, V3};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_omission_styles(c: &mut Criterion) {
    let nl = catalog::by_name("s298").unwrap().instantiate();
    let u = FaultUniverse::full(&nl);
    let targets: Vec<FaultId> = u.representatives().to_vec();
    let t0 = directed_t0(
        &nl,
        &u,
        &targets,
        &DirectedConfig {
            max_len: 96,
            ..DirectedConfig::default()
        },
    );
    let init = vec![V3::Zero; nl.num_ffs()];
    let mut fsim = SeqFaultSim::new(&nl);
    let det = fsim.detect(&init, &t0, &targets, &u, true);
    let detected: Vec<FaultId> = targets
        .iter()
        .zip(det.iter())
        .filter(|(_, &d)| d)
        .map(|(&f, _)| f)
        .collect();

    let mut g = c.benchmark_group("ablation_omission");
    g.sample_size(10);
    for (label, chunked) in [("chunked", true), ("plain", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = OmissionConfig {
                    chunked,
                    max_passes: 1,
                    ..OmissionConfig::default()
                };
                let (seq, stats) = omit_vectors(&nl, &u, &init, &t0, &detected, true, cfg);
                black_box((seq.len(), stats.attempts))
            })
        });
    }
    g.finish();
}

fn bench_transfer_sequences(c: &mut Criterion) {
    let nl = catalog::by_name("b06").unwrap().instantiate();
    let u = FaultUniverse::full(&nl);
    let targets: Vec<FaultId> = u.representatives().to_vec();
    let comb = comb_tset::generate(&nl, &u, &CombTsetConfig::default())
        .unwrap()
        .tests;
    let set = TestSet::from_comb_tests(&comb);

    let mut g = c.benchmark_group("ablation_transfer");
    g.sample_size(10);
    for (label, transfer) in [
        ("plain", None),
        ("with_transfer", Some(TransferConfig::default())),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let (out, stats) = combine_tests_with(&nl, &u, &set, &targets, transfer);
                black_box((out.len(), stats.combinations, stats.transfer_combinations))
            })
        });
    }
    g.finish();
}

fn bench_scan_out_rules(c: &mut Criterion) {
    let nl = catalog::by_name("b02").unwrap().instantiate();
    let u = FaultUniverse::full(&nl);
    let targets: Vec<FaultId> = u.representatives().to_vec();
    let comb = comb_tset::generate(&nl, &u, &CombTsetConfig::default())
        .unwrap()
        .tests;
    let t0 = directed_t0(
        &nl,
        &u,
        &targets,
        &DirectedConfig {
            max_len: 64,
            ..DirectedConfig::default()
        },
    );

    let mut g = c.benchmark_group("ablation_scan_out");
    g.sample_size(10);
    for (label, rule) in [
        ("i0_earliest", ScanOutRule::EarliestComplete),
        ("i1_max_detect", ScanOutRule::MaxDetectEarliest),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = IterateConfig {
                    phase1: Phase1Config {
                        scan_out_rule: rule,
                        ..IterateConfig::default().phase1
                    },
                    ..IterateConfig::default()
                };
                let r = build_tau_seq(&nl, &u, &t0, &comb, &targets, cfg).unwrap();
                black_box((r.test.len(), r.detected.len()))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_omission_styles,
    bench_transfer_sequences,
    bench_scan_out_rules
);
criterion_main!(benches);
