//! Times the workload behind Table 1: the full proposed pipeline (C
//! generation, T0 generation, Phases 1-3) that yields the detected-fault
//! columns, on small catalog circuits.

use atspeed_circuit::catalog;
use atspeed_core::{Pipeline, T0Source};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_detected");
    g.sample_size(10);
    for name in ["b02", "b01", "s298"] {
        let nl = catalog::by_name(name).unwrap().instantiate();
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = Pipeline::new(&nl)
                    .t0_source(T0Source::Directed { max_len: 128 })
                    .seed(2001)
                    .phase4(false)
                    .run()
                    .unwrap();
                black_box((r.t0_detected, r.tau_seq_detected, r.final_detected))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
