//! Times the workload behind Table 4: the sequence-length statistics of
//! compacted test sets, dominated by the Phase 4 combining of the proposed
//! set.

use atspeed_atpg::comb_tset::{self, CombTsetConfig};
use atspeed_circuit::catalog;
use atspeed_core::phase4::combine_tests;
use atspeed_core::TestSet;
use atspeed_sim::fault::FaultUniverse;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_atspeed");
    g.sample_size(10);
    for name in ["b02", "b06", "s298"] {
        let nl = catalog::by_name(name).unwrap().instantiate();
        let u = FaultUniverse::full(&nl);
        let targets = u.representatives().to_vec();
        let comb = comb_tset::generate(&nl, &u, &CombTsetConfig::default())
            .unwrap()
            .tests;
        let set = TestSet::from_comb_tests(&comb);
        g.bench_function(name, |b| {
            b.iter(|| {
                let (compacted, _) = combine_tests(&nl, &u, &set, &targets);
                black_box(compacted.at_speed_stats())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
