//! Generation of the compact combinational test set `C`.
//!
//! The paper's procedure consumes a compact combinational test set that
//! achieves complete fault coverage (it cites the minimal-test-set work of
//! \[9\]). This module substitutes a classic three-stage flow:
//!
//! 1. **Random-pattern phase** — blocks of 64 random fully-specified tests
//!    are fault-simulated (PPSFP); each test that detects a still-alive
//!    fault is kept, and the phase stops after a configurable streak of
//!    yield-free blocks.
//! 2. **Deterministic phase** — [PODEM](crate::podem) targets every
//!    remaining fault, classifying it as tested, untestable, or aborted;
//!    don't-cares in generated tests are filled randomly and each new test
//!    is fault-simulated against the remaining list for free extra drops.
//! 3. **Reverse-order compaction** — the combined test list is
//!    fault-simulated in reverse order with fault dropping; tests that
//!    detect no still-alive fault are discarded, yielding the compact set.

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{CombTest, ParallelFsim, SimConfig, V3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::AtpgError;
use crate::podem::{Podem, PodemConfig, PodemOutcome};
use crate::sat_atpg::{SatAtpg, SatAtpgConfig, SatAtpgOutcome};

/// Which deterministic engine targets the random-resistant residue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeterministicEngine {
    /// Structural search (PODEM) — the default.
    #[default]
    Podem,
    /// CNF-miter encoding solved by the in-tree DPLL solver.
    Sat,
}

/// Configuration for [`generate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombTsetConfig {
    /// RNG seed (random phase and don't-care fill).
    pub seed: u64,
    /// Stop the random phase after this many consecutive yield-free blocks.
    pub random_stale_blocks: usize,
    /// Hard cap on random blocks.
    pub random_max_blocks: usize,
    /// PODEM backtrack budget per fault.
    pub podem: PodemConfig,
    /// Which deterministic engine handles faults the random phase missed.
    pub engine: DeterministicEngine,
    /// Whether to run reverse-order compaction at the end.
    pub reverse_compact: bool,
    /// Threading for the fault-simulation stages (random phase, reverse
    /// compaction, final coverage count). The default single thread
    /// reproduces the serial flow bit-for-bit.
    pub sim: SimConfig,
}

impl Default for CombTsetConfig {
    fn default() -> Self {
        CombTsetConfig {
            seed: 1,
            random_stale_blocks: 3,
            random_max_blocks: 200,
            podem: PodemConfig::default(),
            engine: DeterministicEngine::default(),
            reverse_compact: true,
            sim: SimConfig::default(),
        }
    }
}

/// A compact combinational test set together with fault classification.
#[derive(Debug, Clone)]
pub struct CombTestSet {
    /// The tests, fully specified (no X values).
    pub tests: Vec<CombTest>,
    /// Faults proven combinationally untestable.
    pub untestable: Vec<FaultId>,
    /// Faults abandoned at the backtrack limit.
    pub aborted: Vec<FaultId>,
    /// Collapsed faults detected by `tests`.
    pub detected: usize,
}

impl CombTestSet {
    /// Number of tests (the paper's Table 1 column "comb tsts").
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Collapsed faults that are detectable at all (total minus proven
    /// untestable); complete coverage means `detected == detectable`.
    pub fn detectable(&self, universe: &FaultUniverse) -> usize {
        universe.num_collapsed() - self.untestable.len()
    }
}

/// Generates a compact combinational test set for the representatives of
/// `universe`.
///
/// # Errors
///
/// Returns an error when the universe has no representative faults.
pub fn generate(
    nl: &Netlist,
    universe: &FaultUniverse,
    cfg: &CombTsetConfig,
) -> Result<CombTestSet, AtpgError> {
    let reps: Vec<FaultId> = universe.representatives().to_vec();
    if reps.is_empty() {
        return Err(AtpgError::EmptyFaultList);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sim = ParallelFsim::new(nl, cfg.sim);
    let mut tests: Vec<CombTest> = Vec::new();
    let mut alive: Vec<FaultId> = reps.clone();

    // Phase 1: random patterns.
    let sp_random = atspeed_trace::span("comb.random-phase");
    let mut stale = 0usize;
    for _ in 0..cfg.random_max_blocks {
        if alive.is_empty() || stale >= cfg.random_stale_blocks {
            break;
        }
        let block: Vec<CombTest> = (0..64).map(|_| random_test(nl, &mut rng)).collect();
        let masks = sim.detect_block(&block, &alive, universe);
        // Greedily keep tests that detect still-alive faults.
        let mut kept_any = false;
        let mut dropped = vec![false; alive.len()];
        for (slot, test) in block.iter().enumerate() {
            let bit = 1u64 << slot;
            let mut first = true;
            for (k, &m) in masks.iter().enumerate() {
                if !dropped[k] && m & bit != 0 {
                    if first {
                        tests.push(test.clone());
                        kept_any = true;
                        first = false;
                    }
                    dropped[k] = true;
                }
            }
        }
        alive = alive
            .iter()
            .zip(dropped.iter())
            .filter(|(_, &d)| !d)
            .map(|(&f, _)| f)
            .collect();
        stale = if kept_any { 0 } else { stale + 1 };
    }

    drop(sp_random);

    // Phase 2: a deterministic engine for the random-resistant residue.
    let sp_det = atspeed_trace::span("comb.deterministic-phase");
    let mut podem = Podem::new(nl, cfg.podem);
    let sat = SatAtpg::new(nl, SatAtpgConfig::default());
    let mut deterministic = |fault| -> PodemOutcome {
        match cfg.engine {
            DeterministicEngine::Podem => podem.generate(fault),
            DeterministicEngine::Sat => match sat.generate(fault) {
                SatAtpgOutcome::Test(t) => PodemOutcome::Test(t),
                SatAtpgOutcome::Untestable => PodemOutcome::Untestable,
                SatAtpgOutcome::Aborted => PodemOutcome::Aborted,
            },
        }
    };
    let mut untestable = Vec::new();
    let mut aborted = Vec::new();
    while let Some(&target) = alive.first() {
        match deterministic(universe.fault(target)) {
            PodemOutcome::Test(t) => {
                let filled = fill_x(nl, t, &mut rng);
                let masks = sim.detect_block(std::slice::from_ref(&filled), &alive, universe);
                let before = alive.len();
                alive = alive
                    .iter()
                    .zip(masks.iter())
                    .filter(|(_, &m)| m == 0)
                    .map(|(&f, _)| f)
                    .collect();
                // 3-valued detection is monotone under X-fill, so the target
                // must drop; the guard below only protects progress against
                // an engine bug.
                if alive.len() == before {
                    alive.retain(|&f| f != target);
                    aborted.push(target);
                } else {
                    tests.push(filled);
                }
            }
            PodemOutcome::Untestable => {
                untestable.push(target);
                alive.retain(|&f| f != target);
            }
            PodemOutcome::Aborted => {
                aborted.push(target);
                alive.retain(|&f| f != target);
            }
        }
    }

    drop(sp_det);

    // Phase 3: reverse-order compaction.
    if cfg.reverse_compact && !tests.is_empty() {
        let _sp = atspeed_trace::span("comb.reverse-compact");
        tests = reverse_order_compact(&sim, tests, &reps, universe);
    }

    let detected = sim
        .detect_all(&tests, &reps, universe)
        .iter()
        .filter(|&&d| d)
        .count();
    Ok(CombTestSet {
        tests,
        untestable,
        aborted,
        detected,
    })
}

/// Reverse-order fault-simulation compaction: keep a test only if it
/// detects a fault no later-ordered kept test detects.
///
/// Each single-test simulation is fault-sharded; the keep/discard decision
/// over the (order-independent) per-fault masks is sequential, so the kept
/// set is identical at any thread count.
fn reverse_order_compact(
    sim: &ParallelFsim<'_>,
    tests: Vec<CombTest>,
    reps: &[FaultId],
    universe: &FaultUniverse,
) -> Vec<CombTest> {
    let mut kept_rev: Vec<CombTest> = Vec::new();
    let mut alive: Vec<FaultId> = reps.to_vec();
    for t in tests.iter().rev() {
        if alive.is_empty() {
            break;
        }
        let masks = sim.detect_block(std::slice::from_ref(t), &alive, universe);
        let detects_new = masks.iter().any(|&m| m != 0);
        if detects_new {
            alive = alive
                .iter()
                .zip(masks.iter())
                .filter(|(_, &m)| m == 0)
                .map(|(&f, _)| f)
                .collect();
            kept_rev.push(t.clone());
        }
    }
    kept_rev.reverse();
    kept_rev
}

fn random_test(nl: &Netlist, rng: &mut StdRng) -> CombTest {
    CombTest::new(
        (0..nl.num_ffs())
            .map(|_| V3::from_bool(rng.gen()))
            .collect(),
        (0..nl.num_pis())
            .map(|_| V3::from_bool(rng.gen()))
            .collect(),
    )
}

/// Fills the don't-cares of a PODEM test with random binary values: the
/// paper's scan-in vectors must be fully specified.
fn fill_x(nl: &Netlist, t: CombTest, rng: &mut StdRng) -> CombTest {
    let _ = nl;
    CombTest::new(
        t.state
            .into_iter()
            .map(|v| {
                if v == V3::X {
                    V3::from_bool(rng.gen())
                } else {
                    v
                }
            })
            .collect(),
        t.inputs
            .into_iter()
            .map(|v| {
                if v == V3::X {
                    V3::from_bool(rng.gen())
                } else {
                    v
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::synth::{generate as synth, SynthSpec};

    #[test]
    fn s27_reaches_complete_coverage() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let set = generate(&nl, &u, &CombTsetConfig::default()).unwrap();
        assert!(set.untestable.is_empty(), "s27 has no redundant faults");
        assert_eq!(set.detected, u.num_collapsed(), "complete coverage");
        assert!(!set.is_empty());
        // s27's minimal complete sets have a handful of tests.
        assert!(set.len() <= 16, "set of {} tests is not compact", set.len());
    }

    #[test]
    fn tests_are_fully_specified() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let set = generate(&nl, &u, &CombTsetConfig::default()).unwrap();
        for t in &set.tests {
            assert!(t.state.iter().all(|v| v.is_known()));
            assert!(t.inputs.iter().all(|v| v.is_known()));
        }
    }

    #[test]
    fn reverse_compaction_never_reduces_coverage() {
        let nl = synth(&SynthSpec::new("ct", 4, 2, 6, 90, 3)).unwrap();
        let u = FaultUniverse::full(&nl);
        let uncompacted_cfg = CombTsetConfig {
            reverse_compact: false,
            ..CombTsetConfig::default()
        };
        let raw = generate(&nl, &u, &uncompacted_cfg).unwrap();
        let compacted = generate(&nl, &u, &CombTsetConfig::default()).unwrap();
        assert_eq!(raw.detected, compacted.detected, "coverage preserved");
        assert!(
            compacted.len() <= raw.len(),
            "compaction cannot grow the set"
        );
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let a = generate(&nl, &u, &CombTsetConfig::default()).unwrap();
        let b = generate(&nl, &u, &CombTsetConfig::default()).unwrap();
        assert_eq!(a.tests, b.tests);
    }

    #[test]
    fn different_seed_changes_tests() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let a = generate(&nl, &u, &CombTsetConfig::default()).unwrap();
        let cfg = CombTsetConfig {
            seed: 99,
            ..CombTsetConfig::default()
        };
        let b = generate(&nl, &u, &cfg).unwrap();
        assert!(a.tests != b.tests || a.len() == b.len());
    }

    #[test]
    fn sat_engine_also_reaches_complete_coverage() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let cfg = CombTsetConfig {
            engine: DeterministicEngine::Sat,
            ..CombTsetConfig::default()
        };
        let set = generate(&nl, &u, &cfg).unwrap();
        assert!(set.untestable.is_empty());
        assert_eq!(set.detected, u.num_collapsed());
        // Both engines see the same random phase, so the sets are close in
        // size; the SAT engine must stay compact too.
        assert!(set.len() <= 16, "{} tests", set.len());
    }

    #[test]
    fn synthetic_circuit_high_coverage() {
        let nl = synth(&SynthSpec::new("cov", 5, 3, 8, 150, 17)).unwrap();
        let u = FaultUniverse::full(&nl);
        let set = generate(&nl, &u, &CombTsetConfig::default()).unwrap();
        let detectable = set.detectable(&u);
        // Complete coverage of everything not proven untestable, modulo
        // aborted faults.
        assert!(set.detected + set.aborted.len() >= detectable);
    }
}
