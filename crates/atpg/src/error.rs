//! Error type for test generation.

use std::error::Error;
use std::fmt;

/// Errors produced by test generation entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AtpgError {
    /// A configuration value is out of range.
    BadConfig {
        /// Which parameter is invalid.
        parameter: &'static str,
        /// Explanation of the constraint.
        message: String,
    },
    /// The circuit has no faults to target.
    EmptyFaultList,
}

impl fmt::Display for AtpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtpgError::BadConfig { parameter, message } => {
                write!(f, "invalid configuration `{parameter}`: {message}")
            }
            AtpgError::EmptyFaultList => write!(f, "fault list is empty"),
        }
    }
}

impl Error for AtpgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AtpgError::BadConfig {
            parameter: "max_len",
            message: "must be positive".into(),
        };
        assert!(e.to_string().contains("max_len"));
        assert_eq!(AtpgError::EmptyFaultList.to_string(), "fault list is empty");
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AtpgError>();
    }
}
