//! A small CNF SAT solver (iterative DPLL with unit propagation).
//!
//! Built for the [SAT-based ATPG](crate::sat_atpg) engine: test-generation
//! instances are shallow and heavily unit-propagation-driven, so a lean
//! DPLL with two-watched-literal-style propagation (simplified to full
//! clause scans over occurrence lists) solves them quickly without pulling
//! in an external solver dependency.

/// A propositional variable, densely numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    code: u32,
}

impl Lit {
    /// Positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit { code: v.0 << 1 }
    }

    /// Negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit {
            code: (v.0 << 1) | 1,
        }
    }

    /// Literal of `v` with the given polarity.
    #[inline]
    pub fn with_sign(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.code >> 1)
    }

    /// Whether the literal is positive.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.code & 1 == 0
    }

    /// The complementary literal.
    #[inline]
    pub fn negate(self) -> Lit {
        Lit {
            code: self.code ^ 1,
        }
    }
}

/// Satisfiability verdict of [`Solver::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (read it via [`Solver::value`]).
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The decision budget ran out first.
    Unknown,
}

/// A DPLL SAT solver over clauses added with [`Solver::add_clause`].
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Vec<Lit>>,
    /// Clause indices containing each literal code.
    occurs: Vec<Vec<u32>>,
    assign: Vec<Option<bool>>,
    trail: Vec<Var>,
    trail_lim: Vec<usize>,
    empty_clause: bool,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Allocates and returns a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(None);
        self.occurs.push(Vec::new());
        self.occurs.push(Vec::new());
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Adds a clause (a disjunction of literals). An empty clause makes the
    /// formula trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        clause.sort_by_key(|l| l.code);
        clause.dedup();
        // A clause with both polarities of a variable is a tautology.
        if clause.windows(2).any(|w| w[0].code ^ 1 == w[1].code) {
            return;
        }
        if clause.is_empty() {
            self.empty_clause = true;
            return;
        }
        let idx = self.clauses.len() as u32;
        for &l in &clause {
            self.occurs[l.code as usize].push(idx);
        }
        self.clauses.push(clause);
    }

    /// The value of `v` in the current (satisfying) assignment.
    pub fn value(&self, v: Var) -> Option<bool> {
        self.assign[v.0 as usize]
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().0 as usize].map(|b| b == l.is_pos())
    }

    fn enqueue(&mut self, l: Lit) -> bool {
        match self.lit_value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.assign[l.var().0 as usize] = Some(l.is_pos());
                self.trail.push(l.var());
                true
            }
        }
    }

    fn decide(&mut self, l: Lit) {
        self.trail_lim.push(self.trail.len());
        let ok = self.enqueue(l);
        debug_assert!(ok, "decision on assigned variable");
    }

    fn backtrack(&mut self) -> Option<Lit> {
        let lim = self.trail_lim.pop()?;
        let decision = self.trail[lim];
        let was = self.assign[decision.0 as usize].expect("decision assigned");
        while self.trail.len() > lim {
            let v = self.trail.pop().expect("trail non-empty");
            self.assign[v.0 as usize] = None;
        }
        Some(Lit::with_sign(decision, !was))
    }

    /// Solves the formula; `max_decisions` bounds the search.
    pub fn solve(&mut self, max_decisions: usize) -> SatResult {
        if self.empty_clause {
            return SatResult::Unsat;
        }
        // Top-level propagation of unit clauses.
        for ci in 0..self.clauses.len() {
            if self.clauses[ci].len() == 1 {
                let l = self.clauses[ci][0];
                if !self.enqueue(l) {
                    return SatResult::Unsat;
                }
            }
        }
        if !self.propagate_from(0) {
            return SatResult::Unsat;
        }
        let mut decisions = 0usize;
        loop {
            // Pick the first unassigned variable.
            let next = (0..self.assign.len()).find(|&i| self.assign[i].is_none());
            let Some(i) = next else {
                return SatResult::Sat;
            };
            if decisions >= max_decisions {
                return SatResult::Unknown;
            }
            decisions += 1;
            let mut lit = Lit::neg(Var(i as u32));
            loop {
                self.decide(lit);
                let from = *self.trail_lim.last().expect("just pushed");
                if self.propagate_from(from) {
                    break;
                }
                // Conflict: flip the most recent decision not yet flipped.
                // We track flips by re-deciding the complement; since this
                // simple solver has no learned clauses, we encode "already
                // flipped" by whether backtrack returns the complement of
                // a first-phase (negative) decision.
                let mut flipped = None;
                while let Some(retry) = self.backtrack() {
                    if retry.is_pos() {
                        flipped = Some(retry);
                        break;
                    }
                }
                match flipped {
                    Some(l) => lit = l,
                    None => return SatResult::Unsat,
                }
            }
        }
    }

    fn propagate_from(&mut self, mut from: usize) -> bool {
        // Like `propagate`, but starting at an explicit trail index.
        while from < self.trail.len() {
            let v = self.trail[from];
            from += 1;
            let assigned_true = self.assign[v.0 as usize].expect("on trail");
            let falsified = Lit::with_sign(v, !assigned_true);
            let watch = self.occurs[falsified.code as usize].clone();
            for ci in watch {
                let clause = &self.clauses[ci as usize];
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for &l in clause {
                    match self.lit_value(l) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            unassigned_count += 1;
                            if unassigned.is_none() {
                                unassigned = Some(l);
                            }
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match (unassigned_count, unassigned) {
                    (0, _) => return false,
                    (1, Some(l)) if !self.enqueue(l) => {
                        return false;
                    }
                    _ => {}
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: &Var, sign: bool) -> Lit {
        Lit::with_sign(*v, sign)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        assert_eq!(s.solve(1000), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));

        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        s.add_clause([Lit::neg(a)]);
        assert_eq!(s.solve(1000), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        s.add_clause(std::iter::empty());
        assert_eq!(s.solve(1000), SatResult::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a), Lit::neg(a)]);
        assert_eq!(s.solve(1000), SatResult::Sat);
    }

    #[test]
    fn xor_chain_has_model() {
        // (a xor b) and (b xor c) encoded in CNF; must be satisfiable.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        for (x, y) in [(&a, &b), (&b, &c)] {
            s.add_clause([lit(x, true), lit(y, true)]);
            s.add_clause([lit(x, false), lit(y, false)]);
        }
        assert_eq!(s.solve(1000), SatResult::Sat);
        assert_ne!(s.value(a), s.value(b));
        assert_ne!(s.value(b), s.value(c));
    }

    #[test]
    fn pigeonhole_two_in_one_is_unsat() {
        // Two pigeons, one hole: p1h1, p2h1, not both.
        let mut s = Solver::new();
        let p1 = s.new_var();
        let p2 = s.new_var();
        s.add_clause([Lit::pos(p1)]);
        s.add_clause([Lit::pos(p2)]);
        s.add_clause([Lit::neg(p1), Lit::neg(p2)]);
        assert_eq!(s.solve(1000), SatResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_is_unsat() {
        // PHP(3,2): each pigeon in some hole, no two share a hole.
        let mut s = Solver::new();
        let mut x = [[Var(0); 2]; 3];
        for p in 0..3 {
            for h in 0..2 {
                x[p][h] = s.new_var();
            }
        }
        for p in 0..3 {
            s.add_clause([Lit::pos(x[p][0]), Lit::pos(x[p][1])]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause([Lit::neg(x[p1][h]), Lit::neg(x[p2][h])]);
                }
            }
        }
        assert_eq!(s.solve(100_000), SatResult::Unsat);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A satisfiable formula too wide for zero decisions (after unit
        // propagation nothing is forced).
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve(0), SatResult::Unknown);
    }

    #[test]
    fn random_3sat_instances_agree_with_bruteforce() {
        let mut seed = 0xdead_beefu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let n = 6;
            let m = 16;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..m {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    cl.push(((rnd() % n as u64) as usize, rnd() & 1 == 1));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for model in 0..(1u32 << n) {
                for cl in &clauses {
                    let ok = cl.iter().any(|&(v, pos)| ((model >> v) & 1 == 1) == pos);
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // Solver.
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            for cl in &clauses {
                s.add_clause(cl.iter().map(|&(v, pos)| Lit::with_sign(vars[v], pos)));
            }
            let got = s.solve(1_000_000);
            assert_eq!(
                got,
                if brute_sat {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                },
                "solver disagrees with brute force on {clauses:?}"
            );
            if got == SatResult::Sat {
                for cl in &clauses {
                    let ok = cl.iter().any(|&(v, pos)| s.value(vars[v]) == Some(pos));
                    assert!(ok, "model does not satisfy {cl:?}");
                }
            }
        }
    }
}
