//! Sequential test-sequence generation (the paper's `T_0`).
//!
//! The paper takes `T_0` from STRATEGATE \[10\] (ISCAS-89) or PROPTEST \[12\]
//! (ITC-99), both closed-source simulation-based sequential ATPG tools, and
//! also evaluates plain random sequences of length 1000 (Table 5). This
//! module provides three substitutes with the same interface contract —
//! a primary-input sequence applied from the unknown initial state, no scan:
//!
//! - [`random_t0`] — uniform random vectors (the Table 5 configuration);
//! - [`directed_t0`] — STRATEGATE-style greedy simulation-based search:
//!   each step appends the candidate vector that newly detects the most
//!   target faults (with a cheap activity tie-break), tracked by an
//!   incremental parallel-fault simulator;
//! - [`property_t0`] — PROPTEST-style burst generation: random bursts are
//!   kept only when they detect new faults, otherwise rolled back.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use atspeed_circuit::{CompiledCircuit, Netlist};
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{
    stats, CompiledSim, EngineKind, FusedSim, Overrides, Sequence, SimConfig, V3, W3,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a uniform random binary sequence of `len` vectors.
pub fn random_t0(nl: &Netlist, len: usize, seed: u64) -> Sequence {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            (0..nl.num_pis())
                .map(|_| V3::from_bool(rng.gen()))
                .collect()
        })
        .collect()
}

/// Configuration for [`directed_t0`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectedConfig {
    /// Hard length cap for the sequence.
    pub max_len: usize,
    /// Candidate vectors evaluated per step.
    pub candidates: usize,
    /// Stop after this many consecutive detection-free steps.
    pub plateau_limit: usize,
    /// Fault-group sample size used to score candidates (the chosen vector
    /// is still applied to every group).
    pub sample_groups: usize,
    /// RNG seed.
    pub seed: u64,
    /// Threading for candidate scoring; scoring is side-effect-free, so
    /// the selected vectors are identical at any thread count.
    pub sim: SimConfig,
}

impl Default for DirectedConfig {
    fn default() -> Self {
        DirectedConfig {
            max_len: 1024,
            candidates: 8,
            plateau_limit: 40,
            sample_groups: 8,
            seed: 2,
            sim: SimConfig::default(),
        }
    }
}

/// Configuration for [`property_t0`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropertyConfig {
    /// Vectors per burst.
    pub burst: usize,
    /// Hard length cap for the sequence.
    pub max_len: usize,
    /// Stop after this many consecutive rejected bursts.
    pub stale_bursts: usize,
    /// RNG seed.
    pub seed: u64,
    /// Evaluation engine for the incremental simulator (burst generation is
    /// single-threaded; only `sim.engine` matters here).
    pub sim: SimConfig,
}

impl Default for PropertyConfig {
    fn default() -> Self {
        PropertyConfig {
            burst: 16,
            max_len: 1024,
            stale_bursts: 12,
            seed: 3,
            sim: SimConfig::default(),
        }
    }
}

/// Incremental parallel-fault sequential simulator: keeps per-fault machine
/// states across appended vectors so that candidate vectors can be scored
/// and sequences extended one step at a time.
///
/// Observation is primary outputs only — `T_0` is applied without scan, so
/// this measures the paper's `F_0`-style detection.
#[derive(Debug)]
pub struct IncrementalSim<'a> {
    nl: &'a Netlist,
    groups: Vec<Group>,
    vals: Vec<W3>,
    total_detected: usize,
    /// Present under [`EngineKind::WideFused`]: detection reads only PO
    /// fan-in and flip-flop D nets, which are cone roots, so the fused
    /// kernel's stale-interior contract is safe here. [`EngineKind::Wide`]
    /// maps to scalar — the 64 word slots already hold faulty machines, so
    /// there is no pattern dimension left to widen.
    fused: Option<FusedSim<'a>>,
}

#[derive(Debug)]
struct Group {
    ov: Overrides,
    state: Vec<W3>,
    faults: Vec<FaultId>,
    active: u64,
    detected: u64,
}

impl<'a> IncrementalSim<'a> {
    /// Builds groups of up to 63 faulty machines over `targets`, starting
    /// from `init` (use all-X when no scan-in precedes the sequence).
    pub fn new_with_state(
        nl: &'a Netlist,
        universe: &FaultUniverse,
        targets: &[FaultId],
        init: &[V3],
    ) -> Self {
        let mut sim = Self::new(nl, universe, targets);
        sim.load_state(init);
        sim
    }

    /// Overwrites every machine's flip-flop state with `state`, modeling a
    /// scan-in (all machines receive the same scanned value; stuck-at
    /// effects re-apply at the next evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `state` does not have one value per flip-flop.
    pub fn load_state(&mut self, state: &[V3]) {
        assert_eq!(state.len(), self.nl.num_ffs(), "state width mismatch");
        for g in &mut self.groups {
            for (f, w) in g.state.iter_mut().enumerate() {
                *w = W3::broadcast(state[f]);
            }
        }
    }

    /// Observes the current flip-flop state of every machine (modeling a
    /// scan-out) and returns the number of newly detected faults.
    pub fn scan_observe(&mut self) -> usize {
        let mut newly = 0usize;
        for g in &mut self.groups {
            let mut sd = 0u64;
            for w in &g.state {
                match w.get(0) {
                    V3::One => sd |= w.zero,
                    V3::Zero => sd |= w.one,
                    V3::X => {}
                }
            }
            let fresh = sd & g.active & !g.detected;
            g.detected |= fresh;
            newly += fresh.count_ones() as usize;
        }
        self.total_detected += newly;
        newly
    }

    /// The fault-free (good machine) flip-flop state.
    pub fn good_state(&self) -> Vec<V3> {
        match self.groups.first() {
            Some(g) => g.state.iter().map(|w| w.get(0)).collect(),
            None => vec![V3::X; self.nl.num_ffs()],
        }
    }

    /// Number of tracked faults.
    pub fn num_targets(&self) -> usize {
        self.groups.iter().map(|g| g.faults.len()).sum()
    }

    /// Builds groups of up to 63 faulty machines over `targets`, all in the
    /// unknown initial state.
    pub fn new(nl: &'a Netlist, universe: &FaultUniverse, targets: &[FaultId]) -> Self {
        Self::with_engine(nl, universe, targets, EngineKind::Scalar)
    }

    /// [`IncrementalSim::new`] with an explicit evaluation engine (see the
    /// `fused` field for what each [`EngineKind`] means here).
    pub fn with_engine(
        nl: &'a Netlist,
        universe: &FaultUniverse,
        targets: &[FaultId],
        engine: EngineKind,
    ) -> Self {
        let groups = targets
            .chunks(63)
            .map(|chunk| {
                let mut ov = Overrides::new(nl);
                for (k, &fid) in chunk.iter().enumerate() {
                    ov.add(universe.fault(fid), 1u64 << (k + 1));
                }
                let active = if chunk.len() == 63 {
                    !1u64
                } else {
                    ((1u64 << chunk.len()) - 1) << 1
                };
                Group {
                    ov,
                    state: vec![W3::ALL_X; nl.num_ffs()],
                    faults: chunk.to_vec(),
                    active,
                    detected: 0,
                }
            })
            .collect();
        IncrementalSim {
            nl,
            groups,
            vals: vec![W3::ALL_X; nl.num_nets()],
            total_detected: 0,
            fused: (engine == EngineKind::WideFused)
                .then(|| FusedSim::new(nl.compiled(), nl.fused())),
        }
    }

    /// Total faults detected so far (primary outputs only).
    pub fn total_detected(&self) -> usize {
        self.total_detected
    }

    /// Whether every tracked fault has been detected.
    pub fn all_detected(&self) -> bool {
        self.groups.iter().all(|g| g.detected == g.active)
    }

    /// The detected faults, in group order.
    pub fn detected_faults(&self) -> Vec<FaultId> {
        let mut out = Vec::new();
        for g in &self.groups {
            for (k, &fid) in g.faults.iter().enumerate() {
                if g.detected & (1u64 << (k + 1)) != 0 {
                    out.push(fid);
                }
            }
        }
        out
    }

    /// Applies `vector` to every machine, committing states; returns the
    /// number of newly detected faults.
    pub fn apply(&mut self, vector: &[V3]) -> usize {
        let mut newly = 0usize;
        let cc = self.nl.compiled();
        let sim = CompiledSim::new(cc);
        for gi in 0..self.groups.len() {
            let (po_mask, next) = {
                let g = &self.groups[gi];
                seed(cc, &mut self.vals, vector, &g.state);
                match &self.fused {
                    Some(f) => f.eval_with_slice(&mut self.vals, &g.ov),
                    None => sim.eval_with_slice(&mut self.vals, &g.ov),
                }
                let po_mask = po_diff(cc, &self.vals, &self.groups[gi].ov);
                let next: Vec<W3> = capture(cc, &self.vals, &self.groups[gi].ov);
                (po_mask, next)
            };
            let g = &mut self.groups[gi];
            let fresh = po_mask & g.active & !g.detected;
            g.detected |= fresh;
            g.state = next;
            newly += fresh.count_ones() as usize;
        }
        self.total_detected += newly;
        newly
    }

    /// Scores `vector` without committing: `(new detections, state
    /// activity)` over the first `sample` still-live groups.
    pub fn score(&mut self, vector: &[V3], sample: usize) -> (usize, usize) {
        let mut vals = std::mem::take(&mut self.vals);
        let r = self.score_in(&mut vals, vector, sample);
        self.vals = vals;
        r
    }

    /// [`IncrementalSim::score`] with caller-provided scratch: evaluation
    /// rewrites every net read by scoring (all nets under the scalar
    /// engine, sources and cone roots under the fused one) from the seeded
    /// inputs, so any scratch of `num_nets` width gives the same score.
    /// Committing nothing and taking `&self`, this is shareable across
    /// scoring threads.
    pub fn score_in(&self, vals: &mut [W3], vector: &[V3], sample: usize) -> (usize, usize) {
        let cc = self.nl.compiled();
        let sim = CompiledSim::new(cc);
        let mut detections = 0usize;
        let mut activity = 0usize;
        let mut scored = 0usize;
        for g in &self.groups {
            if scored >= sample {
                break;
            }
            if g.detected == g.active {
                continue;
            }
            scored += 1;
            seed(cc, vals, vector, &g.state);
            match &self.fused {
                Some(f) => f.eval_with_slice(vals, &g.ov),
                None => sim.eval_with_slice(vals, &g.ov),
            }
            let po_mask = po_diff(cc, vals, &g.ov);
            detections += (po_mask & g.active & !g.detected).count_ones() as usize;
            // Activity: faulty machines whose next state newly differs.
            let next = capture(cc, vals, &g.ov);
            let mut sd = 0u64;
            for w in &next {
                match w.get(0) {
                    V3::One => sd |= w.zero,
                    V3::Zero => sd |= w.one,
                    V3::X => {}
                }
            }
            activity += (sd & g.active & !g.detected).count_ones() as usize;
        }
        (detections, activity)
    }

    /// Scores every candidate in `cands`, sharding candidates across
    /// `sim.threads` workers (each with its own net scratch). Scoring is
    /// read-only, so the result vector is identical at any thread count.
    pub fn score_batch(
        &self,
        cands: &[Vec<V3>],
        sample: usize,
        sim: SimConfig,
    ) -> Vec<(usize, usize)> {
        let threads = sim.effective_threads(cands.len());
        if threads <= 1 {
            let mut vals = vec![W3::ALL_X; self.nl.num_nets()];
            return cands
                .iter()
                .map(|c| self.score_in(&mut vals, c, sample))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, usize)>> = Mutex::new(vec![(0, 0); cands.len()]);
        // Workers join the spawning thread's stats scope; the enter guard
        // flushes their batched partition tallies once, on exit.
        let h = stats::handle();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let _g = h.enter();
                    let mut vals = vec![W3::ALL_X; self.nl.num_nets()];
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= cands.len() {
                            break;
                        }
                        let _sp = atspeed_trace::span("tgen.score.claim");
                        let started = std::time::Instant::now();
                        let r = self.score_in(&mut vals, &cands[k], sample);
                        stats::record_partition(started.elapsed());
                        results.lock().unwrap_or_else(|e| e.into_inner())[k] = r;
                    }
                });
            }
        });
        results.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

fn seed(cc: &CompiledCircuit, vals: &mut [W3], vector: &[V3], state: &[W3]) {
    debug_assert_eq!(vector.len(), cc.pis().len());
    for (i, &pi) in cc.pis().iter().enumerate() {
        vals[pi.index()] = W3::broadcast(vector[i]);
    }
    for (f, &q) in cc.ff_qs().iter().enumerate() {
        vals[q.index()] = state[f];
    }
}

fn po_diff(cc: &CompiledCircuit, vals: &[W3], ov: &Overrides) -> u64 {
    let mut mask = 0u64;
    for (k, &po) in cc.pos().iter().enumerate() {
        let w = ov.apply_po_pin(atspeed_circuit::PoId::from_index(k), vals[po.index()]);
        match w.get(0) {
            V3::One => mask |= w.zero,
            V3::Zero => mask |= w.one,
            V3::X => {}
        }
    }
    mask
}

fn capture(cc: &CompiledCircuit, vals: &[W3], ov: &Overrides) -> Vec<W3> {
    cc.ff_ds()
        .iter()
        .enumerate()
        .map(|(f, &d)| ov.apply_ff_pin(atspeed_circuit::FfId::from_index(f), vals[d.index()]))
        .collect()
}

/// STRATEGATE-style directed generation: greedy candidate selection by
/// simulated fault detections, with a state-activity tie-break and a
/// plateau cutoff.
pub fn directed_t0(
    nl: &Netlist,
    universe: &FaultUniverse,
    targets: &[FaultId],
    cfg: &DirectedConfig,
) -> Sequence {
    let _sp = atspeed_trace::span("t0.directed");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut inc = IncrementalSim::with_engine(nl, universe, targets, cfg.sim.engine);
    let mut seq = Sequence::new();
    let mut plateau = 0usize;
    let steps = atspeed_trace::metrics::global().counter("tgen/directed_steps");
    while seq.len() < cfg.max_len && plateau < cfg.plateau_limit && !inc.all_detected() {
        steps.inc();
        let cands: Vec<Vec<V3>> = (0..cfg.candidates.max(1))
            .map(|_| {
                (0..nl.num_pis())
                    .map(|_| V3::from_bool(rng.gen()))
                    .collect()
            })
            .collect();
        let scores = inc.score_batch(&cands, cfg.sample_groups.max(1), cfg.sim);
        let chosen = pick_best(cands, &scores);
        let newly = inc.apply(&chosen);
        seq.push(chosen);
        plateau = if newly == 0 { plateau + 1 } else { 0 };
    }
    seq
}

/// The first candidate with lexicographically maximal `(detections,
/// activity)` — the same winner the historical strictly-better scan picked.
pub fn pick_best(cands: Vec<Vec<V3>>, scores: &[(usize, usize)]) -> Vec<V3> {
    assert!(!cands.is_empty(), "at least one candidate");
    let mut k = 0;
    for i in 1..scores.len() {
        if scores[i] > scores[k] {
            k = i;
        }
    }
    cands.into_iter().nth(k).expect("index in range")
}

/// PROPTEST-style burst generation: append a random burst only when it
/// detects at least one new fault, otherwise roll the machine states back.
pub fn property_t0(
    nl: &Netlist,
    universe: &FaultUniverse,
    targets: &[FaultId],
    cfg: &PropertyConfig,
) -> Sequence {
    let _sp = atspeed_trace::span("t0.property");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut inc = IncrementalSim::with_engine(nl, universe, targets, cfg.sim.engine);
    let mut seq = Sequence::new();
    let mut stale = 0usize;
    let m = atspeed_trace::metrics::global();
    let kept = m.counter("tgen/property_bursts_kept");
    let rolled_back = m.counter("tgen/property_bursts_rolled_back");
    while seq.len() < cfg.max_len && stale < cfg.stale_bursts && !inc.all_detected() {
        let burst_len = cfg.burst.max(1).min(cfg.max_len - seq.len());
        let burst: Vec<Vec<V3>> = (0..burst_len)
            .map(|_| {
                (0..nl.num_pis())
                    .map(|_| V3::from_bool(rng.gen()))
                    .collect()
            })
            .collect();
        let snapshot: Vec<(Vec<W3>, u64, usize)> = inc
            .groups
            .iter()
            .map(|g| (g.state.clone(), g.detected, 0))
            .collect();
        let total_before = inc.total_detected;
        let mut newly = 0usize;
        for v in &burst {
            newly += inc.apply(v);
        }
        if newly == 0 {
            // Roll back: the burst added nothing.
            for (g, (state, detected, _)) in inc.groups.iter_mut().zip(snapshot) {
                g.state = state;
                g.detected = detected;
            }
            inc.total_detected = total_before;
            stale += 1;
            rolled_back.inc();
        } else {
            for v in burst {
                seq.push(v);
            }
            stale = 0;
            kept.inc();
        }
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_sim::SeqFaultSim;

    fn count_detected(nl: &Netlist, u: &FaultUniverse, seq: &Sequence) -> usize {
        let mut fsim = SeqFaultSim::new(nl);
        let init = vec![V3::X; nl.num_ffs()];
        fsim.detect(&init, seq, u.representatives(), u, false)
            .iter()
            .filter(|&&d| d)
            .count()
    }

    #[test]
    fn random_t0_has_requested_shape() {
        let nl = s27();
        let seq = random_t0(&nl, 100, 7);
        assert_eq!(seq.len(), 100);
        assert_eq!(seq.vector(0).len(), 4);
        assert!(seq.iter().all(|v| v.iter().all(|x| x.is_known())));
    }

    #[test]
    fn random_t0_is_deterministic() {
        let nl = s27();
        assert_eq!(random_t0(&nl, 50, 7), random_t0(&nl, 50, 7));
        assert_ne!(random_t0(&nl, 50, 7), random_t0(&nl, 50, 8));
    }

    #[test]
    fn incremental_sim_matches_batch_fault_sim() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let seq = random_t0(&nl, 60, 11);
        let mut inc = IncrementalSim::new(&nl, &u, &targets);
        for t in 0..seq.len() {
            inc.apply(seq.vector(t));
        }
        let batch = count_detected(&nl, &u, &seq);
        assert_eq!(inc.total_detected(), batch);
    }

    /// The fused engine only guarantees PO fan-in and FF-D nets, which is
    /// exactly what detection and scoring read — results must be identical.
    #[test]
    fn incremental_sim_engines_agree() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let seq = random_t0(&nl, 60, 11);
        for engine in EngineKind::ALL {
            let mut scalar = IncrementalSim::new(&nl, &u, &targets);
            let mut other = IncrementalSim::with_engine(&nl, &u, &targets, engine);
            for t in 0..seq.len() {
                assert_eq!(
                    scalar.score(seq.vector(t), usize::MAX),
                    other.score(seq.vector(t), usize::MAX),
                    "{engine} score diverges at step {t}"
                );
                assert_eq!(
                    scalar.apply(seq.vector(t)),
                    other.apply(seq.vector(t)),
                    "{engine} apply diverges at step {t}"
                );
            }
            assert_eq!(scalar.detected_faults(), other.detected_faults());
        }
    }

    #[test]
    fn directed_beats_or_matches_random_at_same_length() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let cfg = DirectedConfig {
            max_len: 48,
            ..DirectedConfig::default()
        };
        let directed = directed_t0(&nl, &u, &targets, &cfg);
        let random = random_t0(&nl, directed.len().max(1), cfg.seed);
        let d = count_detected(&nl, &u, &directed);
        let r = count_detected(&nl, &u, &random);
        assert!(
            d >= r,
            "directed ({d}) should not lose to random ({r}) at equal length"
        );
    }

    #[test]
    fn property_bursts_only_keep_productive_vectors() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let cfg = PropertyConfig {
            burst: 8,
            max_len: 128,
            stale_bursts: 5,
            seed: 13,
            ..PropertyConfig::default()
        };
        let seq = property_t0(&nl, &u, &targets, &cfg);
        assert!(seq.len() <= 128);
        assert_eq!(seq.len() % 8, 0, "sequence grows burst-wise");
        if !seq.is_empty() {
            assert!(count_detected(&nl, &u, &seq) > 0);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let cfg = DirectedConfig {
            max_len: 32,
            ..DirectedConfig::default()
        };
        let a = directed_t0(&nl, &u, &targets, &cfg);
        let b = directed_t0(&nl, &u, &targets, &cfg);
        assert_eq!(a, b);
        let pc = PropertyConfig::default();
        assert_eq!(
            property_t0(&nl, &u, &targets, &pc),
            property_t0(&nl, &u, &targets, &pc)
        );
    }

    #[test]
    fn score_does_not_commit_state() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let mut inc = IncrementalSim::new(&nl, &u, &targets);
        let v: Vec<V3> = vec![V3::One, V3::Zero, V3::One, V3::Zero];
        let before = inc.total_detected();
        let _ = inc.score(&v, 4);
        assert_eq!(inc.total_detected(), before);
        // Applying after scoring gives the same result as applying fresh.
        let mut inc2 = IncrementalSim::new(&nl, &u, &targets);
        assert_eq!(inc.apply(&v), inc2.apply(&v));
    }
}
