//! Static compaction of test sequences by vector omission.
//!
//! This is the sequence-compaction primitive the paper's Phase 2 uses (it
//! cites \[8\]): omit as many vectors as possible from a sequence without
//! losing the detection of any target fault. Every candidate omission is
//! verified by fault simulation of the shortened sequence.
//!
//! Two techniques keep this affordable on long sequences:
//!
//! - **Chunked sweeps** (delta-debugging style): large blocks are tried
//!   before single vectors, so highly compactable sequences collapse in
//!   `O(log L)` rounds.
//! - **Prefix invariance**: every sweep runs strictly *descending* through
//!   positions, so the prefix below the current attempt is never modified
//!   within a sweep. A fault whose primary-output detection time (from a
//!   detection profile computed at sweep start) lies strictly inside that
//!   prefix is guaranteed to stay detected, and only the remaining faults —
//!   late detections and faults observed solely at scan-out — need to be
//!   re-simulated per attempt. This cuts most attempts from the full fault
//!   set to a handful of parallel-fault groups.
//!
//! # Speculative parallel sweeps
//!
//! With `cfg.sim.threads > 1` the sweep turns into a speculative engine:
//! workers each own a [`SeqFaultSim`] (engine and scratch reused across
//! claims) and concurrently fault-simulate candidate omissions at several
//! descending positions ahead of a *commit point*. Results are committed
//! in strictly descending position order, each against the exact sequence
//! the serial sweep would hold at that position. Every accepted removal
//! bumps an epoch counter; speculations computed against an older epoch
//! are discarded (counted in [`OmissionStats::wasted`]) and recomputed, so
//! the accept/reject decisions — and therefore the compacted sequence and
//! every stat except `wasted` — are bit-for-bit identical to the serial
//! sweep at any thread count. The per-sweep detection profile is computed
//! once (sharded over the same workers via [`ParallelFsim::profiles`]) and
//! shared read-only by all speculations, and `attempt_budget` is accounted
//! at the commit point exactly as the serial loop accounts it.

use std::sync::{Arc, Condvar, Mutex};

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::fsim_seq::DetectionProfile;
use atspeed_sim::{stats as sim_stats, ParallelFsim, SeqFaultSim, Sequence, SimConfig, State};

/// Configuration for [`omit_vectors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmissionConfig {
    /// Single-vector sweeps after the chunked rounds. `0` runs the chunked
    /// rounds only (when `chunked` is set; otherwise nothing at all).
    pub max_passes: usize,
    /// Whether to run the chunked (delta-debugging style) rounds first.
    pub chunked: bool,
    /// Upper bound on fault-simulation attempts (profile simulations at
    /// sweep starts count too).
    pub attempt_budget: usize,
    /// Threading for the omission sweeps. The default (1 thread)
    /// reproduces the single-threaded sweep bit-for-bit; more threads
    /// speculate on upcoming omission candidates with identical results.
    pub sim: SimConfig,
    /// Memory budget for per-sweep detection profiles: each fault's
    /// state-diff bitmap keeps at most this many 64-bit words (cycles
    /// `0..64 * profile_state_words`). Bits past the budget are dropped
    /// and counted in [`OmissionStats::truncated_profile_bits`]; dropping
    /// only *under*-claims detection, so the sweep stays sound (it keeps
    /// vectors it might otherwise have removed, never loses coverage).
    /// `usize::MAX` (the default) keeps every bit.
    pub profile_state_words: usize,
}

impl Default for OmissionConfig {
    fn default() -> Self {
        OmissionConfig {
            max_passes: 2,
            chunked: true,
            attempt_budget: usize::MAX,
            sim: SimConfig::default(),
            profile_state_words: usize::MAX,
        }
    }
}

/// Statistics returned by [`omit_vectors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OmissionStats {
    /// Fault-simulation attempts performed (including per-sweep profiling).
    pub attempts: usize,
    /// Vectors removed.
    pub removed: usize,
    /// Sweeps run (each sweep simulates one detection profile).
    pub sweeps: usize,
    /// Attempts whose removal was accepted.
    pub accepted: usize,
    /// Speculative simulations discarded because an earlier accepted
    /// removal invalidated their snapshot. Always `0` on the serial path;
    /// the only field allowed to vary with the thread count.
    pub wasted: usize,
    /// State-diff bits dropped from sweep profiles by
    /// [`OmissionConfig::profile_state_words`]. The cap applies per fault
    /// by absolute cycle index, so this count is deterministic — identical
    /// across thread counts and partitionings, like every field but
    /// `wasted`.
    pub truncated_profile_bits: u64,
}

/// Omits vectors from `seq` while preserving detection of every fault in
/// `targets` (fault simulation from `init`, observing primary outputs every
/// cycle and, when `observe_final_state` is set, the state after the last
/// cycle).
///
/// Returns the shortened sequence and statistics. The result always detects
/// every target fault that the input sequence detects; callers normally
/// pass exactly the detected set (the paper's `F_SO`). The result is
/// independent of `cfg.sim.threads`.
pub fn omit_vectors(
    nl: &Netlist,
    universe: &FaultUniverse,
    init: &State,
    seq: &Sequence,
    targets: &[FaultId],
    observe_final_state: bool,
    cfg: OmissionConfig,
) -> (Sequence, OmissionStats) {
    let mut stats = OmissionStats::default();
    if seq.len() <= 1 || targets.is_empty() {
        return (seq.clone(), stats);
    }
    let _sp = atspeed_trace::span("omission.omit_vectors");
    let started = std::time::Instant::now();

    let schedule = chunk_schedule(seq.len(), cfg);
    let threads = cfg.sim.effective_threads(seq.len());
    let out = if threads <= 1 {
        omit_serial(
            nl,
            universe,
            init,
            seq,
            targets,
            observe_final_state,
            cfg,
            &schedule,
            &mut stats,
        )
    } else {
        omit_parallel(
            nl,
            universe,
            init,
            seq,
            targets,
            observe_final_state,
            cfg,
            &schedule,
            threads,
            &mut stats,
        )
    };

    let m = atspeed_trace::metrics::global();
    m.counter("omission/attempts").add(stats.attempts as u64);
    m.counter("omission/accepted").add(stats.accepted as u64);
    m.counter("omission/removed").add(stats.removed as u64);
    m.counter("omission/wasted").add(stats.wasted as u64);
    m.counter("omission/truncated_profile_bits")
        .add(stats.truncated_profile_bits);
    m.counter("omission/wall_us")
        .add(started.elapsed().as_micros() as u64);
    (out, stats)
}

/// A divergence between the serial omission sweep and the speculative
/// parallel sweep at some thread count, found by
/// [`check_omission_differential`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmissionDivergence {
    /// Thread count whose result disagreed with the serial reference.
    pub threads: usize,
    /// What disagreed, human-readable.
    pub detail: String,
}

impl std::fmt::Display for OmissionDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "speculative omission at {} threads diverged from serial: {}",
            self.threads, self.detail
        )
    }
}

impl std::error::Error for OmissionDivergence {}

/// Runs [`omit_vectors`] serially and again at each thread count in
/// `threads`, holding the speculative engine to its promise: the compacted
/// sequence and every stat except `wasted` must be bit-for-bit identical to
/// the serial sweep.
///
/// Returns the serial reference result on success. This is the
/// omission-differential entry point of the `atspeed-verify` fuzzer.
///
/// # Errors
///
/// Returns the first [`OmissionDivergence`] found.
#[allow(clippy::too_many_arguments)]
pub fn check_omission_differential(
    nl: &Netlist,
    universe: &FaultUniverse,
    init: &State,
    seq: &Sequence,
    targets: &[FaultId],
    observe_final_state: bool,
    cfg: OmissionConfig,
    threads: &[usize],
) -> Result<(Sequence, OmissionStats), OmissionDivergence> {
    let mut serial_cfg = cfg;
    serial_cfg.sim = SimConfig {
        threads: 1,
        ..cfg.sim
    };
    let (ref_seq, ref_stats) = omit_vectors(
        nl,
        universe,
        init,
        seq,
        targets,
        observe_final_state,
        serial_cfg,
    );
    for &t in threads {
        if t <= 1 {
            continue;
        }
        let mut par_cfg = cfg;
        par_cfg.sim = SimConfig {
            threads: t,
            ..cfg.sim
        };
        let (par_seq, par_stats) = omit_vectors(
            nl,
            universe,
            init,
            seq,
            targets,
            observe_final_state,
            par_cfg,
        );
        if par_seq != ref_seq {
            return Err(OmissionDivergence {
                threads: t,
                detail: format!(
                    "sequences differ: serial keeps {} vectors, parallel keeps {}",
                    ref_seq.len(),
                    par_seq.len()
                ),
            });
        }
        let normalize = |s: OmissionStats| OmissionStats { wasted: 0, ..s };
        if normalize(par_stats) != normalize(ref_stats) {
            return Err(OmissionDivergence {
                threads: t,
                detail: format!(
                    "stats differ (wasted excluded): serial {:?}, parallel {:?}",
                    normalize(ref_stats),
                    normalize(par_stats)
                ),
            });
        }
    }
    Ok((ref_seq, ref_stats))
}

/// Sweep schedule: halving chunk sizes down to 2, then `max_passes`
/// single-vector passes. `max_passes: 0` schedules no single passes.
fn chunk_schedule(len: usize, cfg: OmissionConfig) -> Vec<usize> {
    let mut chunks: Vec<usize> = Vec::new();
    if cfg.chunked {
        let mut c = len / 2;
        while c >= 2 {
            chunks.push(c);
            c /= 2;
        }
    }
    chunks.extend(std::iter::repeat_n(1, cfg.max_passes));
    chunks
}

/// The fixed descending position list of one sweep: `len - chunk` stepping
/// down by `chunk` to 0 inclusive. Computed once at sweep start; removals
/// accepted mid-sweep change only each later attempt's `end` clipping and
/// feasibility, never the positions themselves.
fn positions(len: usize, chunk: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(len / chunk.max(1) + 2);
    let mut t = len.saturating_sub(chunk);
    loop {
        out.push(t);
        if t == 0 {
            break;
        }
        t = t.saturating_sub(chunk);
    }
    out
}

/// The sweep-start detection profile, ordered for suffix lookup: the check
/// set of an attempt at position `t` is the suffix of faults whose
/// `po_detect` key is `>= t`. A pure function of `t` and the sweep-start
/// profile — independent of which removals the sweep later accepts — so it
/// is shared read-only by every (speculative or serial) attempt.
struct SweepPlan {
    keys: Vec<u32>,
    ordered: Vec<FaultId>,
}

impl SweepPlan {
    fn new(targets: &[FaultId], profiles: &[DetectionProfile]) -> Self {
        let mut keyed: Vec<(u32, FaultId)> = targets
            .iter()
            .zip(profiles.iter())
            .map(|(&f, p)| (p.po_detect.unwrap_or(u32::MAX), f))
            .collect();
        keyed.sort_unstable();
        SweepPlan {
            keys: keyed.iter().map(|&(k, _)| k).collect(),
            ordered: keyed.into_iter().map(|(_, f)| f).collect(),
        }
    }

    /// Faults that must be re-simulated for an attempt at position `t`:
    /// everything not safely detected strictly inside the untouched prefix.
    fn check_set(&self, t: usize) -> &[FaultId] {
        let first = self.keys.partition_point(|&k| k < t as u32);
        &self.ordered[first..]
    }
}

/// The window `[t, end)` an attempt at position `t` would remove, and
/// whether removing it is feasible (non-empty, leaves at least one
/// vector). Both depend on the live length when the position is reached.
fn attempt_window(t: usize, chunk: usize, len: usize) -> (usize, bool) {
    let end = (t + chunk).min(len);
    (end, end > t && len - (end - t) >= 1)
}

fn remove_range(seq: &Sequence, start: usize, end: usize) -> Sequence {
    seq.iter()
        .enumerate()
        .filter(|(i, _)| *i < start || *i >= end)
        .map(|(_, v)| v.clone())
        .collect()
}

// ---------------------------------------------------------------------------
// Serial path (the reference semantics).
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn omit_serial(
    nl: &Netlist,
    universe: &FaultUniverse,
    init: &State,
    seq: &Sequence,
    targets: &[FaultId],
    observe_final_state: bool,
    cfg: OmissionConfig,
    schedule: &[usize],
    stats: &mut OmissionStats,
) -> Sequence {
    let mut fsim = SeqFaultSim::new(nl);
    let mut current = seq.clone();
    for &chunk in schedule {
        if stats.attempts >= cfg.attempt_budget || current.len() <= 1 {
            break;
        }
        // The schedule is computed from the original length; clamp against
        // the live sequence so every position of the sweep can host a
        // feasible omission instead of spending the profile attempt on a
        // sweep that cannot remove anything.
        let chunk = chunk.min(current.len() - 1);
        let _sp = atspeed_trace::span("omission.sweep");
        stats.sweeps += 1;
        // Profile the sweep's starting sequence. `po_detect` times anchor
        // the prefix-invariance rule; this simulation counts against the
        // attempt budget.
        stats.attempts += 1;
        let (profiles, truncated) =
            fsim.profiles_bounded(init, &current, targets, universe, cfg.profile_state_words);
        stats.truncated_profile_bits += truncated;
        let plan = SweepPlan::new(targets, &profiles);

        let mut changed = false;
        for &t in &positions(current.len(), chunk) {
            if stats.attempts >= cfg.attempt_budget {
                break;
            }
            let (end, feasible) = attempt_window(t, chunk, current.len());
            if !feasible {
                continue;
            }
            debug_assert!(
                end <= current.len() && current.len() - (end - t) >= 1,
                "attempts must be spent on feasible omissions only"
            );
            let check = plan.check_set(t);
            let candidate = remove_range(&current, t, end);
            stats.attempts += 1;
            let ok = check.is_empty()
                || fsim.detects_all(init, &candidate, check, universe, observe_final_state);
            if ok {
                stats.removed += end - t;
                stats.accepted += 1;
                current = candidate;
                changed = true;
            }
        }
        if chunk == 1 && !changed {
            break;
        }
    }
    current
}

// ---------------------------------------------------------------------------
// Parallel speculative path.
// ---------------------------------------------------------------------------

/// Lifecycle of one sweep position in the speculative engine.
#[derive(Clone)]
enum Slot {
    /// Claimable (initial, or reset after a stale speculation).
    Open,
    /// A worker is simulating it against the sequence of its claim epoch.
    Running,
    /// Simulated against `epoch`. `verdict` is `None` when the position
    /// was infeasible at that epoch, otherwise the accept decision and the
    /// candidate sequence a commit would install.
    Done {
        epoch: u64,
        verdict: Option<(bool, Arc<Sequence>)>,
    },
    /// Past the commit point.
    Spent,
}

/// One sweep's shared state. `epoch` counts accepted removals; a
/// speculation is valid only if the epoch it was computed against is still
/// live when its position reaches the commit point.
struct SweepState {
    id: u64,
    chunk: usize,
    positions: Vec<usize>,
    plan: Arc<SweepPlan>,
    slots: Vec<Slot>,
    seq: Arc<Sequence>,
    epoch: u64,
    commit_idx: usize,
    changed: bool,
    active: bool,
}

/// Coordinator state shared by the driver and the workers.
struct Shared {
    sweep: Option<SweepState>,
    attempts: usize,
    removed: usize,
    accepted: usize,
    wasted: usize,
    budget: usize,
    shutdown: bool,
}

struct Coord {
    state: Mutex<Shared>,
    cv: Condvar,
}

/// A claimed speculation: everything a worker needs away from the lock.
struct Claim {
    sweep_id: u64,
    idx: usize,
    t: usize,
    chunk: usize,
    epoch: u64,
    seq: Arc<Sequence>,
    plan: Arc<SweepPlan>,
}

#[allow(clippy::too_many_arguments)]
fn omit_parallel(
    nl: &Netlist,
    universe: &FaultUniverse,
    init: &State,
    seq: &Sequence,
    targets: &[FaultId],
    observe_final_state: bool,
    cfg: OmissionConfig,
    schedule: &[usize],
    threads: usize,
    stats: &mut OmissionStats,
) -> Sequence {
    let pfsim = ParallelFsim::new(nl, cfg.sim);
    let coord = Coord {
        state: Mutex::new(Shared {
            sweep: None,
            attempts: 0,
            removed: 0,
            accepted: 0,
            wasted: 0,
            budget: cfg.attempt_budget,
            shutdown: false,
        }),
        cv: Condvar::new(),
    };
    // Speculation depth: how many positions past the commit point workers
    // may simulate ahead. Deeper windows hide more latency but waste more
    // work per accepted removal. Long sequences have many positions per
    // sweep and long-running attempts, so scale the depth with sequence
    // length (capped at 8 claims per worker) to keep workers from idling
    // at the commit barrier; short sequences keep the shallow window that
    // bounds wasted speculation.
    let window = (threads * 2).max(4).max((seq.len() / 32).min(threads * 8));
    let mut current = Arc::new(seq.clone());
    let mut sweeps = 0usize;
    let mut truncated = 0u64;

    // Workers inherit the calling thread's stats destination; they persist
    // across every sweep so each engine (and its simulation scratch) is
    // built exactly once.
    let h = sim_stats::handle();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let _g = h.enter();
                worker_loop(nl, universe, init, observe_final_state, &coord, window);
            });
        }

        for &chunk in schedule {
            let spent = lock(&coord.state).attempts;
            if spent >= cfg.attempt_budget || current.len() <= 1 {
                break;
            }
            let chunk = chunk.min(current.len() - 1);
            let _sp = atspeed_trace::span("omission.sweep");
            sweeps += 1;
            // Profile attempt, accounted exactly as the serial driver
            // accounts it; the profile itself is sharded across workers.
            lock(&coord.state).attempts += 1;
            let (profiles, trunc) =
                pfsim.profiles_bounded(init, &current, targets, universe, cfg.profile_state_words);
            truncated += trunc;
            let plan = Arc::new(SweepPlan::new(targets, &profiles));
            let pos = positions(current.len(), chunk);

            let mut st = lock(&coord.state);
            st.sweep = Some(SweepState {
                id: sweeps as u64,
                chunk,
                slots: vec![Slot::Open; pos.len()],
                positions: pos,
                plan,
                seq: current.clone(),
                epoch: 0,
                commit_idx: 0,
                changed: false,
                active: true,
            });
            // The budget may already be exhausted by the profile attempt;
            // try_commit ends the sweep immediately in that case.
            try_commit(&mut st);
            coord.cv.notify_all();
            while st.sweep.as_ref().is_some_and(|sw| sw.active) {
                st = coord.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let sw = st.sweep.take().expect("sweep present until taken");
            drop(st);
            current = sw.seq;
            if chunk == 1 && !sw.changed {
                break;
            }
        }

        let mut st = lock(&coord.state);
        st.shutdown = true;
        coord.cv.notify_all();
    });

    let st = coord.state.into_inner().unwrap_or_else(|e| e.into_inner());
    stats.attempts = st.attempts;
    stats.removed = st.removed;
    stats.accepted = st.accepted;
    stats.wasted = st.wasted;
    stats.sweeps = sweeps;
    stats.truncated_profile_bits = truncated;
    Arc::try_unwrap(current).unwrap_or_else(|arc| (*arc).clone())
}

fn lock<'m>(m: &'m Mutex<Shared>) -> std::sync::MutexGuard<'m, Shared> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(
    nl: &Netlist,
    universe: &FaultUniverse,
    init: &State,
    observe_final_state: bool,
    coord: &Coord,
    window: usize,
) {
    let mut fsim = SeqFaultSim::new(nl);
    let mut guard = lock(&coord.state);
    loop {
        let claim = loop {
            if guard.shutdown {
                return;
            }
            if let Some(c) = try_claim(&mut guard, window) {
                break c;
            }
            guard = coord.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        };
        drop(guard);

        // Simulate outside the lock against the claimed snapshot. If the
        // snapshot's epoch is still live at commit time, this is exactly
        // the candidate the serial sweep would have simulated here.
        let (end, feasible) = attempt_window(claim.t, claim.chunk, claim.seq.len());
        let verdict = if feasible {
            let candidate = remove_range(&claim.seq, claim.t, end);
            let check = claim.plan.check_set(claim.t);
            let _sp = atspeed_trace::span("omission.speculate");
            let ok = check.is_empty()
                || fsim.detects_all(init, &candidate, check, universe, observe_final_state);
            Some((ok, Arc::new(candidate)))
        } else {
            None
        };

        guard = lock(&coord.state);
        let mut notify = report(&mut guard, &claim, verdict);
        notify |= try_commit(&mut guard);
        if notify {
            coord.cv.notify_all();
        }
    }
}

/// Claims the earliest open position within the speculation window.
/// Called with the state lock held.
fn try_claim(st: &mut Shared, window: usize) -> Option<Claim> {
    if st.attempts >= st.budget {
        return None;
    }
    let sw = st.sweep.as_mut()?;
    if !sw.active {
        return None;
    }
    let hi = (sw.commit_idx + window).min(sw.positions.len());
    for idx in sw.commit_idx..hi {
        if matches!(sw.slots[idx], Slot::Open) {
            sw.slots[idx] = Slot::Running;
            return Some(Claim {
                sweep_id: sw.id,
                idx,
                t: sw.positions[idx],
                chunk: sw.chunk,
                epoch: sw.epoch,
                seq: sw.seq.clone(),
                plan: sw.plan.clone(),
            });
        }
    }
    None
}

/// Files a speculation result. Results for a finished sweep, or computed
/// against a superseded epoch, are discarded (and re-opened for a fresh
/// speculation when the position is still pending). Called with the state
/// lock held; returns whether waiters should be notified.
fn report(st: &mut Shared, claim: &Claim, verdict: Option<(bool, Arc<Sequence>)>) -> bool {
    let simmed = verdict.is_some();
    let discard = |st: &mut Shared| {
        if simmed {
            st.wasted += 1;
        }
        false
    };
    let Some(sw) = st.sweep.as_mut() else {
        return discard(st);
    };
    if sw.id != claim.sweep_id || !sw.active {
        return discard(st);
    }
    match sw.slots[claim.idx] {
        Slot::Running => {
            if claim.epoch == sw.epoch {
                sw.slots[claim.idx] = Slot::Done {
                    epoch: claim.epoch,
                    verdict,
                };
            } else {
                // An accepted removal superseded the snapshot mid-flight:
                // reopen so a worker recomputes against the live sequence.
                sw.slots[claim.idx] = Slot::Open;
                discard(st);
            }
            true
        }
        // The commit point skipped past this position (infeasible at the
        // live length) while the speculation ran.
        Slot::Spent => discard(st),
        Slot::Open | Slot::Done { .. } => unreachable!("claimed slot owned by this worker"),
    }
}

/// Advances the commit point: commits `Done` results computed against the
/// live epoch in strictly descending position order, skips infeasible
/// positions without spending attempts, and ends the sweep at the budget
/// or past the last position — the serial loop's accounting, verbatim.
/// Called with the state lock held; returns whether waiters should be
/// notified.
fn try_commit(st: &mut Shared) -> bool {
    let mut notify = false;
    let mut wasted = 0usize;
    let Some(sw) = st.sweep.as_mut() else {
        return false;
    };
    if !sw.active {
        return false;
    }
    loop {
        if sw.commit_idx >= sw.positions.len() || st.attempts >= st.budget {
            sw.active = false;
            notify = true;
            break;
        }
        let t = sw.positions[sw.commit_idx];
        let (end, feasible) = attempt_window(t, sw.chunk, sw.seq.len());
        if !feasible {
            sw.slots[sw.commit_idx] = Slot::Spent;
            sw.commit_idx += 1;
            continue;
        }
        match &sw.slots[sw.commit_idx] {
            Slot::Done { epoch, verdict } if *epoch == sw.epoch => {
                st.attempts += 1;
                let (ok, cand) = verdict.clone().expect(
                    "a speculation at the live epoch saw the live length, hence feasibility",
                );
                if ok {
                    st.removed += end - t;
                    st.accepted += 1;
                    sw.seq = cand;
                    sw.epoch += 1;
                    sw.changed = true;
                    // Eagerly reopen stale speculations so workers redo
                    // them now instead of when the commit point finds them.
                    for slot in sw.slots[sw.commit_idx + 1..].iter_mut() {
                        if matches!(slot, Slot::Done { epoch, .. } if *epoch != sw.epoch) {
                            *slot = Slot::Open;
                            wasted += 1;
                        }
                    }
                }
                sw.slots[sw.commit_idx] = Slot::Spent;
                sw.commit_idx += 1;
                notify = true;
            }
            Slot::Done { .. } => {
                // Stale result at the commit point: recompute it.
                sw.slots[sw.commit_idx] = Slot::Open;
                wasted += 1;
                notify = true;
                break;
            }
            Slot::Running | Slot::Open => break,
            Slot::Spent => unreachable!("commit point advances past spent slots"),
        }
    }
    st.wasted += wasted;
    notify
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_sim::vectors::parse_values;
    use atspeed_sim::V3;

    fn padded_sequence() -> (Sequence, State) {
        // A sequence with obviously redundant repeated vectors.
        let rows = [
            "1010", "1010", "1010", "0110", "0110", "0001", "0001", "1111", "0000", "0000",
        ];
        let seq: Sequence = rows.iter().map(|r| parse_values(r)).collect();
        (seq, parse_values("010"))
    }

    fn detected_targets(
        nl: &atspeed_circuit::Netlist,
        u: &FaultUniverse,
        init: &State,
        seq: &Sequence,
    ) -> Vec<FaultId> {
        let mut fsim = SeqFaultSim::new(nl);
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let det = fsim.detect(init, seq, &reps, u, true);
        reps.iter()
            .zip(det.iter())
            .filter(|(_, &d)| d)
            .map(|(&f, _)| f)
            .collect()
    }

    #[test]
    fn omission_differential_serial_vs_speculative() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets = detected_targets(&nl, &u, &init, &seq);
        let (short, stats) = check_omission_differential(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            OmissionConfig::default(),
            &[2, 3],
        )
        .unwrap();
        assert!(short.len() < seq.len(), "padded sequence must compact");
        assert_eq!(stats.wasted, 0, "serial reference never wastes work");
    }

    #[test]
    fn omission_divergence_displays_thread_count() {
        let e = OmissionDivergence {
            threads: 4,
            detail: "sequences differ".to_owned(),
        };
        let s = e.to_string();
        assert!(s.contains("4 threads"), "{s}");
        assert!(s.contains("sequences differ"), "{s}");
    }

    #[test]
    fn omission_preserves_detection() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets = detected_targets(&nl, &u, &init, &seq);
        assert!(!targets.is_empty());
        let (short, stats) = omit_vectors(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            OmissionConfig::default(),
        );
        assert!(short.len() <= seq.len());
        assert_eq!(stats.removed, seq.len() - short.len());
        let mut fsim = SeqFaultSim::new(&nl);
        let det_after = fsim.detect(&init, &short, &targets, &u, true);
        assert!(det_after.iter().all(|&d| d), "no target fault lost");
    }

    #[test]
    fn removes_redundant_duplicates() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets = detected_targets(&nl, &u, &init, &seq);
        let (short, _) = omit_vectors(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            OmissionConfig::default(),
        );
        assert!(
            short.len() < seq.len(),
            "duplicate-laden sequence must shrink ({} -> {})",
            seq.len(),
            short.len()
        );
    }

    #[test]
    fn matches_unoptimized_reference_on_random_sequences() {
        // Differential test for the prefix-invariance optimization: a naive
        // single-vector descending sweep that re-simulates *all* targets
        // must leave the result detecting the same faults (final lengths
        // may differ only if acceptance decisions differ, which soundness
        // forbids — both must accept exactly when coverage is preserved,
        // so with the same sweep schedule the results must be identical).
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let seq: Sequence = crate::seq_tgen::random_t0(&nl, 24, 77)
            .iter()
            .cloned()
            .collect();
        let init = parse_values("000");
        let targets = detected_targets(&nl, &u, &init, &seq);
        if targets.is_empty() {
            return;
        }
        // Optimized: singles-only, one pass.
        let cfg = OmissionConfig {
            max_passes: 1,
            chunked: false,
            ..OmissionConfig::default()
        };
        let (fast, _) = omit_vectors(&nl, &u, &init, &seq, &targets, true, cfg);
        // Reference: naive descending single sweep.
        let mut fsim = SeqFaultSim::new(&nl);
        let mut reference = seq.clone();
        let mut t = reference.len();
        while t > 0 {
            t -= 1;
            if reference.len() == 1 {
                break;
            }
            let mut cand = reference.clone();
            cand.remove(t);
            if fsim
                .detect(&init, &cand, &targets, &u, true)
                .iter()
                .all(|&d| d)
            {
                reference = cand;
            }
        }
        assert_eq!(fast, reference, "optimized sweep diverged from reference");
    }

    #[test]
    fn respects_attempt_budget() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let cfg = OmissionConfig {
            attempt_budget: 3,
            ..OmissionConfig::default()
        };
        let (_, stats) = omit_vectors(&nl, &u, &init, &seq, &targets, true, cfg);
        assert!(stats.attempts <= 3);
    }

    #[test]
    fn bounded_profiles_keep_results_and_count_truncation() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        // A cycling input pattern, long enough that first-sweep profiles
        // spill past one 64-bit word (random vectors tend to PO-detect
        // every fault before cycle 64, which ends its profiling early).
        let rows: Vec<String> = (0..80).map(|t| format!("{:04b}", t % 16)).collect();
        let seq: Sequence = rows.iter().map(|r| parse_values(r)).collect();
        let init = parse_values("000");
        // The full representative set keeps scan-out-only and undetected
        // faults in play — their state diffs run past cycle 64, where a
        // PO-detected fault stops being profiled.
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let (full, full_stats) = omit_vectors(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            OmissionConfig::default(),
        );
        assert_eq!(full_stats.truncated_profile_bits, 0);
        let capped_cfg = OmissionConfig {
            profile_state_words: 1,
            ..OmissionConfig::default()
        };
        let (capped, capped_stats) = omit_vectors(&nl, &u, &init, &seq, &targets, true, capped_cfg);
        // Sweep planning keys on `po_detect` only, so capping the
        // state-diff bitmaps bounds memory without changing any accept
        // decision — the compacted sequence is identical.
        assert_eq!(capped, full);
        assert!(
            capped_stats.truncated_profile_bits > 0,
            "an 80-cycle sweep must drop bits past word 0"
        );
        // The truncation count is deterministic across thread counts.
        let par_cfg = OmissionConfig {
            profile_state_words: 1,
            sim: SimConfig::with_threads(3),
            ..OmissionConfig::default()
        };
        let (par, par_stats) = omit_vectors(&nl, &u, &init, &seq, &targets, true, par_cfg);
        assert_eq!(par, capped);
        assert_eq!(
            par_stats.truncated_profile_bits,
            capped_stats.truncated_profile_bits
        );
    }

    #[test]
    fn single_vector_sequence_is_untouched() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let seq: Sequence = std::iter::once(parse_values("1010")).collect();
        let (short, stats) = omit_vectors(
            &nl,
            &u,
            &parse_values("000"),
            &seq,
            u.representatives(),
            true,
            OmissionConfig::default(),
        );
        assert_eq!(short.len(), 1);
        assert_eq!(stats.attempts, 0);
    }

    #[test]
    fn empty_target_set_is_a_noop() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let (short, stats) =
            omit_vectors(&nl, &u, &init, &seq, &[], true, OmissionConfig::default());
        assert_eq!(short.len(), seq.len());
        assert_eq!(stats.attempts, 0);
    }

    #[test]
    fn chunked_and_plain_agree_on_coverage() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets = detected_targets(&nl, &u, &init, &seq);
        let mut fsim = SeqFaultSim::new(&nl);
        for chunked in [false, true] {
            let cfg = OmissionConfig {
                chunked,
                ..OmissionConfig::default()
            };
            let (short, _) = omit_vectors(&nl, &u, &init, &seq, &targets, true, cfg);
            let ok = fsim.detect(&init, &short, &targets, &u, true);
            assert!(ok.iter().all(|&d| d), "chunked={chunked}");
        }
    }

    #[test]
    fn all_x_vectors_do_not_crash() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let seq: Sequence = (0..4).map(|_| vec![V3::X; 4]).collect();
        let (short, _) = omit_vectors(
            &nl,
            &u,
            &vec![V3::X; 3],
            &seq,
            &[],
            false,
            OmissionConfig::default(),
        );
        assert_eq!(short.len(), 4);
    }

    #[test]
    fn max_passes_zero_is_honored() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets = detected_targets(&nl, &u, &init, &seq);
        // No chunked rounds, no single passes: nothing runs at all.
        let cfg = OmissionConfig {
            max_passes: 0,
            chunked: false,
            ..OmissionConfig::default()
        };
        let (short, stats) = omit_vectors(&nl, &u, &init, &seq, &targets, true, cfg);
        assert_eq!(short, seq, "no sweeps scheduled, sequence untouched");
        assert_eq!(stats.attempts, 0);
        assert_eq!(stats.sweeps, 0);
        // Chunked-only run: only chunk sizes >= 2 may execute.
        let cfg = OmissionConfig {
            max_passes: 0,
            chunked: true,
            ..OmissionConfig::default()
        };
        let (short, stats) = omit_vectors(&nl, &u, &init, &seq, &targets, true, cfg);
        assert!(stats.sweeps <= chunk_schedule(seq.len(), cfg).len());
        assert!(short.len() <= seq.len());
        let mut fsim = SeqFaultSim::new(&nl);
        let det = fsim.detect(&init, &short, &targets, &u, true);
        assert!(det.iter().all(|&d| d));
    }

    #[test]
    fn oversized_chunks_are_clamped_to_feasible_attempts() {
        // A schedule entry larger than the live sequence is clamped so the
        // sweep still tries feasible removals instead of spending its
        // profile attempt on a sweep that cannot remove anything.
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets = detected_targets(&nl, &u, &init, &seq);
        let cfg = OmissionConfig::default();
        let mut stats = OmissionStats::default();
        let out = omit_serial(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            cfg,
            &[seq.len() + 5],
            &mut stats,
        );
        assert_eq!(stats.sweeps, 1);
        assert!(
            stats.attempts >= 2,
            "a clamped sweep must attempt at least one feasible omission, got {stats:?}"
        );
        assert!(!out.is_empty());
    }

    #[test]
    fn every_sweep_attempts_at_least_one_feasible_omission() {
        // With the per-sweep clamp, each sweep's first position (t =
        // len - chunk) is always feasible, so an unexhausted budget implies
        // attempts >= 2 * sweeps (profile + at least one omission try).
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets = detected_targets(&nl, &u, &init, &seq);
        let (_, stats) = omit_vectors(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            OmissionConfig::default(),
        );
        assert!(stats.sweeps >= 1);
        assert!(
            stats.attempts >= 2 * stats.sweeps,
            "sweep ran without a feasible attempt: {stats:?}"
        );
        assert_eq!(
            stats.removed,
            seq.len() - /* final len */ {
            let (short, _) = omit_vectors(
                &nl,
                &u,
                &init,
                &seq,
                &targets,
                true,
                OmissionConfig::default(),
            );
            short.len()
        }
        );
    }

    #[test]
    fn parallel_matches_serial_on_padded_sequence() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets = detected_targets(&nl, &u, &init, &seq);
        let (serial, sstats) = omit_vectors(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            OmissionConfig::default(),
        );
        for threads in [2, 4] {
            let cfg = OmissionConfig {
                sim: SimConfig::with_threads(threads),
                ..OmissionConfig::default()
            };
            let (par, pstats) = omit_vectors(&nl, &u, &init, &seq, &targets, true, cfg);
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(pstats.attempts, sstats.attempts, "threads={threads}");
            assert_eq!(pstats.removed, sstats.removed, "threads={threads}");
            assert_eq!(pstats.accepted, sstats.accepted, "threads={threads}");
            assert_eq!(pstats.sweeps, sstats.sweeps, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_serial_under_budget_exhaustion() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        for budget in [1, 2, 3, 5, 8] {
            let serial_cfg = OmissionConfig {
                attempt_budget: budget,
                ..OmissionConfig::default()
            };
            let (serial, sstats) = omit_vectors(&nl, &u, &init, &seq, &targets, true, serial_cfg);
            let par_cfg = OmissionConfig {
                attempt_budget: budget,
                sim: SimConfig::with_threads(3),
                ..OmissionConfig::default()
            };
            let (par, pstats) = omit_vectors(&nl, &u, &init, &seq, &targets, true, par_cfg);
            assert_eq!(par, serial, "budget={budget}");
            assert_eq!(pstats.attempts, sstats.attempts, "budget={budget}");
            assert!(pstats.attempts <= budget);
        }
    }
}
