//! Static compaction of test sequences by vector omission.
//!
//! This is the sequence-compaction primitive the paper's Phase 2 uses (it
//! cites \[8\]): omit as many vectors as possible from a sequence without
//! losing the detection of any target fault. Every candidate omission is
//! verified by fault simulation of the shortened sequence.
//!
//! Two techniques keep this affordable on long sequences:
//!
//! - **Chunked sweeps** (delta-debugging style): large blocks are tried
//!   before single vectors, so highly compactable sequences collapse in
//!   `O(log L)` rounds.
//! - **Prefix invariance**: every sweep runs strictly *descending* through
//!   positions, so the prefix below the current attempt is never modified
//!   within a sweep. A fault whose primary-output detection time (from a
//!   detection profile computed at sweep start) lies strictly inside that
//!   prefix is guaranteed to stay detected, and only the remaining faults —
//!   late detections and faults observed solely at scan-out — need to be
//!   re-simulated per attempt. This cuts most attempts from the full fault
//!   set to a handful of parallel-fault groups.

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{SeqFaultSim, Sequence, State};

/// Configuration for [`omit_vectors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmissionConfig {
    /// Maximum single-vector sweeps after the chunked rounds.
    pub max_passes: usize,
    /// Whether to run the chunked (delta-debugging style) rounds first.
    pub chunked: bool,
    /// Upper bound on fault-simulation attempts (profile simulations at
    /// sweep starts count too).
    pub attempt_budget: usize,
}

impl Default for OmissionConfig {
    fn default() -> Self {
        OmissionConfig {
            max_passes: 2,
            chunked: true,
            attempt_budget: usize::MAX,
        }
    }
}

/// Statistics returned by [`omit_vectors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OmissionStats {
    /// Fault-simulation attempts performed (including per-sweep profiling).
    pub attempts: usize,
    /// Vectors removed.
    pub removed: usize,
}

/// Omits vectors from `seq` while preserving detection of every fault in
/// `targets` (fault simulation from `init`, observing primary outputs every
/// cycle and, when `observe_final_state` is set, the state after the last
/// cycle).
///
/// Returns the shortened sequence and statistics. The result always detects
/// every target fault that the input sequence detects; callers normally
/// pass exactly the detected set (the paper's `F_SO`).
pub fn omit_vectors(
    nl: &Netlist,
    universe: &FaultUniverse,
    init: &State,
    seq: &Sequence,
    targets: &[FaultId],
    observe_final_state: bool,
    cfg: OmissionConfig,
) -> (Sequence, OmissionStats) {
    let mut stats = OmissionStats::default();
    if seq.len() <= 1 || targets.is_empty() {
        return (seq.clone(), stats);
    }
    let mut fsim = SeqFaultSim::new(nl);
    let mut current = seq.clone();

    // Sweep schedule: halving chunk sizes down to 1, then extra
    // single-vector passes.
    let mut chunks: Vec<usize> = Vec::new();
    if cfg.chunked {
        let mut c = current.len() / 2;
        while c >= 2 {
            chunks.push(c);
            c /= 2;
        }
    }
    chunks.extend(std::iter::repeat_n(1, cfg.max_passes.max(1)));

    for chunk in chunks {
        if stats.attempts >= cfg.attempt_budget || current.len() <= 1 {
            break;
        }
        let changed = sweep(
            nl,
            universe,
            &mut fsim,
            init,
            &mut current,
            targets,
            observe_final_state,
            chunk,
            cfg.attempt_budget,
            &mut stats,
        );
        if chunk == 1 && !changed {
            break;
        }
    }
    (current, stats)
}

/// One strictly-descending sweep at a fixed chunk size. Returns whether any
/// removal was accepted.
#[allow(clippy::too_many_arguments)]
fn sweep(
    _nl: &Netlist,
    universe: &FaultUniverse,
    fsim: &mut SeqFaultSim<'_>,
    init: &State,
    current: &mut Sequence,
    targets: &[FaultId],
    observe_final_state: bool,
    chunk: usize,
    budget: usize,
    stats: &mut OmissionStats,
) -> bool {
    if current.len() <= 1 {
        return false;
    }
    // Profile the sweep's starting sequence. `po_detect` times anchor the
    // prefix-invariance rule; faults without a primary-output detection
    // (scan-out-only, or undetected) must be re-checked on every attempt.
    stats.attempts += 1;
    let profiles = fsim.profiles(init, current, targets, universe);
    let mut keyed: Vec<(u32, FaultId)> = targets
        .iter()
        .zip(profiles.iter())
        .map(|(&f, p)| (p.po_detect.unwrap_or(u32::MAX), f))
        .collect();
    keyed.sort_unstable();
    let keys: Vec<u32> = keyed.iter().map(|&(k, _)| k).collect();
    let ordered: Vec<FaultId> = keyed.iter().map(|&(_, f)| f).collect();

    let mut changed = false;
    let mut t = current.len().saturating_sub(chunk);
    loop {
        if stats.attempts >= budget {
            break;
        }
        let end = (t + chunk).min(current.len());
        if end > t && current.len() - (end - t) >= 1 {
            // Faults safely detected strictly before position `t` keep
            // their detection (the prefix is untouched by this and all
            // later attempts of this descending sweep).
            let first = keys.partition_point(|&k| k < t as u32);
            let check = &ordered[first..];
            let candidate = remove_range(current, t, end);
            stats.attempts += 1;
            let ok = check.is_empty()
                || fsim
                    .detect(init, &candidate, check, universe, observe_final_state)
                    .iter()
                    .all(|&d| d);
            if ok {
                stats.removed += end - t;
                *current = candidate;
                changed = true;
            }
        }
        if t == 0 {
            break;
        }
        t = t.saturating_sub(chunk);
    }
    changed
}

fn remove_range(seq: &Sequence, start: usize, end: usize) -> Sequence {
    seq.iter()
        .enumerate()
        .filter(|(i, _)| *i < start || *i >= end)
        .map(|(_, v)| v.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_sim::vectors::parse_values;
    use atspeed_sim::V3;

    fn padded_sequence() -> (Sequence, State) {
        // A sequence with obviously redundant repeated vectors.
        let rows = [
            "1010", "1010", "1010", "0110", "0110", "0001", "0001", "1111", "0000", "0000",
        ];
        let seq: Sequence = rows.iter().map(|r| parse_values(r)).collect();
        (seq, parse_values("010"))
    }

    fn detected_targets(
        nl: &atspeed_circuit::Netlist,
        u: &FaultUniverse,
        init: &State,
        seq: &Sequence,
    ) -> Vec<FaultId> {
        let mut fsim = SeqFaultSim::new(nl);
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let det = fsim.detect(init, seq, &reps, u, true);
        reps.iter()
            .zip(det.iter())
            .filter(|(_, &d)| d)
            .map(|(&f, _)| f)
            .collect()
    }

    #[test]
    fn omission_preserves_detection() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets = detected_targets(&nl, &u, &init, &seq);
        assert!(!targets.is_empty());
        let (short, stats) = omit_vectors(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            OmissionConfig::default(),
        );
        assert!(short.len() <= seq.len());
        assert_eq!(stats.removed, seq.len() - short.len());
        let mut fsim = SeqFaultSim::new(&nl);
        let det_after = fsim.detect(&init, &short, &targets, &u, true);
        assert!(det_after.iter().all(|&d| d), "no target fault lost");
    }

    #[test]
    fn removes_redundant_duplicates() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets = detected_targets(&nl, &u, &init, &seq);
        let (short, _) = omit_vectors(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            OmissionConfig::default(),
        );
        assert!(
            short.len() < seq.len(),
            "duplicate-laden sequence must shrink ({} -> {})",
            seq.len(),
            short.len()
        );
    }

    #[test]
    fn matches_unoptimized_reference_on_random_sequences() {
        // Differential test for the prefix-invariance optimization: a naive
        // single-vector descending sweep that re-simulates *all* targets
        // must leave the result detecting the same faults (final lengths
        // may differ only if acceptance decisions differ, which soundness
        // forbids — both must accept exactly when coverage is preserved,
        // so with the same sweep schedule the results must be identical).
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let seq: Sequence = crate::seq_tgen::random_t0(&nl, 24, 77)
            .iter()
            .cloned()
            .collect();
        let init = parse_values("000");
        let targets = detected_targets(&nl, &u, &init, &seq);
        if targets.is_empty() {
            return;
        }
        // Optimized: singles-only, one pass.
        let cfg = OmissionConfig {
            max_passes: 1,
            chunked: false,
            attempt_budget: usize::MAX,
        };
        let (fast, _) = omit_vectors(&nl, &u, &init, &seq, &targets, true, cfg);
        // Reference: naive descending single sweep.
        let mut fsim = SeqFaultSim::new(&nl);
        let mut reference = seq.clone();
        let mut t = reference.len();
        while t > 0 {
            t -= 1;
            if reference.len() == 1 {
                break;
            }
            let mut cand = reference.clone();
            cand.remove(t);
            if fsim
                .detect(&init, &cand, &targets, &u, true)
                .iter()
                .all(|&d| d)
            {
                reference = cand;
            }
        }
        assert_eq!(fast, reference, "optimized sweep diverged from reference");
    }

    #[test]
    fn respects_attempt_budget() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let cfg = OmissionConfig {
            attempt_budget: 3,
            ..OmissionConfig::default()
        };
        let (_, stats) = omit_vectors(&nl, &u, &init, &seq, &targets, true, cfg);
        assert!(stats.attempts <= 3);
    }

    #[test]
    fn single_vector_sequence_is_untouched() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let seq: Sequence = std::iter::once(parse_values("1010")).collect();
        let (short, stats) = omit_vectors(
            &nl,
            &u,
            &parse_values("000"),
            &seq,
            u.representatives(),
            true,
            OmissionConfig::default(),
        );
        assert_eq!(short.len(), 1);
        assert_eq!(stats.attempts, 0);
    }

    #[test]
    fn empty_target_set_is_a_noop() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let (short, stats) =
            omit_vectors(&nl, &u, &init, &seq, &[], true, OmissionConfig::default());
        assert_eq!(short.len(), seq.len());
        assert_eq!(stats.attempts, 0);
    }

    #[test]
    fn chunked_and_plain_agree_on_coverage() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let (seq, init) = padded_sequence();
        let targets = detected_targets(&nl, &u, &init, &seq);
        let mut fsim = SeqFaultSim::new(&nl);
        for chunked in [false, true] {
            let cfg = OmissionConfig {
                chunked,
                ..OmissionConfig::default()
            };
            let (short, _) = omit_vectors(&nl, &u, &init, &seq, &targets, true, cfg);
            let ok = fsim.detect(&init, &short, &targets, &u, true);
            assert!(ok.iter().all(|&d| d), "chunked={chunked}");
        }
    }

    #[test]
    fn all_x_vectors_do_not_crash() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let seq: Sequence = (0..4).map(|_| vec![V3::X; 4]).collect();
        let (short, _) = omit_vectors(
            &nl,
            &u,
            &vec![V3::X; 3],
            &seq,
            &[],
            false,
            OmissionConfig::default(),
        );
        assert_eq!(short.len(), 4);
    }
}
