//! Vector-restoration-based static compaction of test sequences (the
//! approach of the paper's reference \[11\]).
//!
//! Where [omission](crate::compact) *removes* vectors from a full sequence,
//! restoration builds the compacted sequence *up*: starting from an empty
//! selection, faults are processed in order of decreasing detection time,
//! and for each fault still undetected by the selected subsequence, vectors
//! are restored — backwards from the fault's detection time — until the
//! subsequence detects it again. Vectors never selected are dropped.
//!
//! Restoration tends to beat single-pass omission when only a few "anchor"
//! vectors matter, and it is the compaction STRATEGATE-generated sequences
//! went through before the paper used them as `T_0`.

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{SeqFaultSim, Sequence, State};

/// Configuration for [`restore_vectors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestorationConfig {
    /// Upper bound on fault-simulation runs.
    pub attempt_budget: usize,
    /// Restore this many vectors per step before re-checking detection
    /// (larger batches simulate less but may restore more than needed).
    pub batch: usize,
}

impl Default for RestorationConfig {
    fn default() -> Self {
        RestorationConfig {
            attempt_budget: usize::MAX,
            batch: 4,
        }
    }
}

/// Statistics returned by [`restore_vectors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestorationStats {
    /// Fault-simulation runs performed.
    pub attempts: usize,
    /// Vectors restored (the final sequence length).
    pub restored: usize,
}

/// Compacts `seq` by vector restoration, preserving detection of every
/// fault in `targets` that the full sequence detects.
///
/// Faults the full sequence does *not* detect are ignored (they constrain
/// nothing). If the budget runs out mid-restoration, the remaining original
/// vectors are restored wholesale so the guarantee still holds.
pub fn restore_vectors(
    nl: &Netlist,
    universe: &FaultUniverse,
    init: &State,
    seq: &Sequence,
    targets: &[FaultId],
    observe_final_state: bool,
    cfg: RestorationConfig,
) -> (Sequence, RestorationStats) {
    let mut stats = RestorationStats::default();
    if seq.len() <= 1 || targets.is_empty() {
        stats.restored = seq.len();
        return (seq.clone(), stats);
    }
    let mut fsim = SeqFaultSim::new(nl);

    // Detection profile of the full sequence: the anchor times.
    stats.attempts += 1;
    let profiles = fsim.profiles(init, seq, targets, universe);
    let mut anchored: Vec<(u32, FaultId)> = targets
        .iter()
        .zip(profiles.iter())
        .filter_map(|(&f, p)| {
            let t = if observe_final_state {
                p.earliest_detection()
            } else {
                p.po_detect
            };
            t.map(|t| (t, f))
        })
        .collect();
    // Decreasing detection time.
    anchored.sort_unstable_by(|a, b| b.cmp(a));
    if anchored.is_empty() {
        stats.restored = seq.len();
        return (seq.clone(), stats);
    }

    let mut kept = vec![false; seq.len()];
    let subsequence = |kept: &[bool]| -> Sequence {
        seq.iter()
            .enumerate()
            .filter(|(i, _)| kept[*i])
            .map(|(_, v)| v.clone())
            .collect()
    };

    for &(t, fault) in &anchored {
        if stats.attempts >= cfg.attempt_budget {
            // Budget exhausted: restore everything still missing so the
            // coverage guarantee holds unconditionally.
            kept.iter_mut().for_each(|k| *k = true);
            break;
        }
        // Already covered by the current selection?
        let sub = subsequence(&kept);
        if !sub.is_empty() {
            stats.attempts += 1;
            if fsim.detect(init, &sub, &[fault], universe, observe_final_state)[0] {
                continue;
            }
        }
        // Restore backwards from the anchor until the fault is detected.
        let mut next = t as usize;
        loop {
            let mut restored_any = false;
            for _ in 0..cfg.batch.max(1) {
                // Find the highest un-restored position ≤ next.
                let Some(pos) = (0..=next).rev().find(|&p| !kept[p]) else {
                    break;
                };
                kept[pos] = true;
                restored_any = true;
                next = pos.saturating_sub(1);
                if pos == 0 {
                    break;
                }
            }
            if !restored_any {
                break;
            }
            stats.attempts += 1;
            let sub = subsequence(&kept);
            if fsim.detect(init, &sub, &[fault], universe, observe_final_state)[0] {
                break;
            }
            if kept.iter().all(|&k| k) {
                break;
            }
            if stats.attempts >= cfg.attempt_budget {
                kept.iter_mut().for_each(|k| *k = true);
                break;
            }
        }
    }

    let result = subsequence(&kept);
    stats.restored = result.len();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_sim::vectors::parse_values;

    fn setup() -> (atspeed_circuit::Netlist, FaultUniverse, Sequence, State) {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let rows = [
            "1010", "1010", "0110", "0110", "0001", "0001", "1111", "0000", "1001", "0000",
        ];
        let seq: Sequence = rows.iter().map(|r| parse_values(r)).collect();
        (nl, u, seq, parse_values("010"))
    }

    fn detected(
        nl: &atspeed_circuit::Netlist,
        u: &FaultUniverse,
        init: &State,
        seq: &Sequence,
    ) -> Vec<FaultId> {
        let mut fsim = SeqFaultSim::new(nl);
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let det = fsim.detect(init, seq, &reps, u, true);
        reps.iter()
            .zip(det.iter())
            .filter(|(_, &d)| d)
            .map(|(&f, _)| f)
            .collect()
    }

    #[test]
    fn restoration_preserves_detection() {
        let (nl, u, seq, init) = setup();
        let targets = detected(&nl, &u, &init, &seq);
        assert!(!targets.is_empty());
        let (short, stats) = restore_vectors(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            RestorationConfig::default(),
        );
        assert_eq!(stats.restored, short.len());
        assert!(short.len() <= seq.len());
        let mut fsim = SeqFaultSim::new(&nl);
        let after = fsim.detect(&init, &short, &targets, &u, true);
        assert!(after.iter().all(|&d| d), "restoration lost a fault");
    }

    #[test]
    fn restoration_and_omission_agree_on_coverage() {
        use crate::compact::{omit_vectors, OmissionConfig};
        let (nl, u, seq, init) = setup();
        let targets = detected(&nl, &u, &init, &seq);
        let (restored, _) = restore_vectors(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            RestorationConfig::default(),
        );
        let (omitted, _) = omit_vectors(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            OmissionConfig::default(),
        );
        let mut fsim = SeqFaultSim::new(&nl);
        for (label, s) in [("restored", &restored), ("omitted", &omitted)] {
            let ok = fsim.detect(&init, s, &targets, &u, true);
            assert!(ok.iter().all(|&d| d), "{label} lost a fault");
        }
    }

    #[test]
    fn budget_exhaustion_falls_back_to_full_sequence_coverage() {
        let (nl, u, seq, init) = setup();
        let targets = detected(&nl, &u, &init, &seq);
        let cfg = RestorationConfig {
            attempt_budget: 2,
            ..RestorationConfig::default()
        };
        let (short, _) = restore_vectors(&nl, &u, &init, &seq, &targets, true, cfg);
        let mut fsim = SeqFaultSim::new(&nl);
        let ok = fsim.detect(&init, &short, &targets, &u, true);
        assert!(
            ok.iter().all(|&d| d),
            "guarantee must hold under any budget"
        );
    }

    #[test]
    fn ignores_undetected_targets() {
        let (nl, u, seq, init) = setup();
        // Pass ALL representatives (some undetected by this short seq).
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let (short, _) = restore_vectors(
            &nl,
            &u,
            &init,
            &seq,
            &reps,
            true,
            RestorationConfig::default(),
        );
        // Detected subset must stay detected.
        let targets = detected(&nl, &u, &init, &seq);
        let mut fsim = SeqFaultSim::new(&nl);
        let ok = fsim.detect(&init, &short, &targets, &u, true);
        assert!(ok.iter().all(|&d| d));
    }

    #[test]
    fn trivial_sequences_pass_through() {
        let (nl, u, _, init) = setup();
        let one: Sequence = std::iter::once(parse_values("1010")).collect();
        let (out, stats) = restore_vectors(
            &nl,
            &u,
            &init,
            &one,
            u.representatives(),
            true,
            RestorationConfig::default(),
        );
        assert_eq!(out, one);
        assert_eq!(stats.restored, 1);
    }
}
