//! SCOAP testability measures (Goldstein's controllability/observability
//! analysis).
//!
//! SCOAP assigns every net three integer measures:
//!
//! - `CC0(n)` / `CC1(n)` — *combinational controllability*: the minimum
//!   number of input assignments needed to drive net `n` to 0 / 1 (inputs
//!   cost 1);
//! - `CO(n)` — *combinational observability*: the effort to propagate the
//!   value of `n` to an observation point (primary output or flip-flop D
//!   input, which full scan observes), 0 at the observation points
//!   themselves.
//!
//! The measures are computed over the full-scan view (flip-flop outputs are
//! controllable like primary inputs). [`Podem`](crate::podem) uses them to
//! steer its backtrace: when one input of a gate must take the controlling
//! value, picking the *cheapest* X input resolves the objective with the
//! fewest implied assignments; when all inputs must be non-controlling, the
//! *most expensive* input is assigned first so that infeasible objectives
//! fail fast.

use atspeed_circuit::{CompiledCircuit, GateKind, Netlist};

/// SCOAP measures for every net of a netlist.
#[derive(Debug, Clone)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

/// Cost cap: redundant/unreachable values saturate here instead of
/// overflowing.
const INF: u32 = u32::MAX / 4;

impl Scoap {
    /// Computes the measures for `nl` over the full-scan view.
    pub fn compute(nl: &Netlist) -> Self {
        Self::compute_with(nl.compiled())
    }

    /// [`Scoap::compute`] over a pre-built compiled view; both passes walk
    /// the flat level schedule and CSR pin spans.
    pub fn compute_with(cc: &CompiledCircuit) -> Self {
        let n = cc.num_nets();
        let mut cc0 = vec![INF; n];
        let mut cc1 = vec![INF; n];
        // Sources: primary inputs and (scanned) flip-flop outputs cost 1.
        for i in 0..n {
            if !cc.gate_driven(atspeed_circuit::NetId::from_index(i)) {
                cc0[i] = 1;
                cc1[i] = 1;
            }
        }
        // Forward pass in levelized order.
        for &gid in cc.schedule() {
            let ins = cc.inputs(gid);
            let (c_out0, c_out1) = match cc.kind(gid) {
                GateKind::And | GateKind::Nand => {
                    // Output base-0: any input 0; base-1: all inputs 1.
                    let any0 = ins.iter().map(|i| cc0[i.index()]).min().unwrap_or(INF);
                    let all1: u32 = ins
                        .iter()
                        .map(|i| cc1[i.index()])
                        .fold(0u32, |a, b| a.saturating_add(b));
                    (any0.saturating_add(1), all1.saturating_add(1))
                }
                GateKind::Or | GateKind::Nor => {
                    let all0: u32 = ins
                        .iter()
                        .map(|i| cc0[i.index()])
                        .fold(0u32, |a, b| a.saturating_add(b));
                    let any1 = ins.iter().map(|i| cc1[i.index()]).min().unwrap_or(INF);
                    (all0.saturating_add(1), any1.saturating_add(1))
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Cheapest even/odd parity assignment over the inputs.
                    let (even, odd) =
                        parity_costs(ins.iter().map(|i| (cc0[i.index()], cc1[i.index()])));
                    (even.saturating_add(1), odd.saturating_add(1))
                }
                GateKind::Not | GateKind::Buf => (
                    cc0[ins[0].index()].saturating_add(1),
                    cc1[ins[0].index()].saturating_add(1),
                ),
            };
            let out = cc.output(gid).index();
            if cc.kind(gid).inverts() {
                cc0[out] = c_out1.min(INF);
                cc1[out] = c_out0.min(INF);
            } else {
                cc0[out] = c_out0.min(INF);
                cc1[out] = c_out1.min(INF);
            }
        }

        // Backward pass for observability.
        let mut co = vec![INF; n];
        for (i, slot) in co.iter_mut().enumerate() {
            if cc.observed(atspeed_circuit::NetId::from_index(i)) {
                *slot = 0;
            }
        }
        for &gid in cc.schedule().iter().rev() {
            let out_co = co[cc.output(gid).index()];
            if out_co >= INF {
                continue;
            }
            let ins = cc.inputs(gid);
            for (p, &inet) in ins.iter().enumerate() {
                // To observe input p: observe the output and hold every
                // other input at a non-controlling value (for XOR: any
                // binary value; take the cheaper).
                let mut cost = out_co.saturating_add(1);
                for (q, &other) in ins.iter().enumerate() {
                    if q == p {
                        continue;
                    }
                    let side = match cc.kind(gid) {
                        GateKind::And | GateKind::Nand => cc1[other.index()],
                        GateKind::Or | GateKind::Nor => cc0[other.index()],
                        GateKind::Xor | GateKind::Xnor => {
                            cc0[other.index()].min(cc1[other.index()])
                        }
                        GateKind::Not | GateKind::Buf => 0,
                    };
                    cost = cost.saturating_add(side);
                }
                let slot = &mut co[inet.index()];
                *slot = (*slot).min(cost.min(INF));
            }
        }

        Scoap { cc0, cc1, co }
    }

    /// Controllability to 0 of a net.
    #[inline]
    pub fn cc0(&self, net: atspeed_circuit::NetId) -> u32 {
        self.cc0[net.index()]
    }

    /// Controllability to 1 of a net.
    #[inline]
    pub fn cc1(&self, net: atspeed_circuit::NetId) -> u32 {
        self.cc1[net.index()]
    }

    /// Controllability to a given value.
    #[inline]
    pub fn cc(&self, net: atspeed_circuit::NetId, value: bool) -> u32 {
        if value {
            self.cc1(net)
        } else {
            self.cc0(net)
        }
    }

    /// Observability of a net.
    #[inline]
    pub fn co(&self, net: atspeed_circuit::NetId) -> u32 {
        self.co[net.index()]
    }

    /// A combined per-fault difficulty estimate: controllability of the
    /// complement of the stuck value at the site plus its observability.
    /// Useful for ordering deterministic test generation hardest-first or
    /// easiest-first.
    pub fn fault_difficulty(&self, nl: &Netlist, fault: atspeed_sim::fault::Fault) -> u32 {
        use atspeed_sim::fault::FaultSite;
        let net = match fault.site {
            FaultSite::Stem(n) => n,
            FaultSite::GatePin(g, p) => nl.gate(g).inputs()[p as usize],
            FaultSite::FfPin(f) => nl.ff(f).d(),
            FaultSite::PoPin(p) => nl.pos()[p.index()],
        };
        self.cc(net, !fault.stuck).saturating_add(self.co(net))
    }
}

/// Minimum cost of setting the inputs (given their `(cc0, cc1)` pairs) to
/// an even / odd number of ones: `(even_cost, odd_cost)`.
fn parity_costs(costs: impl Iterator<Item = (u32, u32)>) -> (u32, u32) {
    let mut even = 0u32;
    let mut odd = INF;
    for (c0, c1) in costs {
        let new_even = (even.saturating_add(c0)).min(odd.saturating_add(c1));
        let new_odd = (even.saturating_add(c1)).min(odd.saturating_add(c0));
        even = new_even.min(INF);
        odd = new_odd.min(INF);
    }
    (even, odd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::{GateKind, NetlistBuilder};

    #[test]
    fn inputs_cost_one_and_observed_nets_cost_zero() {
        let nl = s27();
        let s = Scoap::compute(&nl);
        for &pi in nl.pis() {
            assert_eq!(s.cc0(pi), 1);
            assert_eq!(s.cc1(pi), 1);
        }
        for ff in nl.ffs() {
            assert_eq!(s.cc0(ff.q()), 1, "pseudo-PI");
            assert_eq!(s.co(ff.d()), 0, "pseudo-PO");
        }
        for &po in nl.pos() {
            assert_eq!(s.co(po), 0);
        }
    }

    #[test]
    fn and_gate_measures() {
        let mut b = NetlistBuilder::new("and2");
        b.input("a");
        b.input("b");
        b.gate(GateKind::And, "y", &["a", "b"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let s = Scoap::compute(&nl);
        let y = nl.find_net("y").unwrap();
        let a = nl.find_net("a").unwrap();
        // y=0: one input at 0 (cost 1) + 1 = 2; y=1: both at 1 + 1 = 3.
        assert_eq!(s.cc0(y), 2);
        assert_eq!(s.cc1(y), 3);
        // Observing a: y observed (0) + 1 + set b=1 (1) = 2.
        assert_eq!(s.co(a), 2);
    }

    #[test]
    fn nor_gate_inverts_controllabilities() {
        let mut b = NetlistBuilder::new("nor2");
        b.input("a");
        b.input("b");
        b.gate(GateKind::Nor, "y", &["a", "b"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let s = Scoap::compute(&nl);
        let y = nl.find_net("y").unwrap();
        // y=1 needs both inputs 0: 1+1+1 = 3; y=0 needs one input 1: 2.
        assert_eq!(s.cc1(y), 3);
        assert_eq!(s.cc0(y), 2);
    }

    #[test]
    fn xor_parity_costs() {
        let mut b = NetlistBuilder::new("xor2");
        b.input("a");
        b.input("b");
        b.gate(GateKind::Xor, "y", &["a", "b"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let s = Scoap::compute(&nl);
        let y = nl.find_net("y").unwrap();
        // Even parity (00 or 11): 2 + 1 = 3; odd parity likewise 3.
        assert_eq!(s.cc0(y), 3);
        assert_eq!(s.cc1(y), 3);
    }

    #[test]
    fn deeper_nets_cost_more() {
        let mut b = NetlistBuilder::new("chain");
        b.input("a");
        b.gate(GateKind::Buf, "x", &["a"]);
        b.gate(GateKind::Buf, "y", &["x"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let s = Scoap::compute(&nl);
        let a = nl.find_net("a").unwrap();
        let x = nl.find_net("x").unwrap();
        let y = nl.find_net("y").unwrap();
        assert!(s.cc1(a) < s.cc1(x));
        assert!(s.cc1(x) < s.cc1(y));
        assert!(s.co(a) > s.co(x), "observability decreases toward outputs");
    }

    #[test]
    fn fault_difficulty_reflects_structure() {
        let nl = s27();
        let u = atspeed_sim::fault::FaultUniverse::full(&nl);
        let s = Scoap::compute(&nl);
        let difficulties: Vec<u32> = u
            .representatives()
            .iter()
            .map(|&f| s.fault_difficulty(&nl, u.fault(f)))
            .collect();
        assert!(difficulties.iter().all(|&d| (1..INF).contains(&d)));
        // Not all faults are equally hard.
        assert!(difficulties.iter().min() < difficulties.iter().max());
    }

    #[test]
    fn parity_helper_handles_edge_cases() {
        assert_eq!(parity_costs(std::iter::empty()), (0, INF));
        assert_eq!(parity_costs([(1, 1)].into_iter()), (1, 1));
        assert_eq!(parity_costs([(1, 5), (1, 5)].into_iter()), (2, 6));
    }
}
