//! PODEM combinational test generation over the full-scan view.
//!
//! The full-scan view treats primary inputs and flip-flop outputs
//! (pseudo-primary inputs, set by scan-in) as assignable inputs, and primary
//! outputs plus flip-flop D inputs (pseudo-primary outputs, observed by
//! scan-out) as observation points. PODEM searches over input assignments
//! only, implying all internal values by 3-valued simulation, and is
//! complete: with an unbounded backtrack budget, exhausting the search space
//! proves a fault combinationally untestable.
//!
//! The forward simulation here stays on the scalar single-pattern `V3`
//! kernel regardless of `SimConfig::engine`: backtrace and the D-frontier
//! inspect arbitrary interior nets, which the fused kernel leaves stale,
//! and PODEM implies one candidate assignment at a time, so there is no
//! pattern dimension for the wide kernel to fill.

use atspeed_circuit::{CompiledCircuit, Driver, NetId, Netlist};
use atspeed_sim::fault::{Fault, FaultSite};
use atspeed_sim::{CombTest, V3};
use atspeed_trace::{Counter, Histogram};

use crate::scoap::Scoap;

/// Configuration for [`Podem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodemConfig {
    /// Abort the search for one fault after this many backtracks.
    pub backtrack_limit: usize,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            backtrack_limit: 400,
        }
    }
}

/// Result of a PODEM run for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found; unassigned inputs are X.
    Test(CombTest),
    /// The search space was exhausted: the fault is combinationally
    /// untestable (redundant) in the full-scan view.
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

/// PODEM test generator with reusable scratch state.
///
/// All value propagation (implication, D-frontier scan, X-path check) runs
/// over the flat [`CompiledCircuit`] schedule and CSR pin spans; the netlist
/// is only consulted for driver lookups during backtrace.
#[derive(Debug)]
pub struct Podem<'a> {
    nl: &'a Netlist,
    cc: &'a CompiledCircuit,
    cfg: PodemConfig,
    /// Assignable inputs: primary inputs, then flip-flop Q nets.
    cinputs: Vec<NetId>,
    assignment: Vec<V3>,
    good: Vec<V3>,
    faulty: Vec<V3>,
    /// Nets observed for error: primary outputs and flip-flop D nets.
    observables: Vec<NetId>,
    /// SCOAP measures guiding the backtrace input choices.
    scoap: Scoap,
    /// Per-fault search metrics, resolved once from the global registry so
    /// the per-fault hot path never takes the registry lock.
    metrics: PodemMetrics,
}

/// Handles into the global metrics registry for PODEM search telemetry.
#[derive(Debug)]
struct PodemMetrics {
    backtracks: Histogram,
    decision_depth: Histogram,
    tests: Counter,
    untestable: Counter,
    aborted: Counter,
}

impl PodemMetrics {
    fn resolve() -> Self {
        let m = atspeed_trace::metrics::global();
        PodemMetrics {
            backtracks: m.histogram("podem/backtracks"),
            decision_depth: m.histogram("podem/decision_depth"),
            tests: m.counter("podem/tests"),
            untestable: m.counter("podem/untestable"),
            aborted: m.counter("podem/aborted"),
        }
    }
}

impl<'a> Podem<'a> {
    /// Creates a generator for `nl`.
    pub fn new(nl: &'a Netlist, cfg: PodemConfig) -> Self {
        let cc = nl.compiled();
        let mut cinputs: Vec<NetId> = cc.pis().to_vec();
        cinputs.extend(cc.ff_qs().iter().copied());
        let mut observables: Vec<NetId> = cc.pos().to_vec();
        observables.extend(cc.ff_ds().iter().copied());
        Podem {
            nl,
            cc,
            cfg,
            assignment: vec![V3::X; cinputs.len()],
            cinputs,
            good: vec![V3::X; cc.num_nets()],
            faulty: vec![V3::X; cc.num_nets()],
            observables,
            scoap: Scoap::compute_with(cc),
            metrics: PodemMetrics::resolve(),
        }
    }

    /// Attempts to generate a test for `fault`.
    ///
    /// Each call is one span (`"podem"`) when tracing is enabled, and
    /// records the search's backtrack count and maximum decision depth in
    /// the global metric histograms, plus one outcome counter.
    pub fn generate(&mut self, fault: Fault) -> PodemOutcome {
        // The fault label costs an allocation, so it is only rendered when
        // a trace is actually being recorded; the report tooling uses it
        // to rank the slowest PODEM searches by fault.
        let _sp = if atspeed_trace::tracing_enabled() {
            let desc = fault.describe(self.nl);
            atspeed_trace::span_args("podem", &[("fault", &desc)])
        } else {
            atspeed_trace::span("podem")
        };
        let mut backtracks = 0usize;
        let mut max_depth = 0usize;
        let outcome = self.search(fault, &mut backtracks, &mut max_depth);
        self.metrics.backtracks.record(backtracks as u64);
        self.metrics.decision_depth.record(max_depth as u64);
        match outcome {
            PodemOutcome::Test(_) => self.metrics.tests.inc(),
            PodemOutcome::Untestable => self.metrics.untestable.inc(),
            PodemOutcome::Aborted => self.metrics.aborted.inc(),
        }
        outcome
    }

    fn search(
        &mut self,
        fault: Fault,
        backtracks_out: &mut usize,
        max_depth_out: &mut usize,
    ) -> PodemOutcome {
        self.assignment.fill(V3::X);
        self.simulate(fault);

        // Decision: (input index, value, flipped-already).
        let mut decisions: Vec<(usize, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;
        let outcome = loop {
            if self.error_observed(fault) {
                break PodemOutcome::Test(self.make_test());
            }
            let step = self
                .objective(fault)
                .and_then(|(net, val)| self.backtrace(net, val));
            match step {
                Some((input, value)) => {
                    decisions.push((input, value, false));
                    *max_depth_out = (*max_depth_out).max(decisions.len());
                    self.assignment[input] = V3::from_bool(value);
                    self.simulate(fault);
                }
                None => {
                    let mut verdict = None;
                    loop {
                        match decisions.pop() {
                            None => {
                                verdict = Some(PodemOutcome::Untestable);
                                break;
                            }
                            Some((input, _, true)) => {
                                self.assignment[input] = V3::X;
                            }
                            Some((input, value, false)) => {
                                backtracks += 1;
                                if backtracks > self.cfg.backtrack_limit {
                                    // Restore a clean assignment before leaving.
                                    self.assignment.fill(V3::X);
                                    verdict = Some(PodemOutcome::Aborted);
                                    break;
                                }
                                decisions.push((input, !value, true));
                                self.assignment[input] = V3::from_bool(!value);
                                self.simulate(fault);
                                break;
                            }
                        }
                    }
                    if let Some(v) = verdict {
                        break v;
                    }
                }
            }
        };
        *backtracks_out = backtracks;
        outcome
    }

    /// The net whose value excites the fault (must be driven to the
    /// complement of the stuck value).
    fn site_net(&self, fault: Fault) -> NetId {
        match fault.site {
            FaultSite::Stem(n) => n,
            FaultSite::GatePin(g, p) => self.cc.inputs(g)[p as usize],
            FaultSite::FfPin(f) => self.cc.ff_d(f),
            FaultSite::PoPin(p) => self.cc.pos()[p.index()],
        }
    }

    fn simulate(&mut self, fault: Fault) {
        let cc = self.cc;
        for (i, &net) in self.cinputs.iter().enumerate() {
            self.good[net.index()] = self.assignment[i];
            self.faulty[net.index()] = self.assignment[i];
        }
        if let FaultSite::Stem(net) = fault.site {
            if !cc.gate_driven(net) {
                self.faulty[net.index()] = V3::from_bool(fault.stuck);
            }
        }
        let mut gins: [V3; 16] = [V3::X; 16];
        let mut fins: [V3; 16] = [V3::X; 16];
        for &gid in cc.schedule() {
            let ins = cc.inputs(gid);
            let n = ins.len();
            debug_assert!(n <= 16, "gate fanin exceeds scratch size");
            for (p, &inet) in ins.iter().enumerate() {
                gins[p] = self.good[inet.index()];
                let mut fv = self.faulty[inet.index()];
                if let FaultSite::GatePin(fg, fp) = fault.site {
                    if fg == gid && fp == p as u8 {
                        fv = V3::from_bool(fault.stuck);
                    }
                }
                fins[p] = fv;
            }
            let out = cc.output(gid);
            self.good[out.index()] = V3::eval_gate(cc.kind(gid), &gins[..n]);
            let mut fout = V3::eval_gate(cc.kind(gid), &fins[..n]);
            if let FaultSite::Stem(net) = fault.site {
                if net == out {
                    fout = V3::from_bool(fault.stuck);
                }
            }
            self.faulty[out.index()] = fout;
        }
    }

    fn error_observed(&self, fault: Fault) -> bool {
        match fault.site {
            // Observation-pin faults are detected as soon as the observed
            // net carries the complement of the stuck value.
            FaultSite::FfPin(_) | FaultSite::PoPin(_) => {
                self.good[self.site_net(fault).index()] == V3::from_bool(!fault.stuck)
            }
            _ => self.observables.iter().any(|&o| {
                let g = self.good[o.index()];
                let f = self.faulty[o.index()];
                g.is_known() && f.is_known() && g != f
            }),
        }
    }

    /// Picks the next objective `(net, value)`, or `None` to backtrack.
    fn objective(&self, fault: Fault) -> Option<(NetId, bool)> {
        let site = self.site_net(fault);
        let want = !fault.stuck;
        match self.good[site.index()] {
            V3::X => return Some((site, want)),
            v if v == V3::from_bool(fault.stuck) => return None,
            _ => {}
        }
        if matches!(fault.site, FaultSite::FfPin(_) | FaultSite::PoPin(_)) {
            // Excited observation-pin fault is already detected; being here
            // means excitation failed, which the arm above handled.
            return None;
        }
        // Fault excited: advance the D-frontier.
        self.d_frontier_objective(fault)
    }

    /// Finds a D-frontier gate with an X input and an X-path to an
    /// observable, and returns the objective that feeds it a
    /// non-controlling value.
    fn d_frontier_objective(&self, fault: Fault) -> Option<(NetId, bool)> {
        let cc = self.cc;
        let xpath = self.xpath_reach();
        for &gid in cc.schedule() {
            let out = cc.output(gid);
            let og = self.good[out.index()];
            let of = self.faulty[out.index()];
            // Output already resolved in both machines: not frontier.
            if og.is_known() && of.is_known() {
                continue;
            }
            if !xpath[out.index()] {
                continue;
            }
            let mut has_error_input = false;
            let mut x_input: Option<NetId> = None;
            for (p, &inet) in cc.inputs(gid).iter().enumerate() {
                let g = self.good[inet.index()];
                let mut f = self.faulty[inet.index()];
                if let FaultSite::GatePin(fg, fp) = fault.site {
                    if fg == gid && fp == p as u8 {
                        f = V3::from_bool(fault.stuck);
                    }
                }
                if g.is_known() && f.is_known() && g != f {
                    has_error_input = true;
                } else if g == V3::X && x_input.is_none() {
                    x_input = Some(inet);
                }
            }
            if has_error_input {
                if let Some(inet) = x_input {
                    let value = match cc.kind(gid).controlling_value() {
                        Some(c) => !c,
                        // XOR-class and buffers propagate for any binary
                        // side value; prefer 0.
                        None => false,
                    };
                    return Some((inet, value));
                }
            }
        }
        None
    }

    /// Nets from which an observable is reachable through composite-X nets.
    fn xpath_reach(&self) -> Vec<bool> {
        let cc = self.cc;
        let mut reach = vec![false; cc.num_nets()];
        let is_x = |net: NetId| {
            !(self.good[net.index()].is_known() && self.faulty[net.index()].is_known())
        };
        for &o in &self.observables {
            if is_x(o) {
                reach[o.index()] = true;
            }
        }
        // Single reverse-topological sweep (gates in reverse level order).
        for &gid in cc.schedule().iter().rev() {
            let out = cc.output(gid);
            if !reach[out.index()] || !is_x(out) {
                continue;
            }
            for &inet in cc.inputs(gid) {
                if is_x(inet) {
                    reach[inet.index()] = true;
                }
            }
        }
        reach
    }

    /// Walks an objective back to an unassigned input; `None` on dead end.
    fn backtrace(&self, mut net: NetId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            match self.nl.driver(net) {
                Driver::Pi(i) => {
                    return (self.assignment[i] == V3::X).then_some((i, value));
                }
                Driver::Ff(f) => {
                    let idx = self.cc.pis().len() + f.index();
                    return (self.assignment[idx] == V3::X).then_some((idx, value));
                }
                Driver::Gate(gid) => {
                    let kind = self.cc.kind(gid);
                    let base = if kind.inverts() { !value } else { value };
                    match kind {
                        atspeed_circuit::GateKind::Not | atspeed_circuit::GateKind::Buf => {
                            net = self.cc.inputs(gid)[0];
                            value = base;
                        }
                        atspeed_circuit::GateKind::Xor | atspeed_circuit::GateKind::Xnor => {
                            // Choose the easiest-to-control X input (SCOAP);
                            // aim for the parity implied by the known inputs.
                            let mut chosen: Option<NetId> = None;
                            let mut parity = false;
                            for &inet in self.cc.inputs(gid) {
                                match self.good[inet.index()] {
                                    V3::X => {
                                        let cost =
                                            |n: NetId| self.scoap.cc0(n).min(self.scoap.cc1(n));
                                        if chosen.is_none_or(|c| cost(inet) < cost(c)) {
                                            chosen = Some(inet);
                                        }
                                    }
                                    V3::One => parity = !parity,
                                    _ => {}
                                }
                            }
                            net = chosen?;
                            value = base ^ parity;
                        }
                        _ => {
                            let c = kind
                                .controlling_value()
                                .expect("AND/OR-class gate has a controlling value");
                            // If the base function must output its
                            // controlled value (0 for AND, 1 for OR), one
                            // controlling input suffices; otherwise every
                            // input must be non-controlling. Either way the
                            // next objective sets an X input.
                            let want_controlling = match kind {
                                atspeed_circuit::GateKind::And
                                | atspeed_circuit::GateKind::Nand => !base,
                                atspeed_circuit::GateKind::Or | atspeed_circuit::GateKind::Nor => {
                                    base
                                }
                                _ => unreachable!("XOR/NOT/BUF handled above"),
                            };
                            let target = if want_controlling { c } else { !c };
                            // SCOAP guidance: when one controlling input
                            // suffices, take the cheapest X input; when all
                            // inputs must be non-controlling, take the
                            // hardest first so infeasible goals fail fast.
                            let mut chosen: Option<NetId> = None;
                            for &inet in self.cc.inputs(gid) {
                                if self.good[inet.index()] != V3::X {
                                    continue;
                                }
                                let cost = self.scoap.cc(inet, target);
                                let better = match chosen {
                                    None => true,
                                    Some(cur) => {
                                        let cur_cost = self.scoap.cc(cur, target);
                                        if want_controlling {
                                            cost < cur_cost
                                        } else {
                                            cost > cur_cost
                                        }
                                    }
                                };
                                if better {
                                    chosen = Some(inet);
                                }
                            }
                            net = chosen?;
                            value = target;
                        }
                    }
                }
            }
        }
    }

    fn make_test(&self) -> CombTest {
        let n_pi = self.nl.num_pis();
        CombTest::new(
            self.assignment[n_pi..].to_vec(),
            self.assignment[..n_pi].to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::{GateKind, NetlistBuilder};
    use atspeed_sim::fault::FaultUniverse;
    use atspeed_sim::CombFaultSim;

    fn verify_test(nl: &Netlist, fault_id: atspeed_sim::FaultId, test: &CombTest) -> bool {
        let u = FaultUniverse::full(nl);
        let mut sim = CombFaultSim::new(nl);
        sim.detect_block(std::slice::from_ref(test), &[fault_id], &u)[0] & 1 != 0
    }

    #[test]
    fn generates_verified_tests_for_all_s27_faults() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let mut podem = Podem::new(&nl, PodemConfig::default());
        for &fid in u.representatives() {
            match podem.generate(u.fault(fid)) {
                PodemOutcome::Test(t) => {
                    assert!(
                        verify_test(&nl, fid, &t),
                        "generated test misses {}",
                        u.fault(fid).describe(&nl)
                    );
                }
                other => panic!(
                    "s27 fault {} should be testable, got {other:?}",
                    u.fault(fid).describe(&nl)
                ),
            }
        }
    }

    #[test]
    fn proves_redundant_fault_untestable() {
        // y = OR(a, NOT(a)) is constantly 1: y stuck-at-1 is untestable.
        let mut b = NetlistBuilder::new("red");
        b.input("a");
        b.gate(GateKind::Not, "an", &["a"]);
        b.gate(GateKind::Or, "y", &["a", "an"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let u = FaultUniverse::full(&nl);
        let y = nl.find_net("y").unwrap();
        let fid = u
            .all_ids()
            .find(|&id| {
                u.fault(id)
                    == Fault {
                        site: FaultSite::Stem(y),
                        stuck: true,
                    }
            })
            .unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::default());
        assert_eq!(podem.generate(u.fault(fid)), PodemOutcome::Untestable);
    }

    #[test]
    fn detects_testable_fault_in_redundant_circuit() {
        let mut b = NetlistBuilder::new("red2");
        b.input("a");
        b.input("b");
        b.gate(GateKind::Not, "an", &["a"]);
        b.gate(GateKind::Or, "t", &["a", "an"]);
        b.gate(GateKind::And, "y", &["t", "b"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let u = FaultUniverse::full(&nl);
        let bnet = nl.find_net("b").unwrap();
        let fid = u
            .all_ids()
            .find(|&id| {
                u.fault(id)
                    == Fault {
                        site: FaultSite::Stem(bnet),
                        stuck: false,
                    }
            })
            .unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::default());
        match podem.generate(u.fault(fid)) {
            PodemOutcome::Test(t) => assert!(verify_test(&nl, fid, &t)),
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn pseudo_inputs_are_assignable() {
        // A fault only excitable through the flip-flop state.
        let mut b = NetlistBuilder::new("st");
        b.input("a");
        b.dff("q", "d");
        b.gate(GateKind::And, "d", &["a", "q"]);
        b.gate(GateKind::Buf, "y", &["q"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let u = FaultUniverse::full(&nl);
        let q = nl.find_net("q").unwrap();
        let fid = u
            .all_ids()
            .find(|&id| {
                u.fault(id)
                    == Fault {
                        site: FaultSite::Stem(q),
                        stuck: false,
                    }
            })
            .unwrap();
        let mut podem = Podem::new(&nl, PodemConfig::default());
        match podem.generate(u.fault(fid)) {
            PodemOutcome::Test(t) => {
                assert_eq!(t.state[0], V3::One, "must scan in q=1 to excite q/0");
                assert!(verify_test(&nl, fid, &t));
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn synthetic_circuit_faults_are_mostly_testable() {
        use atspeed_circuit::synth::{generate, SynthSpec};
        let nl = generate(&SynthSpec::new("pt", 4, 2, 5, 80, 11)).unwrap();
        let u = FaultUniverse::full(&nl);
        let mut podem = Podem::new(&nl, PodemConfig::default());
        let mut tested = 0usize;
        let mut verified = 0usize;
        for &fid in u.representatives() {
            if let PodemOutcome::Test(t) = podem.generate(u.fault(fid)) {
                tested += 1;
                if verify_test(&nl, fid, &t) {
                    verified += 1;
                }
            }
        }
        assert!(tested > 0);
        assert_eq!(
            tested, verified,
            "every PODEM test must be confirmed by fault simulation"
        );
        // Synthetic circuits are largely irredundant.
        assert!(
            tested * 10 >= u.num_collapsed() * 8,
            "testable {tested}/{}",
            u.num_collapsed()
        );
    }
}
