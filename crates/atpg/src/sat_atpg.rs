//! SAT-based combinational test generation.
//!
//! A second, structurally independent ATPG engine used to cross-validate
//! [PODEM](crate::podem): the full-scan test-generation problem for one
//! stuck-at fault is encoded as a CNF *miter* — the fault-free circuit and
//! the faulty cone share the primary-input/pseudo-primary-input variables,
//! and at least one observation point must differ — and handed to the
//! in-tree [DPLL solver](crate::sat). SAT ⇒ the model's inputs are a test;
//! UNSAT ⇒ the fault is untestable. Both engines are complete, so their
//! testable/untestable verdicts must agree exactly (see the differential
//! tests).

use std::collections::HashMap;

use atspeed_circuit::{GateKind, NetId, Netlist, Sink};
use atspeed_sim::fault::{Fault, FaultSite};
use atspeed_sim::{CombTest, V3};

use crate::sat::{Lit, SatResult, Solver, Var};

/// Outcome of one SAT-ATPG run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatAtpgOutcome {
    /// A test was found (inputs the model leaves free are X).
    Test(CombTest),
    /// The miter is unsatisfiable: the fault is untestable.
    Untestable,
    /// The decision budget ran out.
    Aborted,
}

/// Configuration for [`SatAtpg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatAtpgConfig {
    /// Decision budget per fault.
    pub max_decisions: usize,
}

impl Default for SatAtpgConfig {
    fn default() -> Self {
        SatAtpgConfig {
            max_decisions: 200_000,
        }
    }
}

/// SAT-based test generator.
#[derive(Debug)]
pub struct SatAtpg<'a> {
    nl: &'a Netlist,
    cfg: SatAtpgConfig,
}

impl<'a> SatAtpg<'a> {
    /// Creates a generator for `nl`.
    pub fn new(nl: &'a Netlist, cfg: SatAtpgConfig) -> Self {
        SatAtpg { nl, cfg }
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&self, fault: Fault) -> SatAtpgOutcome {
        let nl = self.nl;
        let mut solver = Solver::new();

        // Good-circuit variables for every net.
        let good: Vec<Var> = (0..nl.num_nets()).map(|_| solver.new_var()).collect();
        for &gid in nl.topo_order() {
            let gate = nl.gate(gid);
            let ins: Vec<Lit> = gate
                .inputs()
                .iter()
                .map(|i| Lit::pos(good[i.index()]))
                .collect();
            encode_gate(&mut solver, gate.kind(), good[gate.output().index()], &ins);
        }

        // Observation-pin faults reduce to a value requirement on the net.
        match fault.site {
            FaultSite::FfPin(ff) => {
                let net = nl.ff(ff).d();
                solver.add_clause([Lit::with_sign(good[net.index()], !fault.stuck)]);
                return self.finish(&mut solver, &good);
            }
            FaultSite::PoPin(po) => {
                let net = nl.pos()[po.index()];
                solver.add_clause([Lit::with_sign(good[net.index()], !fault.stuck)]);
                return self.finish(&mut solver, &good);
            }
            _ => {}
        }

        // Faulty cone: fresh variables only for nets reachable from the
        // fault site; everything else aliases the good variable.
        let cone = fanout_cone(nl, fault);
        let mut faulty: HashMap<NetId, Var> = HashMap::new();
        for &net in &cone {
            faulty.insert(net, solver.new_var());
        }
        let flit = |n: NetId, faulty: &HashMap<NetId, Var>| -> Lit {
            Lit::pos(*faulty.get(&n).unwrap_or(&good[n.index()]))
        };

        match fault.site {
            FaultSite::Stem(site) => {
                // The faulty site holds the stuck value; excitation forces
                // the good value to its complement.
                solver.add_clause([Lit::with_sign(
                    *faulty.get(&site).expect("site is in its own cone"),
                    fault.stuck,
                )]);
                solver.add_clause([Lit::with_sign(good[site.index()], !fault.stuck)]);
            }
            FaultSite::GatePin(fg, fp) => {
                // The faulty gate sees a constant on the faulted pin; its
                // output net is the cone root. Excitation forces the true
                // pin value to the complement of the stuck value.
                let gate = nl.gate(fg);
                let root = gate.output();
                let pin_net = gate.inputs()[fp as usize];
                solver.add_clause([Lit::with_sign(good[pin_net.index()], !fault.stuck)]);
                let const_var = solver.new_var();
                solver.add_clause([Lit::with_sign(const_var, fault.stuck)]);
                let ins: Vec<Lit> = gate
                    .inputs()
                    .iter()
                    .enumerate()
                    .map(|(p, &inet)| {
                        if p == fp as usize {
                            Lit::pos(const_var)
                        } else {
                            flit(inet, &faulty)
                        }
                    })
                    .collect();
                encode_gate(
                    &mut solver,
                    gate.kind(),
                    *faulty.get(&root).expect("root in cone"),
                    &ins,
                );
            }
            _ => unreachable!("observation pins handled above"),
        }

        // Encode every gate whose output lies in the cone (inputs read the
        // faulty variable where one exists, the good one otherwise). The
        // constant stem and the pin-fault root are already constrained.
        for &gid in nl.topo_order() {
            let gate = nl.gate(gid);
            let out = gate.output();
            if !faulty.contains_key(&out) {
                continue;
            }
            if let FaultSite::GatePin(fg, _) = fault.site {
                if fg == gid {
                    continue;
                }
            }
            if let FaultSite::Stem(site) = fault.site {
                if site == out {
                    continue;
                }
            }
            let ins: Vec<Lit> = gate
                .inputs()
                .iter()
                .map(|&inet| flit(inet, &faulty))
                .collect();
            encode_gate(&mut solver, gate.kind(), faulty[&out], &ins);
        }

        // Miter: at least one observed net in the cone differs.
        let mut diff_lits = Vec::new();
        let mut cone_sorted: Vec<NetId> = cone.clone();
        cone_sorted.sort_unstable();
        for net in cone_sorted {
            let fvar = faulty[&net];
            let observed = nl
                .fanouts(net)
                .iter()
                .any(|s| matches!(s, Sink::Po(_) | Sink::FfD(_)));
            if !observed {
                continue;
            }
            // d <-> (g xor f)
            let d = solver.new_var();
            encode_xor2(
                &mut solver,
                Lit::pos(d),
                Lit::pos(good[net.index()]),
                Lit::pos(fvar),
            );
            diff_lits.push(Lit::pos(d));
        }
        if diff_lits.is_empty() {
            return SatAtpgOutcome::Untestable;
        }
        solver.add_clause(diff_lits);

        self.finish(&mut solver, &good)
    }

    fn finish(&self, solver: &mut Solver, good: &[Var]) -> SatAtpgOutcome {
        match solver.solve(self.cfg.max_decisions) {
            SatResult::Unsat => SatAtpgOutcome::Untestable,
            SatResult::Unknown => SatAtpgOutcome::Aborted,
            SatResult::Sat => {
                let nl = self.nl;
                let value_of = |net: NetId| -> V3 {
                    match solver.value(good[net.index()]) {
                        Some(true) => V3::One,
                        Some(false) => V3::Zero,
                        None => V3::X,
                    }
                };
                SatAtpgOutcome::Test(CombTest::new(
                    nl.ffs().iter().map(|ff| value_of(ff.q())).collect(),
                    nl.pis().iter().map(|&pi| value_of(pi)).collect(),
                ))
            }
        }
    }
}

/// Nets whose value can differ under the fault: forward reachable from the
/// fault site (for a stem fault, the site itself; for a pin fault, the
/// consuming gate's output).
fn fanout_cone(nl: &Netlist, fault: Fault) -> Vec<NetId> {
    let mut roots = Vec::new();
    match fault.site {
        FaultSite::Stem(n) => roots.push(n),
        FaultSite::GatePin(g, _) => roots.push(nl.gate(g).output()),
        FaultSite::FfPin(_) | FaultSite::PoPin(_) => return Vec::new(),
    }
    let mut in_cone = vec![false; nl.num_nets()];
    let mut stack = roots;
    let mut cone = Vec::new();
    while let Some(net) = stack.pop() {
        if in_cone[net.index()] {
            continue;
        }
        in_cone[net.index()] = true;
        cone.push(net);
        for &sink in nl.fanouts(net) {
            if let Sink::GatePin(g, _) = sink {
                stack.push(nl.gate(g).output());
            }
        }
    }
    cone
}

/// Tseitin encoding of `out = kind(ins)`.
fn encode_gate(solver: &mut Solver, kind: GateKind, out: Var, ins: &[Lit]) {
    let out_pos = Lit::pos(out);
    let out_neg = Lit::neg(out);
    match kind {
        GateKind::Buf => {
            solver.add_clause([out_neg, ins[0]]);
            solver.add_clause([out_pos, ins[0].negate()]);
        }
        GateKind::Not => {
            solver.add_clause([out_neg, ins[0].negate()]);
            solver.add_clause([out_pos, ins[0]]);
        }
        GateKind::And | GateKind::Nand => {
            let o = if kind == GateKind::And {
                out_pos
            } else {
                out_neg
            };
            let no = o.negate();
            // o -> every input; (all inputs) -> o.
            for &i in ins {
                solver.add_clause([no, i]);
            }
            let mut cl: Vec<Lit> = ins.iter().map(|l| l.negate()).collect();
            cl.push(o);
            solver.add_clause(cl);
        }
        GateKind::Or | GateKind::Nor => {
            let o = if kind == GateKind::Or {
                out_pos
            } else {
                out_neg
            };
            let no = o.negate();
            for &i in ins {
                solver.add_clause([o, i.negate()]);
            }
            let mut cl: Vec<Lit> = ins.to_vec();
            cl.push(no);
            solver.add_clause(cl);
        }
        GateKind::Xor | GateKind::Xnor => {
            let o = if kind == GateKind::Xor {
                out_pos
            } else {
                out_neg
            };
            if ins.len() == 1 {
                // Single-input XOR behaves as a buffer.
                solver.add_clause([o.negate(), ins[0]]);
                solver.add_clause([o, ins[0].negate()]);
                return;
            }
            // Chain binary XORs through auxiliary variables.
            let mut acc = ins[0];
            for &next in &ins[1..ins.len() - 1] {
                let t = solver.new_var();
                encode_xor2(solver, Lit::pos(t), acc, next);
                acc = Lit::pos(t);
            }
            encode_xor2(solver, o, acc, ins[ins.len() - 1]);
        }
    }
}

/// `o <-> a xor b` for arbitrary literals.
fn encode_xor2(solver: &mut Solver, o: Lit, a: Lit, b: Lit) {
    solver.add_clause([o.negate(), a, b]);
    solver.add_clause([o.negate(), a.negate(), b.negate()]);
    solver.add_clause([o, a.negate(), b]);
    solver.add_clause([o, a, b.negate()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::podem::{Podem, PodemConfig, PodemOutcome};
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::synth::{generate, SynthSpec};
    use atspeed_sim::fault::FaultUniverse;
    use atspeed_sim::CombFaultSim;

    fn verify(nl: &Netlist, fid: atspeed_sim::FaultId, t: &CombTest) -> bool {
        let u = FaultUniverse::full(nl);
        let mut sim = CombFaultSim::new(nl);
        sim.detect_block(std::slice::from_ref(t), &[fid], &u)[0] & 1 != 0
    }

    #[test]
    fn generates_verified_tests_for_all_s27_faults() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let atpg = SatAtpg::new(&nl, SatAtpgConfig::default());
        for &fid in u.representatives() {
            match atpg.generate(u.fault(fid)) {
                SatAtpgOutcome::Test(t) => {
                    assert!(
                        verify(&nl, fid, &t),
                        "SAT test misses {}",
                        u.fault(fid).describe(&nl)
                    );
                }
                other => panic!(
                    "s27 fault {} should be SAT-testable, got {other:?}",
                    u.fault(fid).describe(&nl)
                ),
            }
        }
    }

    #[test]
    fn agrees_with_podem_on_testability() {
        // Both engines are complete: their testable/untestable verdicts
        // must coincide on every fault of a random circuit.
        let nl = generate(&SynthSpec::new("satdiff", 4, 2, 5, 60, 23)).unwrap();
        let u = FaultUniverse::full(&nl);
        let sat = SatAtpg::new(&nl, SatAtpgConfig::default());
        let mut podem = Podem::new(
            &nl,
            PodemConfig {
                backtrack_limit: 100_000,
            },
        );
        for &fid in u.representatives() {
            let sat_testable = match sat.generate(u.fault(fid)) {
                SatAtpgOutcome::Test(t) => {
                    assert!(verify(&nl, fid, &t));
                    Some(true)
                }
                SatAtpgOutcome::Untestable => Some(false),
                SatAtpgOutcome::Aborted => None,
            };
            let podem_testable = match podem.generate(u.fault(fid)) {
                PodemOutcome::Test(_) => Some(true),
                PodemOutcome::Untestable => Some(false),
                PodemOutcome::Aborted => None,
            };
            if let (Some(a), Some(b)) = (sat_testable, podem_testable) {
                assert_eq!(a, b, "engines disagree on {}", u.fault(fid).describe(&nl));
            }
        }
    }

    #[test]
    fn proves_redundancy_via_unsat() {
        use atspeed_circuit::NetlistBuilder;
        let mut b = NetlistBuilder::new("red");
        b.input("a");
        b.gate(GateKind::Not, "an", &["a"]);
        b.gate(GateKind::Or, "y", &["a", "an"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let u = FaultUniverse::full(&nl);
        let y = nl.find_net("y").unwrap();
        let fid = u
            .all_ids()
            .find(|&id| {
                u.fault(id)
                    == Fault {
                        site: FaultSite::Stem(y),
                        stuck: true,
                    }
            })
            .unwrap();
        let atpg = SatAtpg::new(&nl, SatAtpgConfig::default());
        assert_eq!(atpg.generate(u.fault(fid)), SatAtpgOutcome::Untestable);
    }

    #[test]
    fn handles_observation_pin_faults() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let atpg = SatAtpg::new(&nl, SatAtpgConfig::default());
        let ffpin: Vec<_> = u
            .all_ids()
            .filter(|&id| matches!(u.fault(id).site, FaultSite::FfPin(_)))
            .collect();
        assert!(!ffpin.is_empty());
        for fid in ffpin {
            match atpg.generate(u.fault(fid)) {
                SatAtpgOutcome::Test(t) => assert!(verify(&nl, fid, &t)),
                other => panic!("FF pin fault should be testable: {other:?}"),
            }
        }
    }
}
