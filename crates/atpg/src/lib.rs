//! Test generation substrates: combinational ATPG (PODEM) and sequential
//! test-sequence generation.
//!
//! The paper consumes two external artifacts that this crate re-creates from
//! scratch:
//!
//! - a compact, complete **combinational test set `C`** (the paper cites
//!   \[9\]) — produced here by random-pattern seeding, a [PODEM](podem)
//!   implementation for the random-resistant residue, and reverse-order
//!   fault-simulation compaction ([`comb_tset`]);
//! - a **sequential test sequence `T_0`** generated without scan (the paper
//!   uses STRATEGATE \[10\] and PROPTEST \[12\]) — stood in for by the
//!   simulation-based generators in [`seq_tgen`], plus the plain random
//!   sequences used in the paper's Table 5.
//!
//! The [`compact`] module carries sequence compaction by vector omission
//! (the paper's Phase 2 cites \[8\]), shared with the core pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comb_tset;
pub mod compact;
mod error;
pub mod podem;
pub mod restore;
pub mod sat;
pub mod sat_atpg;
pub mod scoap;
pub mod seq_tgen;

pub use comb_tset::{CombTestSet, CombTsetConfig, DeterministicEngine};
pub use error::AtpgError;
pub use podem::{Podem, PodemConfig, PodemOutcome};
pub use restore::{restore_vectors, RestorationConfig, RestorationStats};
pub use sat::{SatResult, Solver};
pub use sat_atpg::{SatAtpg, SatAtpgConfig, SatAtpgOutcome};
pub use scoap::Scoap;
pub use seq_tgen::{
    directed_t0, property_t0, random_t0, DirectedConfig, IncrementalSim, PropertyConfig,
};
