//! Property-based tests for the test-generation substrates.

use atspeed_atpg::compact::{omit_vectors, OmissionConfig};
use atspeed_atpg::podem::{Podem, PodemConfig, PodemOutcome};
use atspeed_atpg::{directed_t0, property_t0, random_t0, DirectedConfig, PropertyConfig};
use atspeed_circuit::synth::{generate, SynthSpec};
use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{CombFaultSim, SeqFaultSim, Sequence, V3};
use proptest::prelude::*;

fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..6, 1usize..4, 1usize..7, 8usize..60, any::<u64>()).prop_map(
        |(pis, pos, ffs, gates, seed)| {
            generate(&SynthSpec::new("prop", pis, pos, ffs, gates, seed)).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every test PODEM produces is confirmed by fault simulation, and the
    /// three outcomes partition the fault list.
    #[test]
    fn podem_tests_verify_by_simulation(nl in arb_netlist()) {
        let u = FaultUniverse::full(&nl);
        let mut podem = Podem::new(&nl, PodemConfig::default());
        let mut csim = CombFaultSim::new(&nl);
        for &fid in u.representatives().iter().take(40) {
            match podem.generate(u.fault(fid)) {
                PodemOutcome::Test(t) => {
                    let m = csim.detect_block(std::slice::from_ref(&t), &[fid], &u);
                    prop_assert!(m[0] & 1 != 0, "unverified test for {}",
                        u.fault(fid).describe(&nl));
                }
                PodemOutcome::Untestable | PodemOutcome::Aborted => {}
            }
        }
    }

    /// Vector omission never loses a target fault, never grows the
    /// sequence, and is deterministic.
    #[test]
    fn omission_is_sound(nl in arb_netlist(), seed in any::<u64>(), len in 4usize..24) {
        let u = FaultUniverse::full(&nl);
        let seq = random_t0(&nl, len, seed);
        let init: Vec<V3> = vec![V3::Zero; nl.num_ffs()];
        let mut fsim = SeqFaultSim::new(&nl);
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let det = fsim.detect(&init, &seq, &reps, &u, true);
        let targets: Vec<FaultId> = reps
            .iter()
            .zip(det.iter())
            .filter(|(_, &d)| d)
            .map(|(&f, _)| f)
            .collect();
        let (short, stats) =
            omit_vectors(&nl, &u, &init, &seq, &targets, true, OmissionConfig::default());
        prop_assert!(short.len() <= seq.len());
        prop_assert_eq!(stats.removed, seq.len() - short.len());
        if !targets.is_empty() {
            let after = fsim.detect(&init, &short, &targets, &u, true);
            prop_assert!(after.iter().all(|&d| d), "omission lost a fault");
        }
        let (short2, _) =
            omit_vectors(&nl, &u, &init, &seq, &targets, true, OmissionConfig::default());
        prop_assert_eq!(short, short2, "omission must be deterministic");
    }

    /// All T0 generators emit fully-specified vectors of the right width
    /// and respect their length caps.
    #[test]
    fn t0_generators_respect_contracts(nl in arb_netlist(), seed in any::<u64>()) {
        let u = FaultUniverse::full(&nl);
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let check = |seq: &Sequence, cap: usize| {
            assert!(seq.len() <= cap, "length cap violated");
            for v in seq.iter() {
                assert_eq!(v.len(), nl.num_pis());
                assert!(v.iter().all(|x| x.is_known()), "X in generated vector");
            }
        };
        check(&random_t0(&nl, 33, seed), 33);
        let d = directed_t0(&nl, &u, &targets, &DirectedConfig {
            max_len: 40,
            seed,
            ..DirectedConfig::default()
        });
        check(&d, 40);
        let p = property_t0(&nl, &u, &targets, &PropertyConfig {
            max_len: 40,
            burst: 8,
            seed,
            ..PropertyConfig::default()
        });
        check(&p, 40);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// PODEM and the SAT engine are both complete: on any random circuit
    /// their testable/untestable verdicts agree fault by fault (aborts,
    /// which neither should hit at these budgets, are excused).
    #[test]
    fn podem_and_sat_atpg_agree(nl in arb_netlist()) {
        use atspeed_atpg::sat_atpg::{SatAtpg, SatAtpgConfig, SatAtpgOutcome};
        let u = FaultUniverse::full(&nl);
        let sat = SatAtpg::new(&nl, SatAtpgConfig::default());
        let mut podem = Podem::new(&nl, PodemConfig { backtrack_limit: 100_000 });
        for &fid in u.representatives().iter().take(60) {
            let s = match sat.generate(u.fault(fid)) {
                SatAtpgOutcome::Test(_) => Some(true),
                SatAtpgOutcome::Untestable => Some(false),
                SatAtpgOutcome::Aborted => None,
            };
            let p = match podem.generate(u.fault(fid)) {
                PodemOutcome::Test(_) => Some(true),
                PodemOutcome::Untestable => Some(false),
                PodemOutcome::Aborted => None,
            };
            if let (Some(a), Some(b)) = (s, p) {
                prop_assert_eq!(a, b, "disagree on {}", u.fault(fid).describe(&nl));
            }
        }
    }
}
