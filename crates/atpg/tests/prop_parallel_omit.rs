//! Determinism of the parallel speculative omission engine: at any thread
//! count the compacted sequence — and every statistic except the
//! speculation-waste counter — must be bit-for-bit identical to the serial
//! sweep, including runs that exhaust the attempt budget mid-sweep.

use atspeed_atpg::compact::{omit_vectors, OmissionConfig, OmissionStats};
use atspeed_atpg::random_t0;
use atspeed_circuit::catalog;
use atspeed_circuit::synth::{generate, SynthSpec};
use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{SeqFaultSim, Sequence, SimConfig, State, V3};
use proptest::prelude::*;

fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..6, 1usize..4, 1usize..7, 8usize..60, any::<u64>()).prop_map(
        |(pis, pos, ffs, gates, seed)| {
            generate(&SynthSpec::new("prop", pis, pos, ffs, gates, seed)).unwrap()
        },
    )
}

fn detected_targets(nl: &Netlist, u: &FaultUniverse, init: &State, seq: &Sequence) -> Vec<FaultId> {
    let mut fsim = SeqFaultSim::new(nl);
    let reps: Vec<FaultId> = u.representatives().to_vec();
    let det = fsim.detect(init, seq, &reps, u, true);
    reps.iter()
        .zip(det.iter())
        .filter(|(_, &d)| d)
        .map(|(&f, _)| f)
        .collect()
}

/// All stats except `wasted`, which is the one field allowed to depend on
/// the thread count.
fn deterministic_stats(s: OmissionStats) -> (usize, usize, usize, usize) {
    (s.attempts, s.removed, s.sweeps, s.accepted)
}

fn assert_parallel_matches_serial(
    nl: &Netlist,
    u: &FaultUniverse,
    init: &State,
    seq: &Sequence,
    targets: &[FaultId],
    base: OmissionConfig,
) {
    let serial_cfg = OmissionConfig {
        sim: SimConfig::with_threads(1),
        ..base
    };
    let (serial, sstats) = omit_vectors(nl, u, init, seq, targets, true, serial_cfg);
    assert_eq!(sstats.wasted, 0, "serial sweeps never speculate");
    for threads in [2, 4] {
        let cfg = OmissionConfig {
            sim: SimConfig::with_threads(threads),
            ..base
        };
        let (par, pstats) = omit_vectors(nl, u, init, seq, targets, true, cfg);
        assert_eq!(par, serial, "threads={threads}: sequences diverged");
        assert_eq!(
            deterministic_stats(pstats),
            deterministic_stats(sstats),
            "threads={threads}: stats diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits, random sequences, unlimited budget: identical
    /// compacted sequences and stats at 1/2/4 threads.
    #[test]
    fn parallel_omission_matches_serial(
        nl in arb_netlist(),
        seed in any::<u64>(),
        len in 4usize..24,
    ) {
        let u = FaultUniverse::full(&nl);
        let seq = random_t0(&nl, len, seed);
        let init: Vec<V3> = vec![V3::Zero; nl.num_ffs()];
        let targets = detected_targets(&nl, &u, &init, &seq);
        assert_parallel_matches_serial(
            &nl, &u, &init, &seq, &targets, OmissionConfig::default(),
        );
    }

    /// Budget exhaustion mid-sweep must cut the parallel engine off at the
    /// exact attempt where the serial loop stops.
    #[test]
    fn parallel_omission_matches_serial_under_budget(
        nl in arb_netlist(),
        seed in any::<u64>(),
        len in 4usize..24,
        budget in 1usize..12,
    ) {
        let u = FaultUniverse::full(&nl);
        let seq = random_t0(&nl, len, seed);
        let init: Vec<V3> = vec![V3::Zero; nl.num_ffs()];
        // Use the full representative set (not just detected faults) so
        // rejections are common and the budget bites mid-sweep.
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let base = OmissionConfig {
            attempt_budget: budget,
            ..OmissionConfig::default()
        };
        assert_parallel_matches_serial(&nl, &u, &init, &seq, &targets, base);
        let (_, stats) = omit_vectors(
            &nl, &u, &init, &seq, &targets, true,
            OmissionConfig { sim: SimConfig::with_threads(4), ..base },
        );
        prop_assert!(stats.attempts <= budget);
    }

    /// Singles-only and chunked-only schedules stay deterministic too.
    #[test]
    fn parallel_omission_matches_serial_across_schedules(
        nl in arb_netlist(),
        seed in any::<u64>(),
        len in 4usize..20,
        chunked in any::<bool>(),
        max_passes in 0usize..3,
    ) {
        let u = FaultUniverse::full(&nl);
        let seq = random_t0(&nl, len, seed);
        let init: Vec<V3> = vec![V3::Zero; nl.num_ffs()];
        let targets = detected_targets(&nl, &u, &init, &seq);
        let base = OmissionConfig {
            chunked,
            max_passes,
            ..OmissionConfig::default()
        };
        assert_parallel_matches_serial(&nl, &u, &init, &seq, &targets, base);
    }
}

/// Catalog circuits (real ISCAS-89/ITC-99 structures, not synthetic):
/// identical results at 1/2/4 threads, with and without a tight budget.
#[test]
fn parallel_omission_matches_serial_on_catalog_circuits() {
    for name in ["s298", "s344", "s382", "b01", "b06"] {
        let nl = catalog::by_name(name).unwrap().instantiate();
        let u = FaultUniverse::full(&nl);
        let seq = random_t0(&nl, 32, 0xC0FFEE);
        let init: Vec<V3> = vec![V3::Zero; nl.num_ffs()];
        let targets = detected_targets(&nl, &u, &init, &seq);
        if targets.is_empty() {
            continue;
        }
        assert_parallel_matches_serial(&nl, &u, &init, &seq, &targets, OmissionConfig::default());
        assert_parallel_matches_serial(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            OmissionConfig {
                attempt_budget: 7,
                ..OmissionConfig::default()
            },
        );
    }
}
