//! Phase 1: deriving a scan-based test from the test sequence `T_0`.
//!
//! Given `T_0` (generated without scan), Phase 1:
//!
//! 1. uses the set `F_0` of faults `T_0` already detects without scan
//!    (computed by the caller, since the iteration loop reuses it);
//! 2. **Step 2** — selects the scan-in state `SI` among the state parts of
//!    the combinational test set `C` that maximizes the faults detected by
//!    `τ_SI = (SI, T_0)` over `F − F_0`, preferring *unselected* candidates
//!    (the iteration-termination rule of the paper's Section 3.3);
//! 3. **Step 3** — selects the earliest scan-out time `u_SO` such that the
//!    prefix test `τ_SO = (SI, T_0[0, u_SO])` still detects every fault in
//!    `F_SI` (the paper's `i₀` rule: smallest prefix, no fault given up).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{stats, CombTest, ParallelFsim, SeqFaultSim, Sequence, SimConfig, State};

use crate::error::CoreError;
use crate::test::ScanTest;

/// How the scan-out time unit is selected in Step 3 (the paper's `i₀`
/// versus `i₁` discussion at the end of Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanOutRule {
    /// The paper's choice `i₀`: the smallest `i` whose prefix test detects
    /// every fault of `F_SI`. Produces the shortest sequences.
    #[default]
    EarliestComplete,
    /// The paper's rejected alternative `i₁`: among prefixes detecting all
    /// of `F_SI`, the one detecting the most target faults overall
    /// (smallest `i` on ties). The paper reports it yields significantly
    /// longer sequences for a marginal detection gain — kept here so the
    /// ablation is reproducible.
    MaxDetectEarliest,
}

/// Configuration for [`select_scan_test`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Phase1Config {
    /// Consider at most this many scan-in candidates (`None` = all of `C`).
    pub max_candidates: Option<usize>,
    /// Score candidates on at most this many faults of `F − F_0` (`None` =
    /// all). The winner is always re-simulated on the full set, so `F_SI`
    /// stays exact; only the *ranking* is sampled. Large circuits use this
    /// to keep Step 2 linear in the sample instead of the fault count.
    pub score_sample: Option<usize>,
    /// Scan-out time selection rule (Step 3).
    pub scan_out_rule: ScanOutRule,
    /// Threading for the candidate scoring and profile simulations. The
    /// default (1 thread) reproduces the single-threaded behavior
    /// bit-for-bit; more threads score candidates concurrently and shard
    /// the winner's full-set simulations, with identical results.
    pub sim: SimConfig,
}

/// Result of Phase 1.
#[derive(Debug, Clone)]
pub struct Phase1Result {
    /// Index into the candidate list of the chosen scan-in state.
    pub si_index: usize,
    /// Whether the chosen candidate was already marked selected.
    pub reused_selected: bool,
    /// The scan-based test `τ_SO = (SI, T_SO)`.
    pub test: ScanTest,
    /// The chosen scan-out time unit `u_SO` (`T_SO = T_0[0, u_SO]`).
    pub u_so: usize,
    /// Faults detected by `τ_SO = (SI, T_SO)` — the paper's `F_SO`, the
    /// target set Phase 2 must preserve. Under the default `i₀` rule this
    /// equals `F_SI`; under `i₁` it may be a superset. Ordered by earliest
    /// detection time so downstream fault-simulation groups exit early.
    pub f_so: Vec<FaultId>,
}

/// Runs Phase 1 Steps 2 and 3.
///
/// `f0` are the faults detected by `t0` without scan; `rest` is `F − F_0`
/// (the faults simulated per candidate); `selected` marks candidates chosen
/// in earlier iterations.
///
/// # Errors
///
/// Returns [`CoreError::EmptyT0`] when `t0` is empty,
/// [`CoreError::SelectedMarksTooShort`] when `selected` covers fewer
/// entries than `candidates`, and [`CoreError::NoScanInCandidates`] when
/// there are no candidates to pick from — malformed inputs surface as
/// errors instead of aborting a long pipeline run.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Phase 1 inputs
pub fn select_scan_test(
    nl: &Netlist,
    universe: &FaultUniverse,
    t0: &Sequence,
    candidates: &[CombTest],
    f0: &[FaultId],
    rest: &[FaultId],
    selected: &[bool],
    cfg: Phase1Config,
) -> Result<Phase1Result, CoreError> {
    if t0.is_empty() {
        return Err(CoreError::EmptyT0);
    }
    if selected.len() < candidates.len() {
        return Err(CoreError::SelectedMarksTooShort {
            marks: selected.len(),
            candidates: candidates.len(),
        });
    }
    if candidates.is_empty() {
        return Err(CoreError::NoScanInCandidates);
    }
    let limit = cfg.max_candidates.unwrap_or(candidates.len());

    // Step 2: pick SI maximizing |F_j| over F - F_0, preferring unselected
    // candidates on ties *and* whenever an unselected candidate achieves the
    // same best coverage (only a strictly better selected candidate wins).
    // Ranking may run on a sample of the fault set; the winner is then
    // re-simulated on the full set.
    let sample: &[FaultId] = match cfg.score_sample {
        Some(cap) if cap < rest.len() => &rest[..cap],
        _ => rest,
    };
    // Candidates are scored independently, so they shard across workers;
    // the selection below runs over the same counts either way.
    let counts = score_candidates(nl, universe, t0, candidates, sample, limit, cfg.sim);
    let mut best_unsel: Option<(usize, usize)> = None;
    let mut best_sel: Option<(usize, usize)> = None;
    for (j, &count) in counts.iter().enumerate() {
        let slot = if selected[j] {
            &mut best_sel
        } else {
            &mut best_unsel
        };
        if slot.as_ref().is_none_or(|(_, c0)| count > *c0) {
            *slot = Some((j, count));
        }
    }
    let (si_index, reused_selected) = match (best_unsel, best_sel) {
        (Some((ju, cu)), Some((js, cs))) => {
            if cs > cu {
                (js, true)
            } else {
                (ju, false)
            }
        }
        (Some((ju, _)), None) => (ju, false),
        (None, Some((js, _))) => (js, true),
        (None, None) => return Err(CoreError::NoScanInCandidates),
    };

    let fsim = ParallelFsim::new(nl, cfg.sim);
    let si = candidates[si_index].state.clone();
    let det = fsim.detect(&si, t0, rest, universe, true);
    let fj = rest
        .iter()
        .zip(det.iter())
        .filter(|(_, &d)| d)
        .map(|(&f, _)| f);
    let mut f_si: Vec<FaultId> = f0.to_vec();
    f_si.extend(fj);

    // Step 3: select the scan-out time unit and the preserved set F_SO.
    let profiles = fsim.profiles(&si, t0, &f_si, universe);
    let complete_at = |i: usize| profiles.iter().all(|p| p.detected_by_prefix(i));
    let (u_so, mut keyed): (usize, Vec<(u32, FaultId)>) = match cfg.scan_out_rule {
        // i₀: earliest prefix that loses no fault of F_SI; F_SO = F_SI.
        ScanOutRule::EarliestComplete => {
            let u_so = (0..t0.len())
                .find(|&i| complete_at(i))
                .unwrap_or(t0.len() - 1);
            let keyed = f_si
                .iter()
                .zip(profiles.iter())
                .map(|(&f, p)| (p.earliest_detection().unwrap_or(u32::MAX), f))
                .collect();
            (u_so, keyed)
        }
        // i₁: among complete prefixes, the one detecting the most target
        // faults overall (earliest on ties); F_SO is everything the chosen
        // prefix detects.
        ScanOutRule::MaxDetectEarliest => {
            let mut all_targets: Vec<FaultId> = f0.to_vec();
            all_targets.extend(rest.iter().copied());
            let all_profiles = fsim.profiles(&si, t0, &all_targets, universe);
            let mut best: Option<(usize, usize)> = None; // (count, i)
            for i in 0..t0.len() {
                if !complete_at(i) {
                    continue;
                }
                let count = all_profiles
                    .iter()
                    .filter(|p| p.detected_by_prefix(i))
                    .count();
                if best.is_none_or(|(c, _)| count > c) {
                    best = Some((count, i));
                }
            }
            let u_so = best.map_or(t0.len() - 1, |(_, i)| i);
            let keyed = all_targets
                .iter()
                .zip(all_profiles.iter())
                .filter(|(_, p)| p.detected_by_prefix(u_so))
                .map(|(&f, p)| (p.earliest_detection().unwrap_or(u32::MAX), f))
                .collect();
            (u_so, keyed)
        }
    };

    // Order F_SO by earliest detection time. Downstream fault simulations
    // (Phase 2's omission checks in particular) group faults 63 at a time
    // and stop a group as soon as all its members are caught — grouping
    // faults with similar detection times lets most groups exit early.
    keyed.sort_unstable();
    let f_so: Vec<FaultId> = keyed.into_iter().map(|(_, f)| f).collect();

    Ok(Phase1Result {
        si_index,
        reused_selected,
        test: ScanTest::new(si, t0.prefix(u_so)),
        u_so,
        f_so,
    })
}

/// Scores the first `limit` candidates: how many of `sample` the test
/// `(candidate state, t0)` detects. Candidates shard across workers (each
/// scoring simulation is independent), so the counts — and therefore the
/// Step 2 selection — match the serial loop exactly.
fn score_candidates(
    nl: &Netlist,
    universe: &FaultUniverse,
    t0: &Sequence,
    candidates: &[CombTest],
    sample: &[FaultId],
    limit: usize,
    sim: SimConfig,
) -> Vec<usize> {
    let n = limit.min(candidates.len());
    let score = |fsim: &mut SeqFaultSim, si: &State| {
        fsim.detect(si, t0, sample, universe, true)
            .iter()
            .filter(|&&d| d)
            .count()
    };
    let threads = sim.effective_threads(n);
    if threads <= 1 {
        let mut fsim = SeqFaultSim::new(nl);
        return candidates
            .iter()
            .take(n)
            .map(|c| score(&mut fsim, &c.state))
            .collect();
    }
    let counts: Mutex<Vec<usize>> = Mutex::new(vec![0; n]);
    let next = AtomicUsize::new(0);
    // Workers join the spawning thread's stats scope; the enter guard
    // flushes their batched partition tallies once, on exit.
    let h = stats::handle();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let _g = h.enter();
                let mut fsim = SeqFaultSim::new(nl);
                loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= n {
                        break;
                    }
                    let _sp = atspeed_trace::span("phase1.score.claim");
                    let started = std::time::Instant::now();
                    let c = score(&mut fsim, &candidates[j].state);
                    stats::record_partition(started.elapsed());
                    counts.lock().unwrap_or_else(|e| e.into_inner())[j] = c;
                }
            });
        }
    });
    counts.into_inner().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_atpg::random_t0;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_sim::V3;

    fn setup() -> (
        atspeed_circuit::Netlist,
        FaultUniverse,
        Sequence,
        Vec<CombTest>,
    ) {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let t0 = random_t0(&nl, 40, 5);
        // Candidate scan-in states: all 8 states with a fixed input part.
        let candidates: Vec<CombTest> = (0..8u32)
            .map(|st| {
                CombTest::new(
                    (0..3).map(|b| V3::from_bool(st & (1 << b) != 0)).collect(),
                    vec![V3::Zero; 4],
                )
            })
            .collect();
        (nl, u, t0, candidates)
    }

    fn split_f0(
        nl: &atspeed_circuit::Netlist,
        u: &FaultUniverse,
        t0: &Sequence,
    ) -> (Vec<FaultId>, Vec<FaultId>) {
        let mut fsim = SeqFaultSim::new(nl);
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let init = vec![V3::X; nl.num_ffs()];
        let det = fsim.detect(&init, t0, &reps, u, false);
        let f0 = reps
            .iter()
            .zip(det.iter())
            .filter(|(_, &d)| d)
            .map(|(&f, _)| f)
            .collect();
        let rest = reps
            .iter()
            .zip(det.iter())
            .filter(|(_, &d)| !d)
            .map(|(&f, _)| f)
            .collect();
        (f0, rest)
    }

    #[test]
    fn f_si_is_superset_of_f0() {
        let (nl, u, t0, candidates) = setup();
        let (f0, rest) = split_f0(&nl, &u, &t0);
        let selected = vec![false; candidates.len()];
        let r = select_scan_test(
            &nl,
            &u,
            &t0,
            &candidates,
            &f0,
            &rest,
            &selected,
            Phase1Config::default(),
        )
        .unwrap();
        assert!(r.f_so.len() >= f0.len(), "F_SI ⊇ F_0");
        for f in &f0 {
            assert!(r.f_so.contains(f));
        }
    }

    #[test]
    fn prefix_test_detects_all_of_f_si() {
        let (nl, u, t0, candidates) = setup();
        let (f0, rest) = split_f0(&nl, &u, &t0);
        let selected = vec![false; candidates.len()];
        let r = select_scan_test(
            &nl,
            &u,
            &t0,
            &candidates,
            &f0,
            &rest,
            &selected,
            Phase1Config::default(),
        )
        .unwrap();
        // The guarantee of Step 3: τ_SO detects every fault in F_SI.
        let det = r.test.detects(&nl, &u, &r.f_so);
        assert!(det.iter().all(|&d| d), "τ_SO must keep F_SI detected");
        assert_eq!(r.test.seq.len(), r.u_so + 1);
        assert!(r.test.seq.len() <= t0.len());
    }

    #[test]
    fn u_so_is_minimal() {
        let (nl, u, t0, candidates) = setup();
        let (f0, rest) = split_f0(&nl, &u, &t0);
        let selected = vec![false; candidates.len()];
        let r = select_scan_test(
            &nl,
            &u,
            &t0,
            &candidates,
            &f0,
            &rest,
            &selected,
            Phase1Config::default(),
        )
        .unwrap();
        if r.u_so > 0 {
            // One vector shorter must lose at least one fault of F_SI.
            let shorter = ScanTest::new(r.test.si.clone(), t0.prefix(r.u_so - 1));
            let det = shorter.detects(&nl, &u, &r.f_so);
            assert!(det.iter().any(|&d| !d), "u_SO was not minimal");
        }
    }

    #[test]
    fn prefers_unselected_candidate_on_equal_coverage() {
        let (nl, u, t0, candidates) = setup();
        let (f0, rest) = split_f0(&nl, &u, &t0);
        // First run: find the naturally best candidate.
        let none = vec![false; candidates.len()];
        let first = select_scan_test(
            &nl,
            &u,
            &t0,
            &candidates,
            &f0,
            &rest,
            &none,
            Phase1Config::default(),
        )
        .unwrap();
        // Mark it selected; a second run must avoid it unless strictly
        // better than every unselected candidate.
        let mut marks = none.clone();
        marks[first.si_index] = true;
        let second = select_scan_test(
            &nl,
            &u,
            &t0,
            &candidates,
            &f0,
            &rest,
            &marks,
            Phase1Config::default(),
        )
        .unwrap();
        if second.si_index == first.si_index {
            assert!(second.reused_selected, "reuse must be flagged");
        }
    }

    #[test]
    fn i1_rule_never_shortens_below_i0_and_never_detects_less() {
        let (nl, u, t0, candidates) = setup();
        let (f0, rest) = split_f0(&nl, &u, &t0);
        let selected = vec![false; candidates.len()];
        let r_i0 = select_scan_test(
            &nl,
            &u,
            &t0,
            &candidates,
            &f0,
            &rest,
            &selected,
            Phase1Config::default(),
        )
        .unwrap();
        let cfg_i1 = Phase1Config {
            scan_out_rule: ScanOutRule::MaxDetectEarliest,
            ..Phase1Config::default()
        };
        let r_i1 =
            select_scan_test(&nl, &u, &t0, &candidates, &f0, &rest, &selected, cfg_i1).unwrap();
        // Same SI choice (Step 2 is rule-independent).
        assert_eq!(r_i0.si_index, r_i1.si_index);
        // i1 only ever moves the scan-out later (the paper's observation
        // that it yields longer sequences) and never detects fewer faults.
        assert!(r_i1.u_so >= r_i0.u_so);
        assert!(r_i1.f_so.len() >= r_i0.f_so.len());
        let det = r_i1.test.detects(&nl, &u, &r_i1.f_so);
        assert!(det.iter().all(|&d| d), "i1's F_SO must be detected");
    }

    #[test]
    fn empty_candidates_are_an_error() {
        let (nl, u, t0, _) = setup();
        let (f0, rest) = split_f0(&nl, &u, &t0);
        assert_eq!(
            select_scan_test(&nl, &u, &t0, &[], &f0, &rest, &[], Phase1Config::default())
                .unwrap_err(),
            CoreError::NoScanInCandidates
        );
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        let (nl, u, t0, candidates) = setup();
        let (f0, rest) = split_f0(&nl, &u, &t0);
        let empty_t0 = Sequence::default();
        assert_eq!(
            select_scan_test(
                &nl,
                &u,
                &empty_t0,
                &candidates,
                &f0,
                &rest,
                &vec![false; candidates.len()],
                Phase1Config::default(),
            )
            .unwrap_err(),
            CoreError::EmptyT0
        );
        let short_marks = vec![false; candidates.len() - 1];
        assert_eq!(
            select_scan_test(
                &nl,
                &u,
                &t0,
                &candidates,
                &f0,
                &rest,
                &short_marks,
                Phase1Config::default(),
            )
            .unwrap_err(),
            CoreError::SelectedMarksTooShort {
                marks: candidates.len() - 1,
                candidates: candidates.len(),
            }
        );
    }

    #[test]
    fn candidate_limit_is_respected() {
        let (nl, u, t0, candidates) = setup();
        let (f0, rest) = split_f0(&nl, &u, &t0);
        let selected = vec![false; candidates.len()];
        let cfg = Phase1Config {
            max_candidates: Some(2),
            ..Phase1Config::default()
        };
        let r = select_scan_test(&nl, &u, &t0, &candidates, &f0, &rest, &selected, cfg).unwrap();
        assert!(r.si_index < 2);
    }
}
