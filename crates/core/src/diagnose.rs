//! Pass/fail fault diagnosis (extension).
//!
//! Once a manufactured part fails the test set this library generates, the
//! next question is *which defect explains the failure*. This module
//! implements classic signature-matching diagnosis: every candidate fault's
//! per-test pass/fail signature is computed by fault simulation (no
//! dropping), and candidates are ranked by how well their signature matches
//! the observed one. A single stuck-at defect always ranks its own
//! equivalence class at the top with a perfect score.

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::SeqFaultSim;

use crate::test::TestSet;

/// One ranked diagnosis candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The candidate fault (an equivalence-class representative).
    pub fault: FaultId,
    /// Tests where prediction and observation agree.
    pub matching: usize,
    /// Tests the candidate predicts failing but the part passed
    /// (mispredictions — heavily penalized in ranking).
    pub false_fails: usize,
    /// Tests the part failed but the candidate predicts passing.
    pub missed_fails: usize,
}

impl Candidate {
    /// Whether the candidate explains the observation exactly.
    pub fn is_exact(&self) -> bool {
        self.false_fails == 0 && self.missed_fails == 0
    }
}

/// Computes each candidate fault's pass/fail signature over `set` (one bool
/// per test: does the test detect the fault).
pub fn signatures(
    nl: &Netlist,
    universe: &FaultUniverse,
    set: &TestSet,
    candidates: &[FaultId],
) -> Vec<Vec<bool>> {
    let mut fsim = SeqFaultSim::new(nl);
    let mut rows: Vec<Vec<bool>> = vec![Vec::with_capacity(set.len()); candidates.len()];
    for test in &set.tests {
        let det = fsim.detect(&test.si, &test.seq, candidates, universe, true);
        for (k, d) in det.into_iter().enumerate() {
            rows[k].push(d);
        }
    }
    rows
}

/// Ranks `candidates` against the observed per-test pass/fail vector
/// (`true` = the part failed that test). Best candidates first: exact
/// matches, then by fewest false fails, then fewest missed fails.
///
/// # Panics
///
/// Panics if `observed` is not one entry per test.
pub fn diagnose(
    nl: &Netlist,
    universe: &FaultUniverse,
    set: &TestSet,
    candidates: &[FaultId],
    observed: &[bool],
) -> Vec<Candidate> {
    assert_eq!(observed.len(), set.len(), "one observation per test");
    let sigs = signatures(nl, universe, set, candidates);
    let mut out: Vec<Candidate> = candidates
        .iter()
        .zip(sigs.iter())
        .map(|(&fault, sig)| {
            let mut matching = 0;
            let mut false_fails = 0;
            let mut missed_fails = 0;
            for (&predicted, &seen) in sig.iter().zip(observed) {
                match (predicted, seen) {
                    (true, false) => false_fails += 1,
                    (false, true) => missed_fails += 1,
                    _ => matching += 1,
                }
            }
            Candidate {
                fault,
                matching,
                false_fails,
                missed_fails,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        (
            a.false_fails,
            a.missed_fails,
            std::cmp::Reverse(a.matching),
            a.fault,
        )
            .cmp(&(
                b.false_fails,
                b.missed_fails,
                std::cmp::Reverse(b.matching),
                b.fault,
            ))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_atpg::comb_tset::{self, CombTsetConfig};
    use atspeed_circuit::bench_fmt::s27;

    fn setup() -> (atspeed_circuit::Netlist, FaultUniverse, TestSet) {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let c = comb_tset::generate(&nl, &u, &CombTsetConfig::default())
            .unwrap()
            .tests;
        (nl, u, TestSet::from_comb_tests(&c))
    }

    #[test]
    fn injected_fault_diagnoses_to_its_own_class() {
        let (nl, u, set) = setup();
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let sigs = signatures(&nl, &u, &set, &reps);
        // Pretend fault reps[5] is the real defect: its signature is the
        // observation.
        for probe in [0usize, 5, 11] {
            let observed = &sigs[probe];
            let ranked = diagnose(&nl, &u, &set, &reps, observed);
            let top = &ranked[0];
            assert!(top.is_exact(), "true fault must match exactly");
            // The true fault is among the exact matches (others may be
            // indistinguishable under this test set).
            let exact: Vec<FaultId> = ranked
                .iter()
                .take_while(|c| c.is_exact())
                .map(|c| c.fault)
                .collect();
            assert!(
                exact.contains(&reps[probe]),
                "true fault {probe} missing from exact matches"
            );
        }
    }

    #[test]
    fn passing_part_matches_nothing_detected() {
        let (nl, u, set) = setup();
        let reps: Vec<FaultId> = u.representatives().to_vec();
        // All tests pass: any fault the set detects has false fails.
        let observed = vec![false; set.len()];
        let ranked = diagnose(&nl, &u, &set, &reps, &observed);
        // The set achieves complete coverage, so nothing matches exactly.
        assert!(
            ranked.iter().all(|c| !c.is_exact()),
            "complete coverage means every fault fails some test"
        );
    }

    #[test]
    fn ranking_is_stable_and_complete() {
        let (nl, u, set) = setup();
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let observed = vec![true; set.len()];
        let ranked = diagnose(&nl, &u, &set, &reps, &observed);
        assert_eq!(ranked.len(), reps.len());
        // Sorted by (false_fails, missed_fails).
        for w in ranked.windows(2) {
            assert!((w[0].false_fails, w[0].missed_fails) <= (w[1].false_fails, w[1].missed_fails));
        }
    }

    #[test]
    #[should_panic(expected = "one observation per test")]
    fn observation_width_is_checked() {
        let (nl, u, set) = setup();
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let _ = diagnose(&nl, &u, &set, &reps, &[true]);
    }
}
