//! Phase 4: static compaction by test combining (the procedure of the
//! paper's reference \[4\]).
//!
//! Combining two tests `τ_i = (SI_i, T_i)` and `τ_j = (SI_j, T_j)` removes
//! the scan-out of `τ_i` and the scan-in of `τ_j`, producing
//! `τ_{i,j} = (SI_i, T_i T_j)` — one fewer scan operation. A combination is
//! accepted only if it does not reduce fault coverage; the procedure stops
//! when no pair of tests can be combined.
//!
//! The coverage check follows \[4\]'s practical form: every fault is
//! assigned to the first test that detects it, and a combination is
//! accepted when the combined test still detects all faults assigned to
//! both constituents. Standalone, this module also provides the paper's
//! main baseline ([`baseline4`]): start from one single-vector scan test
//! per member of the combinational test set `C` and compact.

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{CombTest, ParallelFsim, Sequence, SimConfig, V3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::test::{ScanTest, TestSet};

/// Statistics from a [`combine_tests`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StaticCompactionStats {
    /// Accepted combinations (each removes one scan operation).
    pub combinations: usize,
    /// Combination attempts (fault simulations of a candidate pair).
    pub attempts: usize,
    /// Sweeps over the pair space.
    pub rounds: usize,
    /// Combinations that only succeeded thanks to a transfer sequence.
    pub transfer_combinations: usize,
    /// Failed-pair cache entries alive at termination. Entries involving a
    /// consumed test are purged on every accepted combination, so this is
    /// bounded by `live·(live−1)` for `live` surviving tests.
    pub failed_pairs: usize,
    /// Verdicts *not* memoized because the cache was at
    /// [`CombineConfig::max_failed_pairs`]. The memo only skips
    /// re-simulation, so dropping entries trades attempts for memory — the
    /// final test set is unchanged.
    pub failed_pairs_dropped: usize,
}

/// Configuration for [`combine_tests_cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombineConfig {
    /// Transfer-sequence insertion (\[7\]); `None` disables it.
    pub transfer: Option<TransferConfig>,
    /// Threading for the coverage checks.
    pub sim: SimConfig,
    /// Upper bound on failed-pair memo entries. The memo exists only to
    /// skip re-simulating pairs already known not to combine; once full,
    /// further verdicts are dropped (counted in
    /// [`StaticCompactionStats::failed_pairs_dropped`]) and those pairs are
    /// simply re-checked on later sweeps. Results are identical at any cap;
    /// only `attempts` can grow. The default (2^20 entries, 16 MiB of keys
    /// and versions) covers a ~1000-test set without dropping anything.
    pub max_failed_pairs: usize,
}

impl Default for CombineConfig {
    fn default() -> Self {
        CombineConfig {
            transfer: None,
            sim: SimConfig::default(),
            max_failed_pairs: 1 << 20,
        }
    }
}

/// Configuration for transfer-sequence insertion, the improvement of the
/// paper's reference \[7\]: when plainly concatenating `T_i T_j` loses a
/// fault (the state after `T_i` differs too much from `SI_j`), a short
/// *transfer sequence* `R` between them — `(SI_i, T_i R T_j)` — can steer
/// the circuit into a workable state and still save the scan operation,
/// as long as `L(R) < N_SV` keeps the combination profitable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferConfig {
    /// Longest transfer sequence tried (bounded by `N_SV − 1`; longer ones
    /// cannot beat a scan operation).
    pub max_len: usize,
    /// Random candidate transfer sequences tried per length.
    pub candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            max_len: 4,
            candidates: 3,
            seed: 7,
        }
    }
}

/// Greedily combines test pairs until no further combination is accepted.
///
/// `targets` is the fault set whose coverage must be preserved (normally
/// the set detected by `set`). Tests combine in both directions
/// (`T_i T_j` under `SI_i`, and `T_j T_i` under `SI_j`).
pub fn combine_tests(
    nl: &Netlist,
    universe: &FaultUniverse,
    set: &TestSet,
    targets: &[FaultId],
) -> (TestSet, StaticCompactionStats) {
    combine_tests_with(nl, universe, set, targets, None)
}

/// [`combine_tests`] with optional transfer-sequence insertion (\[7\]):
/// when a plain combination fails, short connecting sequences are tried
/// before giving the pair up.
pub fn combine_tests_with(
    nl: &Netlist,
    universe: &FaultUniverse,
    set: &TestSet,
    targets: &[FaultId],
    transfer: Option<TransferConfig>,
) -> (TestSet, StaticCompactionStats) {
    combine_tests_sim(nl, universe, set, targets, transfer, SimConfig::default())
}

/// [`combine_tests_with`] with the coverage checks fault-sharded across
/// `sim.threads` workers. Each check is an independent fault simulation of
/// one candidate combination, so the accepted combinations — and therefore
/// the final set — are identical at any thread count.
pub fn combine_tests_sim(
    nl: &Netlist,
    universe: &FaultUniverse,
    set: &TestSet,
    targets: &[FaultId],
    transfer: Option<TransferConfig>,
    sim: SimConfig,
) -> (TestSet, StaticCompactionStats) {
    combine_tests_cfg(
        nl,
        universe,
        set,
        targets,
        CombineConfig {
            transfer,
            sim,
            ..CombineConfig::default()
        },
    )
}

/// [`combine_tests_sim`] with every knob exposed, including the
/// failed-pair memo cap that bounds Phase 4 memory on large test sets.
pub fn combine_tests_cfg(
    nl: &Netlist,
    universe: &FaultUniverse,
    set: &TestSet,
    targets: &[FaultId],
    cfg: CombineConfig,
) -> (TestSet, StaticCompactionStats) {
    let transfer = cfg.transfer;
    let mut stats = StaticCompactionStats::default();
    if set.len() <= 1 {
        return (set.clone(), stats);
    }
    let mut rng = StdRng::seed_from_u64(transfer.map_or(0, |t| t.seed));
    let fsim = ParallelFsim::new(nl, cfg.sim);

    // Assign each target fault to the first test that detects it.
    let mut entries: Vec<Option<(ScanTest, Vec<FaultId>)>> = Vec::with_capacity(set.len());
    {
        let mut alive: Vec<FaultId> = targets.to_vec();
        for t in &set.tests {
            if alive.is_empty() {
                entries.push(Some((t.clone(), Vec::new())));
                continue;
            }
            let det = fsim.detect(&t.si, &t.seq, &alive, universe, true);
            let mine: Vec<FaultId> = alive
                .iter()
                .zip(det.iter())
                .filter(|(_, &d)| d)
                .map(|(&f, _)| f)
                .collect();
            alive = alive
                .iter()
                .zip(det.iter())
                .filter(|(_, &d)| !d)
                .map(|(&f, _)| f)
                .collect();
            entries.push(Some((t.clone(), mine)));
        }
    }

    // Greedy sweeps: try to merge j into i (both directions) until a full
    // sweep accepts nothing. A failed pair is only retried after one of its
    // members changed (version counters), so later sweeps cost almost
    // nothing.
    let mut versions = vec![0u32; entries.len()];
    let mut failed: std::collections::HashMap<(usize, usize), (u32, u32)> =
        std::collections::HashMap::new();
    loop {
        stats.rounds += 1;
        let mut changed = false;
        for i in 0..entries.len() {
            if entries[i].is_none() {
                continue;
            }
            for j in 0..entries.len() {
                if i == j || entries[i].is_none() || entries[j].is_none() {
                    continue;
                }
                if failed.get(&(i, j)) == Some(&(versions[i], versions[j])) {
                    continue;
                }
                let (ti, fi) = entries[i].as_ref().expect("checked above");
                let (tj, fj) = entries[j].as_ref().expect("checked above");
                // Candidate: scan in SI_i, run T_i then T_j, scan out.
                let mut combined = ScanTest::new(ti.si.clone(), ti.seq.concat(&tj.seq));
                let mut assigned: Vec<FaultId> = fi.clone();
                assigned.extend(fj.iter().copied());
                stats.attempts += 1;
                let check = |c: &ScanTest, a: &[FaultId]| {
                    a.is_empty()
                        || fsim
                            .detect(&c.si, &c.seq, a, universe, true)
                            .iter()
                            .all(|&d| d)
                };
                let mut ok = check(&combined, &assigned);
                // [7]-style fallback: steer the state with a short transfer
                // sequence R, profitable while L(R) < N_SV.
                if !ok {
                    if let Some(tc) = transfer {
                        let max_len = tc.max_len.min(nl.num_ffs().saturating_sub(1));
                        'transfer: for len in 1..=max_len {
                            for _ in 0..tc.candidates.max(1) {
                                let r: Sequence = (0..len)
                                    .map(|_| {
                                        (0..nl.num_pis())
                                            .map(|_| V3::from_bool(rng.gen()))
                                            .collect::<Vec<_>>()
                                    })
                                    .collect();
                                let with_r = ScanTest::new(
                                    combined.si.clone(),
                                    ti.seq.concat(&r).concat(&tj.seq),
                                );
                                stats.attempts += 1;
                                if check(&with_r, &assigned) {
                                    combined = with_r;
                                    ok = true;
                                    stats.transfer_combinations += 1;
                                    break 'transfer;
                                }
                            }
                        }
                    }
                }
                if ok {
                    entries[i] = Some((combined, assigned));
                    entries[j] = None;
                    versions[i] += 1;
                    versions[j] += 1;
                    // `j` can never be combined again: every cached verdict
                    // involving it is permanently dead weight. Without this
                    // purge the map grows with the square of the consumed
                    // tests across sweeps on large sets.
                    failed.retain(|&(a, b), _| a != j && b != j);
                    stats.combinations += 1;
                    changed = true;
                } else if failed.len() < cfg.max_failed_pairs || failed.contains_key(&(i, j)) {
                    failed.insert((i, j), (versions[i], versions[j]));
                } else {
                    stats.failed_pairs_dropped += 1;
                }
            }
        }
        if !changed {
            break;
        }
    }
    stats.failed_pairs = failed.len();

    let tests: Vec<ScanTest> = entries.into_iter().flatten().map(|(t, _)| t).collect();
    (TestSet::from_tests(tests), stats)
}

/// Result of the \[4\] baseline flow.
#[derive(Debug, Clone)]
pub struct Baseline4Result {
    /// The initial test set (one single-vector test per member of `C`).
    pub initial: TestSet,
    /// The statically compacted test set.
    pub compacted: TestSet,
    /// Compaction statistics.
    pub stats: StaticCompactionStats,
}

/// Runs the paper's main baseline: the static compaction of \[4\] applied
/// to the combinational-test-set-based initial test set.
pub fn baseline4(
    nl: &Netlist,
    universe: &FaultUniverse,
    comb_tests: &[CombTest],
    targets: &[FaultId],
) -> Baseline4Result {
    let initial = TestSet::from_comb_tests(comb_tests);
    let (compacted, stats) = combine_tests(nl, universe, &initial, targets);
    Baseline4Result {
        initial,
        compacted,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_atpg::comb_tset::{self, CombTsetConfig};
    use atspeed_circuit::bench_fmt::s27;

    fn setup() -> (atspeed_circuit::Netlist, FaultUniverse, Vec<CombTest>) {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let c = comb_tset::generate(&nl, &u, &CombTsetConfig::default())
            .unwrap()
            .tests;
        (nl, u, c)
    }

    #[test]
    fn combining_preserves_coverage() {
        let (nl, u, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let initial = TestSet::from_comb_tests(&c);
        let before = initial.count_detected(&nl, &u, &targets);
        let (compacted, stats) = combine_tests(&nl, &u, &initial, &targets);
        let after = compacted.count_detected(&nl, &u, &targets);
        assert!(after >= before, "coverage dropped: {before} -> {after}");
        assert!(compacted.len() <= initial.len());
        assert_eq!(
            compacted.total_vectors(),
            initial.total_vectors(),
            "combining never changes the total vector count"
        );
        assert_eq!(stats.combinations, initial.len() - compacted.len());
    }

    #[test]
    fn combining_reduces_clock_cycles() {
        let (nl, u, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let r = baseline4(&nl, &u, &c, &targets);
        let n_sv = nl.num_ffs();
        assert!(
            r.compacted.clock_cycles(n_sv) <= r.initial.clock_cycles(n_sv),
            "compaction must not increase application time"
        );
        // s27's compact sets leave room for at least one combination.
        assert!(r.stats.combinations > 0, "expected some combining on s27");
    }

    #[test]
    fn single_test_set_is_a_fixpoint() {
        let (nl, u, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let one = TestSet::from_tests(vec![ScanTest::from_comb(&c[0])]);
        let (compacted, stats) = combine_tests(&nl, &u, &one, &targets);
        assert_eq!(compacted.len(), 1);
        assert_eq!(stats.combinations, 0);
    }

    #[test]
    fn average_sequence_length_grows() {
        let (nl, u, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let r = baseline4(&nl, &u, &c, &targets);
        if r.stats.combinations > 0 {
            let init_avg = r.initial.at_speed_stats().unwrap().average;
            let comp_avg = r.compacted.at_speed_stats().unwrap().average;
            assert!(comp_avg > init_avg, "combining lengthens sequences");
        }
    }

    #[test]
    fn transfer_sequences_only_help() {
        let (nl, u, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let initial = TestSet::from_comb_tests(&c);
        let (plain, _) = combine_tests(&nl, &u, &initial, &targets);
        let (with_transfer, stats) =
            combine_tests_with(&nl, &u, &initial, &targets, Some(TransferConfig::default()));
        // Transfer insertion can only increase combinations, so the final
        // set is never larger; coverage is preserved either way.
        assert!(with_transfer.len() <= plain.len());
        let before = initial.count_detected(&nl, &u, &targets);
        let after = with_transfer.count_detected(&nl, &u, &targets);
        assert!(after >= before);
        // Every transfer-based combination was also counted as a
        // combination.
        assert!(stats.transfer_combinations <= stats.combinations);
    }

    #[test]
    fn transfer_cost_stays_profitable() {
        let (nl, u, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let initial = TestSet::from_comb_tests(&c);
        let (with_transfer, _) =
            combine_tests_with(&nl, &u, &initial, &targets, Some(TransferConfig::default()));
        let n_sv = nl.num_ffs();
        assert!(
            with_transfer.clock_cycles(n_sv) <= initial.clock_cycles(n_sv),
            "a transfer sequence shorter than N_SV always saves cycles"
        );
    }

    #[test]
    fn failed_pair_cache_stays_bounded_by_live_pairs() {
        let (nl, u, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let initial = TestSet::from_comb_tests(&c);
        let (compacted, stats) = combine_tests(&nl, &u, &initial, &targets);
        assert!(
            stats.combinations > 0,
            "needs accepted combinations to exercise the purge"
        );
        // Every surviving cache entry must name two live tests; before the
        // purge existed, entries keyed on consumed indices accumulated and
        // this bound was exceeded whenever compaction shrank the set.
        let live = compacted.len();
        assert!(
            stats.failed_pairs <= live * live.saturating_sub(1),
            "{} cached pairs for {} live tests",
            stats.failed_pairs,
            live
        );
    }

    #[test]
    fn failed_pair_cap_changes_memory_not_results() {
        let (nl, u, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let initial = TestSet::from_comb_tests(&c);
        let (unbounded, free_stats) =
            combine_tests_cfg(&nl, &u, &initial, &targets, CombineConfig::default());
        assert_eq!(free_stats.failed_pairs_dropped, 0);
        for cap in [0, 1, 4] {
            let (capped, stats) = combine_tests_cfg(
                &nl,
                &u,
                &initial,
                &targets,
                CombineConfig {
                    max_failed_pairs: cap,
                    ..CombineConfig::default()
                },
            );
            // The memo only skips re-simulation: the compacted set and the
            // accepted combinations are identical at any cap.
            assert_eq!(capped, unbounded, "cap={cap}");
            assert_eq!(stats.combinations, free_stats.combinations, "cap={cap}");
            assert!(stats.failed_pairs <= cap, "cap={cap}");
            // Re-checks can only add attempts, never remove them.
            assert!(stats.attempts >= free_stats.attempts, "cap={cap}");
            if free_stats.failed_pairs > cap {
                assert!(stats.failed_pairs_dropped > 0, "cap={cap}");
            }
        }
    }

    #[test]
    fn empty_set_is_handled() {
        let (nl, u, _) = setup();
        let (compacted, stats) = combine_tests(&nl, &u, &TestSet::new(), &[]);
        assert!(compacted.is_empty());
        assert_eq!(stats.attempts, 0);
    }
}
