//! Error type for the compaction pipeline.

use std::error::Error;
use std::fmt;

use atspeed_atpg::AtpgError;

/// Errors produced by the compaction pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// Generation of the combinational test set `C` failed.
    CombTestSet(AtpgError),
    /// The initial test sequence `T_0` is empty.
    EmptyT0,
    /// The combinational test set `C` is empty, leaving Phase 1 with no
    /// scan-in candidates.
    NoScanInCandidates,
    /// The `selected` marks passed to Phase 1 cover fewer entries than the
    /// candidate list.
    SelectedMarksTooShort {
        /// Number of `selected` marks provided.
        marks: usize,
        /// Number of scan-in candidates.
        candidates: usize,
    },
    /// Independent re-simulation contradicted the coverage a phase claimed
    /// (see [`crate::oracle::verify_test_set`]).
    VerificationFailed {
        /// What was being verified and what was found, human-readable.
        context: String,
        /// Number of claimed-but-undetected faults.
        missing: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::CombTestSet(e) => write!(f, "combinational test set generation: {e}"),
            CoreError::EmptyT0 => write!(f, "initial test sequence T0 is empty"),
            CoreError::NoScanInCandidates => {
                write!(f, "no scan-in candidates: combinational test set is empty")
            }
            CoreError::SelectedMarksTooShort { marks, candidates } => write!(
                f,
                "selected marks cover {marks} entries but there are {candidates} candidates"
            ),
            CoreError::VerificationFailed { context, missing } => write!(
                f,
                "coverage verification failed ({missing} faults missing): {context}"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::CombTestSet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AtpgError> for CoreError {
    fn from(e: AtpgError) -> Self {
        CoreError::CombTestSet(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(AtpgError::EmptyFaultList);
        assert!(e.to_string().contains("fault list is empty"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&CoreError::EmptyT0).is_none());
    }

    #[test]
    fn verification_failed_displays_counts() {
        let e = CoreError::VerificationFailed {
            context: "test 3 misses f7".to_owned(),
            missing: 1,
        };
        let s = e.to_string();
        assert!(s.contains("1 faults missing"), "{s}");
        assert!(s.contains("test 3 misses f7"), "{s}");
        assert!(Error::source(&e).is_none());
    }
}
