//! Error type for the compaction pipeline.

use std::error::Error;
use std::fmt;

use atspeed_atpg::AtpgError;

/// Errors produced by the compaction pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// Generation of the combinational test set `C` failed.
    CombTestSet(AtpgError),
    /// The initial test sequence `T_0` is empty.
    EmptyT0,
    /// The combinational test set `C` is empty, leaving Phase 1 with no
    /// scan-in candidates.
    NoScanInCandidates,
    /// The `selected` marks passed to Phase 1 cover fewer entries than the
    /// candidate list.
    SelectedMarksTooShort {
        /// Number of `selected` marks provided.
        marks: usize,
        /// Number of scan-in candidates.
        candidates: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::CombTestSet(e) => write!(f, "combinational test set generation: {e}"),
            CoreError::EmptyT0 => write!(f, "initial test sequence T0 is empty"),
            CoreError::NoScanInCandidates => {
                write!(f, "no scan-in candidates: combinational test set is empty")
            }
            CoreError::SelectedMarksTooShort { marks, candidates } => write!(
                f,
                "selected marks cover {marks} entries but there are {candidates} candidates"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::CombTestSet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AtpgError> for CoreError {
    fn from(e: AtpgError) -> Self {
        CoreError::CombTestSet(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(AtpgError::EmptyFaultList);
        assert!(e.to_string().contains("fault list is empty"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&CoreError::EmptyT0).is_none());
    }
}
