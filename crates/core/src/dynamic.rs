//! A dynamic-compaction baseline in the spirit of the paper's references
//! \[2,3\] (Lee & Saluja).
//!
//! Dynamic compaction for scan circuits trades scan operations against
//! functional clocking: since a scan-in/out costs `N_SV` cycles, it pays to
//! keep clocking the circuit functionally whenever useful states are
//! reachable in fewer than `N_SV` vectors. This scheduler reproduces that
//! trade: from the current state it greedily applies the candidate vector
//! that detects the most still-alive faults; when progress stalls for a
//! configurable gap it falls back to a scan operation (observe the state,
//! scan in the most productive combinational-test state, apply its vector).
//!
//! The exact procedures of \[2,3\] are tied to their DFT schemes; this is a
//! faithful substitute at the level the paper compares on — total clock
//! cycles of the resulting schedule (Table 3, column "[2,3]").

use atspeed_atpg::seq_tgen::pick_best;
use atspeed_atpg::IncrementalSim;
use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{CombTest, SimConfig, V3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`dynamic_schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicConfig {
    /// Random candidate vectors tried per functional step (in addition to
    /// the input parts of `C`).
    pub random_candidates: usize,
    /// Unproductive functional vectors tolerated before scanning.
    pub max_gap: usize,
    /// Consecutive unproductive scans before giving up.
    pub max_stale_scans: usize,
    /// Fault-group sample used for candidate scoring.
    pub sample_groups: usize,
    /// RNG seed.
    pub seed: u64,
    /// Threading for candidate scoring; the schedule is identical at any
    /// thread count (scoring is read-only, selection sequential).
    pub sim: SimConfig,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            random_candidates: 4,
            max_gap: 3,
            max_stale_scans: 3,
            sample_groups: 8,
            seed: 4,
            sim: SimConfig::default(),
        }
    }
}

/// Result of the dynamic-compaction baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicResult {
    /// Total clock cycles: `num_scans · N_SV + functional_vectors`.
    pub cycles: usize,
    /// Scan operations performed (including the final scan-out).
    pub num_scans: usize,
    /// Functional vectors applied.
    pub functional_vectors: usize,
    /// Faults detected.
    pub detected: usize,
}

/// Runs the dynamic scheduler against `targets`.
pub fn dynamic_schedule(
    nl: &Netlist,
    universe: &FaultUniverse,
    comb_tests: &[CombTest],
    targets: &[FaultId],
    cfg: &DynamicConfig,
) -> DynamicResult {
    let n_sv = nl.num_ffs();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut inc = IncrementalSim::new(nl, universe, targets);
    let mut num_scans = 0usize;
    let mut functional = 0usize;
    let mut stale_scans = 0usize;

    // Initial scan-in: the most productive combinational test, evaluated as
    // a single-vector scan test from the all-X state.
    let mut next_c = 0usize;
    if !comb_tests.is_empty() {
        inc.load_state(&comb_tests[0].state);
        inc.apply(&comb_tests[0].inputs);
        num_scans += 1;
        functional += 1;
        next_c = 1;
    }

    let mut gap = 0usize;
    while !inc.all_detected() && stale_scans < cfg.max_stale_scans {
        // Functional phase: greedy vector selection from the current state.
        let cands: Vec<Vec<V3>> = (0..cfg.random_candidates + 1)
            .map(|k| {
                if k == 0 && next_c < comb_tests.len() {
                    comb_tests[next_c].inputs.clone()
                } else {
                    (0..nl.num_pis())
                        .map(|_| V3::from_bool(rng.gen()))
                        .collect()
                }
            })
            .collect();
        let scores = inc.score_batch(&cands, cfg.sample_groups, cfg.sim);
        let det_est = scores.iter().map(|&(d, _)| d).max().unwrap_or(0);
        let chosen = pick_best(cands, &scores);
        if det_est > 0 || gap < cfg.max_gap {
            let newly = inc.apply(&chosen);
            functional += 1;
            gap = if newly == 0 { gap + 1 } else { 0 };
            continue;
        }
        // Scan: observe the state (detecting state-only differences), then
        // load the next productive combinational-test state.
        let observed = inc.scan_observe();
        num_scans += 1;
        gap = 0;
        let mut newly = observed;
        if next_c < comb_tests.len() {
            let c = &comb_tests[next_c];
            next_c += 1;
            inc.load_state(&c.state);
            newly += inc.apply(&c.inputs);
            functional += 1;
        } else {
            // No prepared states left: scan in a random state.
            let state: Vec<V3> = (0..n_sv).map(|_| V3::from_bool(rng.gen())).collect();
            inc.load_state(&state);
        }
        stale_scans = if newly == 0 { stale_scans + 1 } else { 0 };
    }

    // Final scan-out.
    inc.scan_observe();
    num_scans += 1;

    DynamicResult {
        cycles: num_scans * n_sv + functional,
        num_scans,
        functional_vectors: functional,
        detected: inc.total_detected(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_atpg::comb_tset::{self, CombTsetConfig};
    use atspeed_circuit::bench_fmt::s27;

    fn setup() -> (atspeed_circuit::Netlist, FaultUniverse, Vec<CombTest>) {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let c = comb_tset::generate(&nl, &u, &CombTsetConfig::default())
            .unwrap()
            .tests;
        (nl, u, c)
    }

    #[test]
    fn cycle_accounting_is_consistent() {
        let (nl, u, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let r = dynamic_schedule(&nl, &u, &c, &targets, &DynamicConfig::default());
        assert_eq!(r.cycles, r.num_scans * nl.num_ffs() + r.functional_vectors);
        assert!(
            r.num_scans >= 2,
            "at least initial scan-in and final scan-out"
        );
        assert!(r.detected > 0);
    }

    #[test]
    fn detects_most_faults_on_s27() {
        let (nl, u, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let r = dynamic_schedule(&nl, &u, &c, &targets, &DynamicConfig::default());
        assert!(
            r.detected * 10 >= targets.len() * 9,
            "dynamic schedule detected only {}/{}",
            r.detected,
            targets.len()
        );
    }

    #[test]
    fn is_deterministic() {
        let (nl, u, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let a = dynamic_schedule(&nl, &u, &c, &targets, &DynamicConfig::default());
        let b = dynamic_schedule(&nl, &u, &c, &targets, &DynamicConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn handles_empty_comb_tests() {
        let (nl, u, _) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let r = dynamic_schedule(&nl, &u, &[], &targets, &DynamicConfig::default());
        assert!(r.cycles > 0);
    }
}
