//! Partial-scan evaluation (extension).
//!
//! The paper closes with "the proposed procedure can be extended to the
//! case of partial-scan circuits". This module provides the machinery for
//! that extension: a [`PartialScan`] configuration selects which flip-flops
//! are on the scan chain; scan-in controls and scan-out observes only
//! those, non-scanned flip-flops start each test in the unknown state, and
//! the clock-cycle cost model charges scan operations at the *chain length*
//! rather than the full state-variable count:
//!
//! `N_cyc = (k+1)·N_chain + Σ L(T_j)`.
//!
//! Shorter chains make scan cheaper but give up controllability and
//! observability — evaluating a test set under several chain selections
//! (see the `partial_scan` example) exposes exactly that trade-off.

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{FinalObserve, SeqFaultSim, V3};

use crate::test::TestSet;

/// A partial-scan configuration: which flip-flops are on the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialScan {
    scanned: Vec<bool>,
}

impl PartialScan {
    /// Creates a configuration from a per-flip-flop membership mask.
    pub fn new(scanned: Vec<bool>) -> Self {
        PartialScan { scanned }
    }

    /// Full scan over `n` flip-flops.
    pub fn full(n: usize) -> Self {
        PartialScan {
            scanned: vec![true; n],
        }
    }

    /// Scans the first `k` of `n` flip-flops (a simple deterministic chain
    /// selection useful for sweeps).
    pub fn first_k(n: usize, k: usize) -> Self {
        PartialScan {
            scanned: (0..n).map(|i| i < k).collect(),
        }
    }

    /// The membership mask.
    pub fn scanned(&self) -> &[bool] {
        &self.scanned
    }

    /// Number of flip-flops on the chain.
    pub fn chain_length(&self) -> usize {
        self.scanned.iter().filter(|&&s| s).count()
    }

    /// Whether every flip-flop is scanned.
    pub fn is_full(&self) -> bool {
        self.scanned.iter().all(|&s| s)
    }

    /// Restricts a full-width scan-in state to this chain: non-scanned
    /// flip-flops become X (their value is not controllable by scan).
    pub fn restrict_state(&self, state: &[V3]) -> Vec<V3> {
        assert_eq!(state.len(), self.scanned.len(), "state width mismatch");
        state
            .iter()
            .zip(self.scanned.iter())
            .map(|(&v, &s)| if s { v } else { V3::X })
            .collect()
    }

    /// Clock cycles to apply `set` under this chain:
    /// `(k+1)·N_chain + Σ L(T_j)`.
    pub fn clock_cycles(&self, set: &TestSet) -> usize {
        if set.is_empty() {
            return 0;
        }
        (set.len() + 1) * self.chain_length() + set.total_vectors()
    }

    /// Which of `faults` the set detects under this chain: scan-in values
    /// of non-scanned flip-flops are forced to X, and only chain members
    /// are observed at scan-out. Primary outputs are observed every cycle
    /// as usual.
    pub fn detects(
        &self,
        nl: &Netlist,
        universe: &FaultUniverse,
        set: &TestSet,
        faults: &[FaultId],
    ) -> Vec<bool> {
        assert_eq!(self.scanned.len(), nl.num_ffs(), "mask width mismatch");
        let mut fsim = SeqFaultSim::new(nl);
        let mut detected = vec![false; faults.len()];
        let mut alive: Vec<usize> = (0..faults.len()).collect();
        for t in &set.tests {
            if alive.is_empty() {
                break;
            }
            let ids: Vec<FaultId> = alive.iter().map(|&k| faults[k]).collect();
            let si = self.restrict_state(&t.si);
            let det = fsim.detect_observed(
                &si,
                &t.seq,
                &ids,
                universe,
                FinalObserve::PartialState(&self.scanned),
            );
            alive = alive
                .iter()
                .zip(det.iter())
                .filter_map(|(&k, &d)| {
                    if d {
                        detected[k] = true;
                        None
                    } else {
                        Some(k)
                    }
                })
                .collect();
        }
        detected
    }

    /// Convenience: detected count.
    pub fn count_detected(
        &self,
        nl: &Netlist,
        universe: &FaultUniverse,
        set: &TestSet,
        faults: &[FaultId],
    ) -> usize {
        self.detects(nl, universe, set, faults)
            .iter()
            .filter(|&&d| d)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_atpg::comb_tset::{self, CombTsetConfig};
    use atspeed_circuit::bench_fmt::s27;

    fn setup() -> (atspeed_circuit::Netlist, FaultUniverse, TestSet) {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let c = comb_tset::generate(&nl, &u, &CombTsetConfig::default())
            .unwrap()
            .tests;
        let set = TestSet::from_comb_tests(&c);
        (nl, u, set)
    }

    #[test]
    fn full_chain_matches_full_scan_semantics() {
        let (nl, u, set) = setup();
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let pscan = PartialScan::full(nl.num_ffs());
        assert!(pscan.is_full());
        assert_eq!(pscan.chain_length(), 3);
        let partial = pscan.detects(&nl, &u, &set, &reps);
        let full = set.detects(&nl, &u, &reps);
        assert_eq!(partial, full);
        assert_eq!(pscan.clock_cycles(&set), set.clock_cycles(nl.num_ffs()));
    }

    #[test]
    fn shorter_chains_cost_less_and_cover_less() {
        let (nl, u, set) = setup();
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let full = PartialScan::full(3);
        let half = PartialScan::first_k(3, 1);
        assert!(half.clock_cycles(&set) < full.clock_cycles(&set));
        let cov_full = full.count_detected(&nl, &u, &set, &reps);
        let cov_half = half.count_detected(&nl, &u, &set, &reps);
        assert!(cov_half <= cov_full, "{cov_half} > {cov_full}");
    }

    #[test]
    fn restrict_state_masks_unscanned_ffs() {
        let pscan = PartialScan::new(vec![true, false, true]);
        let full = vec![V3::One, V3::One, V3::Zero];
        assert_eq!(pscan.restrict_state(&full), vec![V3::One, V3::X, V3::Zero]);
        assert_eq!(pscan.chain_length(), 2);
    }

    #[test]
    fn empty_chain_still_observes_primary_outputs() {
        let (nl, u, set) = setup();
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let none = PartialScan::first_k(3, 0);
        let cov = none.count_detected(&nl, &u, &set, &reps);
        // No scan at all: detection only through POs from unknown state —
        // far below full scan, but the engine must still run.
        let full_cov = PartialScan::full(3).count_detected(&nl, &u, &set, &reps);
        assert!(cov <= full_cov);
        assert_eq!(none.clock_cycles(&set), set.total_vectors());
    }
}
