//! Delay-defect evaluation of scan test sets (extension).
//!
//! The paper argues — without measuring it — that its long at-speed
//! primary-input sequences "contribute to the detection of delay defects".
//! This module quantifies that claim under the transition-delay fault model
//! of [`atspeed_sim::transition`]: it counts the transition faults a test
//! set detects, which requires launch/capture cycle pairs that only
//! multi-vector sequences provide.

use atspeed_circuit::Netlist;
use atspeed_sim::transition::{all_transition_faults, TransitionFaultSim};
use atspeed_sim::{Sequence, State};

use crate::test::TestSet;

/// Transition-fault coverage of a test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayCoverage {
    /// Transition faults detected.
    pub detected: usize,
    /// Total transition faults (two per net).
    pub total: usize,
    /// Number of at-speed launch/capture cycle pairs the set applies
    /// (`Σ max(L(T_j) − 1, 0)`).
    pub at_speed_pairs: usize,
}

impl DelayCoverage {
    /// Fractional coverage.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// Evaluates `set` under the transition-delay fault model.
pub fn transition_coverage(nl: &Netlist, set: &TestSet) -> DelayCoverage {
    let faults = all_transition_faults(nl);
    let mut sim = TransitionFaultSim::new(nl);
    let tests: Vec<(State, Sequence)> = set
        .tests
        .iter()
        .map(|t| (t.si.clone(), t.seq.clone()))
        .collect();
    let detected = sim.count_detected_by_set(&tests, &faults);
    let at_speed_pairs = set.tests.iter().map(|t| t.len().saturating_sub(1)).sum();
    DelayCoverage {
        detected,
        total: faults.len(),
        at_speed_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test::ScanTest;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_sim::vectors::parse_values;

    fn t(si: &str, rows: &[&str]) -> ScanTest {
        ScanTest::new(
            parse_values(si),
            rows.iter().map(|r| parse_values(r)).collect(),
        )
    }

    #[test]
    fn single_vector_sets_have_zero_delay_coverage() {
        let nl = s27();
        let set = TestSet::from_tests(vec![
            t("000", &["1010"]),
            t("111", &["0101"]),
            t("010", &["0011"]),
        ]);
        let cov = transition_coverage(&nl, &set);
        assert_eq!(cov.detected, 0, "no at-speed pairs, no delay coverage");
        assert_eq!(cov.at_speed_pairs, 0);
    }

    #[test]
    fn long_sequences_buy_delay_coverage() {
        let nl = s27();
        let long = TestSet::from_tests(vec![t(
            "000",
            &[
                "1010", "0101", "0011", "1100", "1111", "0000", "1001", "0110",
            ],
        )]);
        let cov = transition_coverage(&nl, &long);
        assert_eq!(cov.at_speed_pairs, 7);
        assert!(cov.detected > 0);
        assert!(cov.fraction() > 0.0 && cov.fraction() <= 1.0);
    }

    #[test]
    fn more_pairs_never_hurt() {
        let nl = s27();
        let rows = ["1010", "0101", "0011", "1100", "1111", "0000"];
        let short = TestSet::from_tests(vec![t("000", &rows[..2])]);
        let long = TestSet::from_tests(vec![t("000", &rows)]);
        let c_short = transition_coverage(&nl, &short);
        let c_long = transition_coverage(&nl, &long);
        assert!(c_long.detected >= c_short.detected);
        assert!(c_long.at_speed_pairs > c_short.at_speed_pairs);
    }
}
