//! End-to-end driver for the proposed compaction procedure.
//!
//! [`Pipeline`] wires the four phases together for one circuit: generate
//! (or accept) the combinational test set `C`, generate (or accept) the
//! test sequence `T_0`, run Phases 1–3 to obtain the *initial* proposed
//! test set `{τ_seq, τ_1..τ_M}`, and optionally Phase 4 (static compaction
//! by combining) for the final set. The result carries every quantity the
//! paper's Tables 1–5 report for the proposed method.

use atspeed_atpg::comb_tset::{self, CombTsetConfig};
use atspeed_atpg::{directed_t0, property_t0, random_t0, DirectedConfig, PropertyConfig};
use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{stats, CombTest, Sequence, SimConfig};

use crate::error::CoreError;
use crate::iterate::{build_tau_seq, IterateConfig};
use crate::oracle::{verify_test_set, ClaimedCoverage, OracleReport};
use crate::phase3::top_up_with;
use crate::phase4::{combine_tests_cfg, CombineConfig};
use crate::test::{AtSpeedStats, ScanTest, TestSet};

/// Memory bounds for the phases that would otherwise scale with
/// `faults × sequence length` (Phase 2 detection profiles) or with the
/// square of the test count (Phase 4's failed-pair memo). Both bounds
/// trade memory for extra work or pessimism without ever *over*-claiming
/// coverage, so any budget yields a sound test set; the default is
/// effectively unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Per-fault state-diff words kept by Phase 2 omission profiles
    /// ([`atspeed_atpg::compact::OmissionConfig::profile_state_words`]).
    pub profile_state_words: usize,
    /// Phase 4 failed-pair memo cap
    /// ([`CombineConfig::max_failed_pairs`]).
    pub max_failed_pairs: usize,
}

impl Default for MemoryBudget {
    fn default() -> Self {
        MemoryBudget {
            profile_state_words: usize::MAX,
            max_failed_pairs: CombineConfig::default().max_failed_pairs,
        }
    }
}

/// Where the initial test sequence `T_0` comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum T0Source {
    /// STRATEGATE-style directed generation (ISCAS-89 rows of Tables 1–4).
    Directed {
        /// Length cap for the generated sequence.
        max_len: usize,
    },
    /// PROPTEST-style burst generation (ITC-99 rows of Tables 1–4).
    Property {
        /// Length cap for the generated sequence.
        max_len: usize,
    },
    /// Uniform random sequence (Table 5 uses length 1000).
    Random {
        /// Exact length of the random sequence.
        len: usize,
    },
}

/// A plain-data description of one pipeline run — everything a
/// [`Pipeline`] needs except the netlist itself.
///
/// Where the builder borrows its circuit and reads `SIM_THREADS` from the
/// environment, a `PipelineConfig` is `Send + Sync + 'static` and fully
/// explicit, so it can cross threads as a job payload: a batch server
/// holds `(Arc<Netlist>, PipelineConfig)` pairs and each worker runs
/// [`Pipeline::from_config`] reentrantly. Two configs with equal
/// [`PipelineConfig::canonical_lines`] produce byte-identical results on
/// the same netlist, which is what content-addressed result caches key
/// on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Where `T_0` comes from.
    pub t0_source: T0Source,
    /// Master seed.
    pub seed: u64,
    /// Whether Phase 4 (static compaction) runs.
    pub phase4: bool,
    /// Whether the end-to-end coverage oracle re-checks the run.
    pub verify: bool,
    /// Threading/kernel configuration. Never read from the environment:
    /// a served job must not change behavior with the server's env.
    pub sim: SimConfig,
    /// Memory bounds for the profile- and cache-heavy phases.
    pub memory: MemoryBudget,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            t0_source: T0Source::Directed { max_len: 1024 },
            seed: 1,
            phase4: true,
            verify: false,
            sim: SimConfig::default(),
            memory: MemoryBudget::default(),
        }
    }
}

impl PipelineConfig {
    /// The canonical `key = value` rendering of the **result-determining**
    /// fields, one per line, sorted by key.
    ///
    /// This is the basis of config fingerprints: two configs with equal
    /// canonical lines yield byte-identical [`PipelineResult`]s on the
    /// same netlist. Execution knobs that are guaranteed not to change
    /// results — worker threads, chunk size, the evaluation kernel — are
    /// deliberately **excluded**, so a cache keyed on these lines serves
    /// a result computed at any thread count to a client asking at any
    /// other.
    pub fn canonical_lines(&self) -> String {
        let (t0, t0_len) = match self.t0_source {
            T0Source::Directed { max_len } => ("directed", max_len),
            T0Source::Property { max_len } => ("property", max_len),
            T0Source::Random { len } => ("random", len),
        };
        format!(
            "max_failed_pairs = {}\nphase4 = {}\nprofile_state_words = {}\n\
             seed = {}\nt0 = {}\nt0_len = {}\nverify = {}\n",
            self.memory.max_failed_pairs,
            u8::from(self.phase4),
            self.memory.profile_state_words,
            self.seed,
            t0,
            t0_len,
            u8::from(self.verify),
        )
    }
}

/// Builder for one pipeline run over a circuit.
#[derive(Debug, Clone)]
pub struct Pipeline<'a> {
    nl: &'a Netlist,
    t0_source: T0Source,
    seed: u64,
    comb_cfg: CombTsetConfig,
    iterate_cfg: IterateConfig,
    run_phase4: bool,
    provided_t0: Option<Sequence>,
    provided_c: Option<Vec<CombTest>>,
    sim: SimConfig,
    verify: bool,
    memory: MemoryBudget,
}

impl<'a> Pipeline<'a> {
    /// Creates a pipeline for `nl` with default settings (directed `T_0`
    /// capped at 1024 vectors, Phase 4 enabled).
    ///
    /// Threading defaults to [`SimConfig::from_env`] (`SIM_THREADS`, serial
    /// when unset); every stage produces identical results at any thread
    /// count, so the environment only changes wall time.
    pub fn new(nl: &'a Netlist) -> Self {
        Pipeline {
            nl,
            t0_source: T0Source::Directed { max_len: 1024 },
            seed: 1,
            comb_cfg: CombTsetConfig::default(),
            iterate_cfg: IterateConfig::default(),
            run_phase4: true,
            provided_t0: None,
            provided_c: None,
            sim: SimConfig::from_env(),
            verify: false,
            memory: MemoryBudget::default(),
        }
    }

    /// Creates a pipeline for `nl` from a plain-data [`PipelineConfig`].
    ///
    /// Unlike [`Pipeline::new`] this never consults the environment: the
    /// config says everything, so a batch server running many jobs on one
    /// process gets identical behavior regardless of its own `SIM_THREADS`.
    pub fn from_config(nl: &'a Netlist, cfg: &PipelineConfig) -> Self {
        Pipeline {
            nl,
            t0_source: cfg.t0_source,
            seed: cfg.seed,
            comb_cfg: CombTsetConfig::default(),
            iterate_cfg: IterateConfig::default(),
            run_phase4: cfg.phase4,
            provided_t0: None,
            provided_c: None,
            sim: cfg.sim,
            verify: cfg.verify,
            memory: cfg.memory,
        }
    }

    /// Bounds the memory of the profile- and cache-heavy phases; see
    /// [`MemoryBudget`]. Any budget yields a sound (possibly less
    /// compacted) test set.
    pub fn memory_budget(mut self, memory: MemoryBudget) -> Self {
        self.memory = memory;
        self
    }

    /// Overrides the threading configuration for every stage (combinational
    /// set generation, `T_0` generation, Phases 1–4).
    pub fn sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the `T_0` source.
    pub fn t0_source(mut self, source: T0Source) -> Self {
        self.t0_source = source;
        self
    }

    /// Sets the master seed (combinational set and `T_0` generation derive
    /// from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the combinational-test-set configuration.
    pub fn comb_config(mut self, cfg: CombTsetConfig) -> Self {
        self.comb_cfg = cfg;
        self
    }

    /// Overrides the Phases 1–2 iteration configuration.
    pub fn iterate_config(mut self, cfg: IterateConfig) -> Self {
        self.iterate_cfg = cfg;
        self
    }

    /// Enables or disables Phase 4 (static compaction of the result).
    pub fn phase4(mut self, enabled: bool) -> Self {
        self.run_phase4 = enabled;
        self
    }

    /// Enables the end-to-end coverage oracle: after the phases finish, the
    /// initial and compacted test sets are independently re-fault-simulated
    /// with the serial reference engine and cross-checked against the
    /// claimed coverage ([`verify_test_set`]). [`Pipeline::run`] then
    /// returns [`CoreError::VerificationFailed`] on any discrepancy.
    pub fn verify(mut self, enabled: bool) -> Self {
        self.verify = enabled;
        self
    }

    /// Supplies an external `T_0` instead of generating one.
    pub fn with_t0(mut self, t0: Sequence) -> Self {
        self.provided_t0 = Some(t0);
        self
    }

    /// Supplies an external combinational test set `C` instead of
    /// generating one.
    pub fn with_comb_tests(mut self, c: Vec<CombTest>) -> Self {
        self.provided_c = Some(c);
        self
    }

    /// Runs the full procedure.
    ///
    /// # Errors
    ///
    /// Returns an error when `C` would be empty, `T_0` is empty, or the
    /// fault universe is empty.
    pub fn run(self) -> Result<PipelineResult, CoreError> {
        let nl = self.nl;
        let universe = FaultUniverse::full(nl);
        let targets: Vec<FaultId> = universe.representatives().to_vec();

        // Combinational test set C.
        stats::set_phase("comb-gen");
        let sp = atspeed_trace::span_args(
            "pipeline.comb-gen",
            &[("faults", &targets.len()), ("gates", &nl.num_gates())],
        );
        let (comb_tests, untestable) = match self.provided_c {
            Some(c) => (c, Vec::new()),
            None => {
                let mut cfg = self.comb_cfg.clone();
                cfg.seed = cfg.seed.wrapping_add(self.seed.wrapping_mul(0x9e37_79b9));
                cfg.sim = self.sim;
                let set = comb_tset::generate(nl, &universe, &cfg)?;
                (set.tests, set.untestable)
            }
        };
        if comb_tests.is_empty() {
            return Err(CoreError::NoScanInCandidates);
        }

        // T_0.
        drop(sp);
        stats::set_phase("t0-gen");
        let sp = atspeed_trace::span("pipeline.t0-gen");
        let t0 = match self.provided_t0 {
            Some(t0) => t0,
            None => match self.t0_source {
                T0Source::Directed { max_len } => directed_t0(
                    nl,
                    &universe,
                    &targets,
                    &DirectedConfig {
                        max_len,
                        seed: self.seed.wrapping_add(11),
                        sim: self.sim,
                        ..DirectedConfig::default()
                    },
                ),
                T0Source::Property { max_len } => property_t0(
                    nl,
                    &universe,
                    &targets,
                    &PropertyConfig {
                        max_len,
                        seed: self.seed.wrapping_add(13),
                        ..PropertyConfig::default()
                    },
                ),
                T0Source::Random { len } => random_t0(nl, len, self.seed.wrapping_add(17)),
            },
        };
        if t0.is_empty() {
            return Err(CoreError::EmptyT0);
        }
        let t0_len = t0.len();

        // Phases 1–2, iterated.
        drop(sp);
        stats::set_phase("phase1-2");
        let sp = atspeed_trace::span_args(
            "pipeline.phase1-2",
            &[
                ("comb_tests", &comb_tests.len()),
                ("faults", &targets.len()),
            ],
        );
        let mut iterate_cfg = self.iterate_cfg;
        iterate_cfg.phase1.sim = self.sim;
        iterate_cfg.omission.sim = self.sim;
        iterate_cfg.omission.profile_state_words = self.memory.profile_state_words;
        let tau = build_tau_seq(nl, &universe, &t0, &comb_tests, &targets, iterate_cfg)?;

        // Phase 3: top up to complete coverage.
        drop(sp);
        stats::set_phase("phase3");
        let undetected: Vec<FaultId> = targets
            .iter()
            .filter(|f| !tau.detected.contains(f))
            .copied()
            .collect();
        let sp = atspeed_trace::span_args("pipeline.phase3", &[("undetected", &undetected.len())]);
        let p3 = top_up_with(nl, &universe, &comb_tests, &undetected, self.sim);

        let mut tests: Vec<ScanTest> = Vec::with_capacity(1 + p3.added.len());
        tests.push(tau.test.clone());
        tests.extend(p3.added.iter().cloned());
        let initial_set = TestSet::from_tests(tests);
        let final_detected_faults: usize = targets.len() - p3.still_undetected.len();

        // Phase 4: static compaction of the proposed set.
        drop(sp);
        stats::set_phase("phase4");
        let sp = atspeed_trace::span_args("pipeline.phase4", &[("tests", &initial_set.len())]);
        let detected_by_set: Vec<FaultId> = targets
            .iter()
            .filter(|f| !p3.still_undetected.contains(f))
            .copied()
            .collect();
        let (compacted_set, _) = if self.run_phase4 {
            combine_tests_cfg(
                nl,
                &universe,
                &initial_set,
                &detected_by_set,
                CombineConfig {
                    transfer: None,
                    sim: self.sim,
                    max_failed_pairs: self.memory.max_failed_pairs,
                },
            )
        } else {
            (initial_set.clone(), Default::default())
        };
        drop(sp);

        // Optional end-to-end verification: re-simulate both sets with the
        // serial reference engine against what the phases claimed. The
        // initial set carries the per-test τ_seq claim (test 0); the
        // compacted set must cover the same whole-set claim, which is
        // exactly Phase 4's "coverage never decreases" invariant.
        let oracle = if self.verify {
            stats::set_phase("verify");
            let sp = atspeed_trace::span("pipeline.verify");
            let init_claim = ClaimedCoverage {
                detected: detected_by_set.clone(),
                per_test: vec![(0, tau.detected.clone())],
            };
            let a = verify_test_set(nl, &universe, &initial_set, &init_claim)?;
            let b = verify_test_set(
                nl,
                &universe,
                &compacted_set,
                &ClaimedCoverage::set_only(detected_by_set.clone()),
            )?;
            drop(sp);
            Some(OracleReport {
                set_faults_checked: a.set_faults_checked + b.set_faults_checked,
                per_test_faults_checked: a.per_test_faults_checked + b.per_test_faults_checked,
                simulations: a.simulations + b.simulations,
            })
        } else {
            None
        };
        stats::set_phase("post-pipeline");

        let n_sv = nl.num_ffs();
        Ok(PipelineResult {
            circuit: nl.name().to_owned(),
            n_sv,
            num_comb_tests: comb_tests.len(),
            total_faults: universe.num_collapsed(),
            untestable_faults: untestable.len(),
            t0_len,
            t0_detected: tau.f0.len(),
            tau_seq_len: tau.test.len(),
            tau_seq_detected: tau.detected.len(),
            iterations: tau.iterations,
            added_tests: p3.added.len(),
            final_detected: final_detected_faults,
            init_cycles: initial_set.clock_cycles(n_sv),
            comp_cycles: compacted_set.clock_cycles(n_sv),
            at_speed_init: initial_set.at_speed_stats(),
            at_speed_comp: compacted_set.at_speed_stats(),
            initial_set,
            compacted_set,
            comb_tests,
            oracle,
        })
    }
}

/// Everything the paper's tables report about one proposed-procedure run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Circuit name.
    pub circuit: String,
    /// Number of scanned state variables `N_SV`.
    pub n_sv: usize,
    /// `|C|` (Table 1 column "comb tsts").
    pub num_comb_tests: usize,
    /// Collapsed fault count (Table 1 column "flts").
    pub total_faults: usize,
    /// Faults proven combinationally untestable while generating `C`.
    pub untestable_faults: usize,
    /// `L(T_0)` (Table 2).
    pub t0_len: usize,
    /// Faults detected by `T_0` without scan (Table 1 column "T0").
    pub t0_detected: usize,
    /// `L(T_seq)` (Table 2 column "scan").
    pub tau_seq_len: usize,
    /// Faults detected by `τ_seq` (Table 1 column "scan").
    pub tau_seq_detected: usize,
    /// Iterations of Phases 1–2.
    pub iterations: usize,
    /// Tests added in Phase 3 (Table 2 column "added c.tst").
    pub added_tests: usize,
    /// Faults detected by the final test set (Table 1 column "final").
    pub final_detected: usize,
    /// Clock cycles of the proposed set before Phase 4 (Table 3 "init").
    pub init_cycles: usize,
    /// Clock cycles after Phase 4 (Table 3 "comp").
    pub comp_cycles: usize,
    /// Sequence-length statistics before Phase 4.
    pub at_speed_init: Option<AtSpeedStats>,
    /// Sequence-length statistics after Phase 4 (Table 4).
    pub at_speed_comp: Option<AtSpeedStats>,
    /// The proposed test set at the end of Phase 3.
    pub initial_set: TestSet,
    /// The test set after Phase 4.
    pub compacted_set: TestSet,
    /// The combinational test set `C` used (kept for baseline runs).
    pub comb_tests: Vec<CombTest>,
    /// What the coverage oracle re-simulated, when [`Pipeline::verify`] was
    /// enabled (`None` otherwise).
    pub oracle: Option<OracleReport>,
}

impl PipelineResult {
    /// Fault coverage of the final set over all collapsed faults.
    pub fn coverage(&self) -> f64 {
        self.final_detected as f64 / self.total_faults as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::synth::{generate, SynthSpec};

    #[test]
    fn s27_full_run_reaches_complete_coverage() {
        let nl = s27();
        let r = Pipeline::new(&nl)
            .t0_source(T0Source::Directed { max_len: 64 })
            .seed(7)
            .run()
            .unwrap();
        assert_eq!(r.total_faults, 32);
        assert_eq!(r.final_detected, 32, "s27 is fully testable");
        assert!(r.tau_seq_detected >= r.t0_detected);
        assert!(r.tau_seq_len <= r.t0_len);
        assert!(r.comp_cycles <= r.init_cycles);
        assert_eq!(
            r.init_cycles,
            (r.initial_set.len() + 1) * 3 + r.initial_set.total_vectors()
        );
    }

    #[test]
    fn random_t0_source_matches_table5_shape() {
        let nl = s27();
        let r = Pipeline::new(&nl)
            .t0_source(T0Source::Random { len: 100 })
            .seed(3)
            .run()
            .unwrap();
        assert_eq!(r.t0_len, 100);
        assert!(r.tau_seq_len <= 100);
        assert!(r.final_detected >= r.tau_seq_detected);
    }

    #[test]
    fn provided_inputs_are_respected() {
        use atspeed_atpg::random_t0 as rt0;
        let nl = s27();
        let t0 = rt0(&nl, 32, 9);
        let r = Pipeline::new(&nl)
            .with_t0(t0.clone())
            .seed(5)
            .run()
            .unwrap();
        assert_eq!(r.t0_len, 32);
    }

    #[test]
    fn phase4_toggle_changes_only_the_compacted_set() {
        let nl = s27();
        let with = Pipeline::new(&nl)
            .t0_source(T0Source::Random { len: 60 })
            .run()
            .unwrap();
        let without = Pipeline::new(&nl)
            .t0_source(T0Source::Random { len: 60 })
            .phase4(false)
            .run()
            .unwrap();
        assert_eq!(with.init_cycles, without.init_cycles);
        assert_eq!(without.init_cycles, without.comp_cycles);
        assert!(with.comp_cycles <= with.init_cycles);
    }

    #[test]
    fn runs_on_synthetic_benchmark() {
        let nl = generate(&SynthSpec::new("pipe", 4, 3, 8, 100, 5)).unwrap();
        let r = Pipeline::new(&nl)
            .t0_source(T0Source::Property { max_len: 128 })
            .run()
            .unwrap();
        // The headline claims of the paper, as invariants:
        // τ_seq detects at least what T0 did, and the final set detects
        // every fault C can cover.
        assert!(r.tau_seq_detected >= r.t0_detected);
        assert!(r.final_detected >= r.tau_seq_detected);
        assert!(r.coverage() > 0.5);
    }

    #[test]
    fn verified_run_matches_unverified_and_reports_oracle_work() {
        let nl = s27();
        let plain = Pipeline::new(&nl).seed(7).run().unwrap();
        assert!(plain.oracle.is_none());
        let verified = Pipeline::new(&nl).seed(7).verify(true).run().unwrap();
        let oracle = verified.oracle.expect("oracle ran");
        assert!(oracle.simulations > 0);
        assert!(oracle.set_faults_checked > 0);
        assert_eq!(plain.initial_set, verified.initial_set);
        assert_eq!(plain.compacted_set, verified.compacted_set);
        assert_eq!(plain.final_detected, verified.final_detected);
    }

    #[test]
    fn memory_budget_keeps_results_sound() {
        let nl = s27();
        let free = Pipeline::new(&nl)
            .t0_source(T0Source::Random { len: 100 })
            .seed(3)
            .run()
            .unwrap();
        let tight = Pipeline::new(&nl)
            .t0_source(T0Source::Random { len: 100 })
            .seed(3)
            .memory_budget(MemoryBudget {
                profile_state_words: 1,
                max_failed_pairs: 2,
            })
            .run()
            .unwrap();
        // Bounded profiles under-claim and the pair-memo cap only forces
        // re-checks, so coverage and compaction quality are unchanged on a
        // circuit this small.
        assert_eq!(tight.final_detected, free.final_detected);
        assert_eq!(tight.compacted_set, free.compacted_set);
    }

    #[test]
    fn is_deterministic() {
        let nl = s27();
        let a = Pipeline::new(&nl).seed(42).run().unwrap();
        let b = Pipeline::new(&nl).seed(42).run().unwrap();
        assert_eq!(a.init_cycles, b.init_cycles);
        assert_eq!(a.comp_cycles, b.comp_cycles);
        assert_eq!(a.initial_set, b.initial_set);
    }

    #[test]
    fn from_config_matches_equivalent_builder() {
        let nl = s27();
        let cfg = PipelineConfig {
            t0_source: T0Source::Random { len: 64 },
            seed: 7,
            phase4: true,
            verify: true,
            ..PipelineConfig::default()
        };
        let a = Pipeline::from_config(&nl, &cfg).run().unwrap();
        let b = Pipeline::new(&nl)
            .t0_source(T0Source::Random { len: 64 })
            .seed(7)
            .verify(true)
            .sim_config(SimConfig::default())
            .run()
            .unwrap();
        assert_eq!(a.initial_set, b.initial_set);
        assert_eq!(a.compacted_set, b.compacted_set);
        assert_eq!(a.final_detected, b.final_detected);
    }

    #[test]
    fn canonical_lines_track_results_not_execution_knobs() {
        let base = PipelineConfig::default();

        // Execution knobs (threads, engine, chunking) never change results,
        // so they must not change the canonical rendering either.
        let mut threaded = base;
        threaded.sim = SimConfig {
            threads: 8,
            chunk_size: 3,
            engine: atspeed_sim::EngineKind::WideFused,
        };
        assert_eq!(base.canonical_lines(), threaded.canonical_lines());

        // Every result-determining field must show up.
        for changed in [
            PipelineConfig { seed: 2, ..base },
            PipelineConfig {
                t0_source: T0Source::Random { len: 1024 },
                ..base
            },
            PipelineConfig {
                t0_source: T0Source::Directed { max_len: 512 },
                ..base
            },
            PipelineConfig {
                phase4: false,
                ..base
            },
            PipelineConfig {
                verify: true,
                ..base
            },
            PipelineConfig {
                memory: MemoryBudget {
                    profile_state_words: 1,
                    max_failed_pairs: 2,
                },
                ..base
            },
        ] {
            assert_ne!(
                base.canonical_lines(),
                changed.canonical_lines(),
                "{changed:?} must fingerprint differently"
            );
        }

        // Stable, line-oriented, `key = value` shape.
        let lines = base.canonical_lines();
        assert!(lines.ends_with('\n'));
        assert!(lines.lines().all(|l| l.contains(" = ")));
    }
}
