//! Scan tests, test sets, and the clock-cycle cost model.

use std::fmt;

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{CombTest, ParallelFsim, SeqFaultSim, SeqSim, Sequence, SimConfig, State, V3};

/// A scan-based test `τ = (SI, T)`: a scan-in state followed by a
/// primary-input sequence applied at speed. The expected scan-out vector
/// `SO` is fault-free-simulated on demand rather than stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanTest {
    /// The scan-in state `SI` (one value per flip-flop).
    pub si: State,
    /// The primary-input sequence `T`, applied with the functional clock.
    pub seq: Sequence,
}

impl ScanTest {
    /// Creates a test from a scan-in state and input sequence.
    pub fn new(si: State, seq: Sequence) -> Self {
        ScanTest { si, seq }
    }

    /// Converts a combinational test `c = (c_s, c_v)` into the equivalent
    /// single-vector scan test `τ = (c_s, (c_v))`.
    pub fn from_comb(c: &CombTest) -> Self {
        ScanTest {
            si: c.state.clone(),
            seq: std::iter::once(c.inputs.clone()).collect(),
        }
    }

    /// The length `L(T)` of the primary-input sequence.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the input sequence is empty (a degenerate test).
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// The expected fault-free scan-out vector `SO` after applying the test.
    pub fn expected_scan_out(&self, nl: &Netlist) -> State {
        let trace = SeqSim::new(nl).run(&self.si, &self.seq);
        trace
            .states
            .last()
            .cloned()
            .unwrap_or_else(|| self.si.clone())
    }

    /// Which of `faults` this test detects (primary outputs each cycle plus
    /// the scan-out at the end).
    pub fn detects(&self, nl: &Netlist, universe: &FaultUniverse, faults: &[FaultId]) -> Vec<bool> {
        SeqFaultSim::new(nl).detect(&self.si, &self.seq, faults, universe, true)
    }
}

/// Average and range of primary-input sequence lengths — the paper's
/// Table 4 ("at-speed test lengths") statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtSpeedStats {
    /// Mean sequence length.
    pub average: f64,
    /// Shortest sequence.
    pub min: usize,
    /// Longest sequence.
    pub max: usize,
}

impl fmt::Display for AtSpeedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ({}-{})", self.average, self.min, self.max)
    }
}

/// An ordered set of scan tests.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestSet {
    /// The tests, applied in order.
    pub tests: Vec<ScanTest>,
}

impl TestSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TestSet::default()
    }

    /// Creates a set from tests.
    pub fn from_tests(tests: Vec<ScanTest>) -> Self {
        TestSet { tests }
    }

    /// Builds the paper's \[4\]-style initial test set: one single-vector
    /// scan test per combinational test.
    pub fn from_comb_tests(comb: &[CombTest]) -> Self {
        TestSet {
            tests: comb.iter().map(ScanTest::from_comb).collect(),
        }
    }

    /// Number of tests `k`.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Whether the set has no tests.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Total number of primary-input vectors `Σ L(T_j)`.
    pub fn total_vectors(&self) -> usize {
        self.tests.iter().map(ScanTest::len).sum()
    }

    /// The clock-cycle cost model of the paper:
    /// `N_cyc = (k+1)·N_SV + Σ L(T_j)`.
    ///
    /// `k+1` scan operations are required to apply `k` tests (scan-out of
    /// each test overlaps the scan-in of the next); each primary-input
    /// vector takes one functional cycle. An empty set costs nothing.
    pub fn clock_cycles(&self, n_sv: usize) -> usize {
        self.clock_cycles_with_chains(n_sv, 1)
    }

    /// The cost model generalized to `chains` balanced parallel scan
    /// chains: a scan operation shifts `ceil(N_SV / chains)` cycles, so
    /// `N_cyc = (k+1)·ceil(N_SV/chains) + Σ L(T_j)`.
    ///
    /// With more chains, scan operations get cheaper and the relative
    /// advantage of few-test/long-sequence sets shrinks — a useful
    /// sensitivity study on the paper's premise.
    ///
    /// # Panics
    ///
    /// Panics if `chains` is zero.
    pub fn clock_cycles_with_chains(&self, n_sv: usize, chains: usize) -> usize {
        assert!(chains > 0, "at least one scan chain");
        if self.tests.is_empty() {
            return 0;
        }
        (self.tests.len() + 1) * n_sv.div_ceil(chains) + self.total_vectors()
    }

    /// Sequence-length statistics (the paper's Table 4).
    ///
    /// Returns `None` for an empty set.
    pub fn at_speed_stats(&self) -> Option<AtSpeedStats> {
        if self.tests.is_empty() {
            return None;
        }
        let lens: Vec<usize> = self.tests.iter().map(ScanTest::len).collect();
        let sum: usize = lens.iter().sum();
        Some(AtSpeedStats {
            average: sum as f64 / lens.len() as f64,
            min: *lens.iter().min().expect("non-empty"),
            max: *lens.iter().max().expect("non-empty"),
        })
    }

    /// Which of `faults` the whole set detects (union over tests, with
    /// fault dropping across tests), single-threaded.
    pub fn detects(&self, nl: &Netlist, universe: &FaultUniverse, faults: &[FaultId]) -> Vec<bool> {
        self.detects_with(nl, universe, faults, SimConfig::default())
    }

    /// Like [`TestSet::detects`], with tests sharded across `sim.threads`
    /// workers that drop faults through a shared detection bitmap. The
    /// union over tests is order-independent, so the detected set is
    /// identical at any thread count.
    pub fn detects_with(
        &self,
        nl: &Netlist,
        universe: &FaultUniverse,
        faults: &[FaultId],
        sim: SimConfig,
    ) -> Vec<bool> {
        let runs: Vec<(&State, &Sequence)> = self.tests.iter().map(|t| (&t.si, &t.seq)).collect();
        ParallelFsim::new(nl, sim).detect_union(&runs, faults, universe, true)
    }

    /// Count of detected faults among `faults`.
    pub fn count_detected(
        &self,
        nl: &Netlist,
        universe: &FaultUniverse,
        faults: &[FaultId],
    ) -> usize {
        self.detects(nl, universe, faults)
            .iter()
            .filter(|&&d| d)
            .count()
    }
}

impl FromIterator<ScanTest> for TestSet {
    fn from_iter<I: IntoIterator<Item = ScanTest>>(iter: I) -> Self {
        TestSet {
            tests: iter.into_iter().collect(),
        }
    }
}

impl Extend<ScanTest> for TestSet {
    fn extend<I: IntoIterator<Item = ScanTest>>(&mut self, iter: I) {
        self.tests.extend(iter);
    }
}

/// Fills any X values in a state with a deterministic default (zero), used
/// where the paper requires fully-specified scan-in vectors.
pub fn specify_state(state: &State) -> State {
    state
        .iter()
        .map(|&v| if v == V3::X { V3::Zero } else { v })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_sim::vectors::parse_values;

    fn t(si: &str, rows: &[&str]) -> ScanTest {
        ScanTest::new(
            parse_values(si),
            rows.iter().map(|r| parse_values(r)).collect(),
        )
    }

    #[test]
    fn cost_model_matches_paper_formula() {
        // k tests, N_SV state variables: (k+1)*N_SV + total vectors.
        let set = TestSet::from_tests(vec![t("000", &["0000", "1111"]), t("111", &["1010"])]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_vectors(), 3);
        assert_eq!(set.clock_cycles(3), 3 * 3 + 3);
        assert_eq!(set.clock_cycles(21), 3 * 21 + 3);
        assert_eq!(TestSet::new().clock_cycles(21), 0);
    }

    #[test]
    fn single_test_cost_is_two_scans_plus_sequence() {
        // The paper's best case: one test of length N costs 2*N_SV + N.
        let set = TestSet::from_tests(vec![t("000", &["0000"; 10])]);
        assert_eq!(set.clock_cycles(3), 2 * 3 + 10);
    }

    #[test]
    fn multi_chain_cost_model() {
        let set = TestSet::from_tests(vec![t("000", &["0000", "1111"]), t("111", &["1010"])]);
        // 21 state variables over 4 chains: ceil(21/4) = 6 shift cycles.
        assert_eq!(set.clock_cycles_with_chains(21, 4), 3 * 6 + 3);
        // One chain degenerates to the paper's formula.
        assert_eq!(set.clock_cycles_with_chains(21, 1), set.clock_cycles(21));
        // Enough chains make scan a single cycle.
        assert_eq!(set.clock_cycles_with_chains(21, 21), 3 + 3);
    }

    #[test]
    #[should_panic(expected = "at least one scan chain")]
    fn zero_chains_rejected() {
        let set = TestSet::from_tests(vec![t("0", &["0"])]);
        let _ = set.clock_cycles_with_chains(1, 0);
    }

    #[test]
    fn at_speed_stats() {
        let set = TestSet::from_tests(vec![
            t("000", &["0000"; 7]),
            t("111", &["1010"]),
            t("010", &["0101", "1111"]),
        ]);
        let st = set.at_speed_stats().unwrap();
        assert_eq!(st.min, 1);
        assert_eq!(st.max, 7);
        assert!((st.average - 10.0 / 3.0).abs() < 1e-9);
        assert_eq!(st.to_string(), "3.33 (1-7)");
        assert!(TestSet::new().at_speed_stats().is_none());
    }

    #[test]
    fn from_comb_produces_length_one_tests() {
        let c = CombTest::new(parse_values("010"), parse_values("1100"));
        let t = ScanTest::from_comb(&c);
        assert_eq!(t.len(), 1);
        assert_eq!(t.si, parse_values("010"));
        assert_eq!(t.seq.vector(0), &parse_values("1100")[..]);
    }

    #[test]
    fn expected_scan_out_matches_good_simulation() {
        let nl = s27();
        let test = t("010", &["1010", "0110"]);
        let so = test.expected_scan_out(&nl);
        let trace = SeqSim::new(&nl).run(&test.si, &test.seq);
        assert_eq!(so, trace.states[1]);
    }

    #[test]
    fn set_detection_is_union_of_test_detection() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let t1 = t("000", &["1010"]);
        let t2 = t("111", &["0101"]);
        let set = TestSet::from_tests(vec![t1.clone(), t2.clone()]);
        let d1 = t1.detects(&nl, &u, &reps);
        let d2 = t2.detects(&nl, &u, &reps);
        let ds = set.detects(&nl, &u, &reps);
        for k in 0..reps.len() {
            assert_eq!(ds[k], d1[k] || d2[k], "fault {k}");
        }
        assert_eq!(
            set.count_detected(&nl, &u, &reps),
            ds.iter().filter(|&&d| d).count()
        );
    }

    #[test]
    fn specify_state_fills_x() {
        let s = parse_values("1x0x");
        assert_eq!(specify_state(&s), parse_values("1000"));
    }

    #[test]
    fn collect_and_extend() {
        let mut set: TestSet = vec![t("000", &["0000"])].into_iter().collect();
        set.extend(vec![t("111", &["1111"])]);
        assert_eq!(set.len(), 2);
    }
}
