//! The test-compaction procedure of Pomeranz & Reddy (DAC 2001), with its
//! baselines.
//!
//! The paper's observation: for a full-scan circuit, a test set's
//! application time is `N_cyc = (k+1)·N_SV + Σ L(T_j)` clock cycles — `k+1`
//! scan operations for `k` tests plus one functional cycle per primary-input
//! vector. Static compaction by *combining* tests reduces `k` while the
//! total vector count stays put, so the cheapest test sets have **few tests
//! with long primary-input sequences** — and those long sequences run on
//! the functional clock, i.e. at speed, which helps catch delay defects.
//!
//! Instead of compacting its way there from a combinational test set, the
//! proposed procedure *generates* such a set directly:
//!
//! 1. **Phase 1** ([`phase1`]) turns a scan-less test sequence `T_0` into a
//!    scan-based test: choose the scan-in state `SI` (from the states of a
//!    combinational test set `C`) that maximizes detection, then the
//!    earliest scan-out time that loses no detected fault;
//! 2. **Phase 2** ([`phase2`]) shortens the sequence by vector omission;
//!    Phases 1–2 repeat ([`iterate`]) until a scan-in state repeats;
//! 3. **Phase 3** ([`phase3`]) adds single-vector scan tests from `C` for
//!    the faults `τ_seq` misses;
//! 4. **Phase 4** ([`phase4`]) statically compacts the result by test
//!    combining (the procedure of the paper's reference \[4\], also used
//!    standalone as the main baseline).
//!
//! [`dynamic`] provides a dynamic-compaction baseline in the spirit of the
//! paper's references \[2,3\], and [`pipeline`] drives everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod diagnose;
pub mod dynamic;
mod error;
pub mod export;
pub mod iterate;
pub mod oracle;
pub mod partial;
pub mod phase1;
pub mod phase2;
pub mod phase3;
pub mod phase4;
pub mod pipeline;
pub mod test;

pub use delay::{transition_coverage, DelayCoverage};
pub use diagnose::{diagnose, Candidate};
pub use error::CoreError;
pub use export::write_test_program;
pub use iterate::{build_tau_seq, IterateConfig, TauSeqResult};
pub use oracle::{verify_test_set, ClaimedCoverage, OracleReport};
pub use partial::PartialScan;
pub use phase1::{select_scan_test, Phase1Config, Phase1Result, ScanOutRule};
pub use phase3::{top_up, Phase3Result};
pub use phase4::{
    baseline4, combine_tests, combine_tests_cfg, combine_tests_with, Baseline4Result,
    CombineConfig, StaticCompactionStats, TransferConfig,
};
pub use pipeline::{MemoryBudget, Pipeline, PipelineConfig, PipelineResult, T0Source};
pub use test::{AtSpeedStats, ScanTest, TestSet};
