//! Tester-program export of scan test sets.
//!
//! Serializes a [`TestSet`] into a self-describing, line-oriented text
//! format in the spirit of STIL/WGL pattern files: every test spells out
//! its scan-in vector, its at-speed primary-input vectors with the expected
//! primary-output responses (from fault-free simulation), and the expected
//! scan-out vector. The format is the hand-off artifact a downstream user
//! would feed to a tester bridge.
//!
//! ```text
//! # atspeed test program: s27
//! # 3 scan cells, 4 inputs, 1 outputs, 2 tests
//! test 0
//!   scan_in  010
//!   vector   1010 expect 1
//!   vector   0110 expect 0
//!   scan_out 011
//! end
//! ```

use std::fmt::Write as _;

use atspeed_circuit::Netlist;
use atspeed_sim::{SeqSim, V3};

use crate::test::TestSet;

fn render_values(values: &[V3]) -> String {
    values
        .iter()
        .map(|v| match v {
            V3::Zero => '0',
            V3::One => '1',
            V3::X => 'x',
        })
        .collect()
}

/// Renders `set` as a tester program for `nl`.
///
/// Expected responses are fault-free simulated; unknown (X) expectations
/// mean "don't compare" on the tester.
pub fn write_test_program(nl: &Netlist, set: &TestSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# atspeed test program: {}", nl.name());
    let _ = writeln!(
        out,
        "# {} scan cells, {} inputs, {} outputs, {} tests",
        nl.num_ffs(),
        nl.num_pis(),
        nl.num_pos(),
        set.len()
    );
    let _ = writeln!(
        out,
        "# total clock cycles: {}",
        set.clock_cycles(nl.num_ffs())
    );
    let sim = SeqSim::new(nl);
    for (k, test) in set.tests.iter().enumerate() {
        let trace = sim.run(&test.si, &test.seq);
        let _ = writeln!(out, "test {k}");
        let _ = writeln!(out, "  scan_in  {}", render_values(&test.si));
        for t in 0..test.seq.len() {
            let _ = writeln!(
                out,
                "  vector   {} expect {}",
                render_values(test.seq.vector(t)),
                render_values(&trace.po_values[t])
            );
        }
        let scan_out = trace
            .states
            .last()
            .cloned()
            .unwrap_or_else(|| test.si.clone());
        let _ = writeln!(out, "  scan_out {}", render_values(&scan_out));
        let _ = writeln!(out, "end");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test::ScanTest;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_sim::vectors::parse_values;

    fn set() -> TestSet {
        TestSet::from_tests(vec![
            ScanTest::new(
                parse_values("010"),
                ["1010", "0110"].iter().map(|r| parse_values(r)).collect(),
            ),
            ScanTest::new(
                parse_values("111"),
                std::iter::once(parse_values("0001")).collect(),
            ),
        ])
    }

    #[test]
    fn program_structure_is_complete() {
        let nl = s27();
        let set = set();
        let text = write_test_program(&nl, &set);
        let test_lines = text.lines().filter(|l| l.starts_with("test ")).count();
        assert_eq!(test_lines, 2);
        assert_eq!(text.matches("end").count(), 2);
        assert_eq!(text.matches("scan_in").count(), 2);
        assert_eq!(text.matches("scan_out").count(), 2);
        assert_eq!(text.matches("vector").count(), 3, "one line per vector");
        assert!(text.contains("# total clock cycles:"));
    }

    #[test]
    fn expected_responses_match_simulation() {
        let nl = s27();
        let set = set();
        let text = write_test_program(&nl, &set);
        // Re-simulate the first test and cross-check the expect fields.
        let trace = SeqSim::new(&nl).run(&set.tests[0].si, &set.tests[0].seq);
        let first_vector_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("vector"))
            .unwrap();
        let expect = first_vector_line.split("expect").nth(1).unwrap().trim();
        assert_eq!(expect, render_values(&trace.po_values[0]));
        // Scan-out expectation equals the final captured state.
        let so_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("scan_out"))
            .unwrap();
        assert_eq!(
            so_line.trim_start().trim_start_matches("scan_out").trim(),
            render_values(trace.states.last().unwrap())
        );
    }

    #[test]
    fn x_values_render_as_dont_compare() {
        let nl = s27();
        let set = TestSet::from_tests(vec![ScanTest::new(
            parse_values("xxx"),
            std::iter::once(parse_values("0000")).collect(),
        )]);
        let text = write_test_program(&nl, &set);
        assert!(text.contains("scan_in  xxx"));
        // With an unknown state, some outputs are unknown too.
        assert!(text.contains('x'));
    }

    #[test]
    fn empty_set_renders_header_only() {
        let nl = s27();
        let text = write_test_program(&nl, &TestSet::new());
        assert!(text.contains("0 tests"));
        assert!(!text.contains("test 0"));
    }
}
