//! Iterative application of Phases 1 and 2 (the paper's Section 3.3).
//!
//! Starting from `T_0`, each iteration re-derives `F_0` (faults detected
//! without scan by the current sequence), selects a scan-in state and
//! scan-out time (Phase 1), and compacts the sequence by vector omission
//! (Phase 2). The compacted sequence `T_C` becomes the next iteration's
//! `T_0`. Candidates are marked *selected* as they are used; the loop
//! terminates when the best candidate is one that was already selected
//! (after completing that final iteration), so at most `K = |C|` iterations
//! run.

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{CombTest, ParallelFsim, Sequence, V3};

use crate::error::CoreError;
use crate::phase1::{select_scan_test, Phase1Config};
use crate::phase2::{compact_test, OmissionConfig};
use crate::test::ScanTest;

/// Configuration for [`build_tau_seq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterateConfig {
    /// Phase 1 settings.
    pub phase1: Phase1Config,
    /// Phase 2 (vector omission) settings.
    pub omission: OmissionConfig,
    /// Optional cap on iterations (the natural bound is `|C|`).
    pub max_iterations: Option<usize>,
}

impl Default for IterateConfig {
    /// Defaults tuned for benchmark-scale circuits: candidate ranking on a
    /// fault sample, bounded omission effort, and at most 4 iterations
    /// (gains beyond the second are marginal across the catalog; the
    /// selected-state reuse rule usually fires first anyway).
    /// Exhaustive settings remain available by overriding the fields.
    fn default() -> Self {
        IterateConfig {
            phase1: Phase1Config {
                max_candidates: None,
                score_sample: Some(126),
                scan_out_rule: Default::default(),
                sim: Default::default(),
            },
            omission: OmissionConfig {
                max_passes: 1,
                chunked: true,
                attempt_budget: 160,
                ..OmissionConfig::default()
            },
            max_iterations: Some(4),
        }
    }
}

/// The outcome of the iterated Phases 1–2: the single long test `τ_seq`.
#[derive(Debug, Clone)]
pub struct TauSeqResult {
    /// The test `τ_seq = (SI_seq, T_seq)`.
    pub test: ScanTest,
    /// Faults detected by `τ_seq` — the paper's `F_seq` (Table 1 column
    /// "scan").
    pub detected: Vec<FaultId>,
    /// Faults detected by the original `T_0` without scan (Table 1 column
    /// "T0").
    pub f0: Vec<FaultId>,
    /// Iterations of Phases 1–2 performed.
    pub iterations: usize,
    /// Which candidates were marked selected (for reuse by the caller).
    pub selected: Vec<bool>,
}

/// Runs Phases 1–2 iteratively and returns `τ_seq`.
///
/// `targets` is the full target fault set `F` (collapsed representatives).
///
/// # Errors
///
/// Returns [`CoreError::EmptyT0`] when `t0` is empty and
/// [`CoreError::NoScanInCandidates`] when `candidates` is empty;
/// Phase 1 errors from [`select_scan_test`] propagate unchanged.
pub fn build_tau_seq(
    nl: &Netlist,
    universe: &FaultUniverse,
    t0: &Sequence,
    candidates: &[CombTest],
    targets: &[FaultId],
    cfg: IterateConfig,
) -> Result<TauSeqResult, CoreError> {
    if t0.is_empty() {
        return Err(CoreError::EmptyT0);
    }
    if candidates.is_empty() {
        return Err(CoreError::NoScanInCandidates);
    }
    let fsim = ParallelFsim::new(nl, cfg.phase1.sim);
    let init_x = vec![V3::X; nl.num_ffs()];
    let mut selected = vec![false; candidates.len()];
    let mut current: Sequence = t0.clone();
    let mut original_f0: Option<Vec<FaultId>> = None;
    let mut best: Option<ScanTest> = None;
    let mut iterations = 0usize;
    let max_iter = cfg
        .max_iterations
        .unwrap_or(candidates.len())
        .min(candidates.len())
        .max(1);

    while iterations < max_iter {
        iterations += 1;
        let _sp = atspeed_trace::span("iterate.iteration");
        let t_iter = std::time::Instant::now();
        // Step 1: faults of `targets` detected by the current sequence
        // without scan (unknown initial state, primary outputs only).
        let det = fsim.detect(&init_x, &current, targets, universe, false);
        let f0: Vec<FaultId> = targets
            .iter()
            .zip(det.iter())
            .filter(|(_, &d)| d)
            .map(|(&f, _)| f)
            .collect();
        let rest: Vec<FaultId> = targets
            .iter()
            .zip(det.iter())
            .filter(|(_, &d)| !d)
            .map(|(&f, _)| f)
            .collect();
        if original_f0.is_none() {
            original_f0 = Some(f0.clone());
        }

        let t_step1 = t_iter.elapsed();

        // Phase 1 (steps 2 and 3).
        let t_p1 = std::time::Instant::now();
        let p1 = select_scan_test(
            nl, universe, &current, candidates, &f0, &rest, &selected, cfg.phase1,
        )?;
        let reused = p1.reused_selected;
        selected[p1.si_index] = true;
        let t_phase1 = t_p1.elapsed();

        // Phase 2: vector omission preserving F_SO = F_SI.
        let t_p2 = std::time::Instant::now();
        let (compacted, om_stats) = compact_test(nl, universe, &p1.test, &p1.f_so, cfg.omission);
        atspeed_trace::debug!("core.iterate", "iteration done";
            iter = iterations,
            step1_us = t_step1.as_micros(),
            phase1_us = t_phase1.as_micros(),
            u_so = p1.u_so,
            phase2_us = t_p2.elapsed().as_micros(),
            omission_attempts = om_stats.attempts,
            omission_removed = om_stats.removed,
            len_before = p1.test.len(),
            len_after = compacted.len(),
        );
        let progressed = best
            .as_ref()
            .is_none_or(|prev| compacted.len() < prev.len());
        current = compacted.seq.clone();
        best = Some(compacted);

        // Stop on scan-in reuse (the paper's rule) or when an iteration
        // neither shortened the sequence nor can shorten it further (no
        // measurable progress — later iterations only re-confirm).
        if reused || !progressed {
            break;
        }
    }

    let test = best.expect("max_iter >= 1, so at least one iteration set `best`");
    let det = test.detects(nl, universe, targets);
    let detected: Vec<FaultId> = targets
        .iter()
        .zip(det.iter())
        .filter(|(_, &d)| d)
        .map(|(&f, _)| f)
        .collect();
    Ok(TauSeqResult {
        test,
        detected,
        f0: original_f0.unwrap_or_default(),
        iterations,
        selected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_atpg::comb_tset::{self, CombTsetConfig};
    use atspeed_atpg::random_t0;
    use atspeed_circuit::bench_fmt::s27;

    fn setup() -> (
        atspeed_circuit::Netlist,
        FaultUniverse,
        Sequence,
        Vec<CombTest>,
    ) {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let t0 = random_t0(&nl, 60, 21);
        let c = comb_tset::generate(&nl, &u, &CombTsetConfig::default())
            .unwrap()
            .tests;
        (nl, u, t0, c)
    }

    #[test]
    fn tau_seq_detects_superset_of_each_iteration_f0() {
        let (nl, u, t0, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        // F_SI ⊇ F_0 is structural only within one iteration: detection
        // from the all-X initial state is monotone under state refinement,
        // so any scan-in state keeps every bare-T0 detection, and the
        // scan-out rule and omission both preserve F_SO. Across iterations
        // a *re-selected* scan-in state may trade away an original-F_0
        // fault (Phase 3 tops those up), so pin the iteration count to 1.
        let cfg = IterateConfig {
            max_iterations: Some(1),
            ..IterateConfig::default()
        };
        let r = build_tau_seq(&nl, &u, &t0, &c, &targets, cfg).unwrap();
        for f in &r.f0 {
            assert!(
                r.detected.contains(f),
                "τ_seq lost fault {:?} detected by bare T0",
                f
            );
        }
        assert!(r.iterations >= 1);
        assert!(r.test.len() <= t0.len(), "sequence only ever shrinks");
    }

    #[test]
    fn terminates_within_candidate_count() {
        let (nl, u, t0, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let r = build_tau_seq(&nl, &u, &t0, &c, &targets, IterateConfig::default()).unwrap();
        assert!(r.iterations <= c.len());
        assert!(r.selected.iter().filter(|&&s| s).count() <= r.iterations);
    }

    #[test]
    fn respects_iteration_cap() {
        let (nl, u, t0, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let cfg = IterateConfig {
            max_iterations: Some(1),
            ..IterateConfig::default()
        };
        let r = build_tau_seq(&nl, &u, &t0, &c, &targets, cfg).unwrap();
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn empty_inputs_yield_errors() {
        let (nl, u, t0, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        assert_eq!(
            build_tau_seq(
                &nl,
                &u,
                &Sequence::new(),
                &c,
                &targets,
                IterateConfig::default()
            )
            .unwrap_err(),
            CoreError::EmptyT0
        );
        assert_eq!(
            build_tau_seq(&nl, &u, &t0, &[], &targets, IterateConfig::default()).unwrap_err(),
            CoreError::NoScanInCandidates
        );
    }

    #[test]
    fn is_deterministic() {
        let (nl, u, t0, c) = setup();
        let targets: Vec<FaultId> = u.representatives().to_vec();
        let a = build_tau_seq(&nl, &u, &t0, &c, &targets, IterateConfig::default()).unwrap();
        let b = build_tau_seq(&nl, &u, &t0, &c, &targets, IterateConfig::default()).unwrap();
        assert_eq!(a.test, b.test);
        assert_eq!(a.detected, b.detected);
    }
}
