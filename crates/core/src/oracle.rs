//! End-to-end coverage oracle: independent re-verification of the
//! coverage a pipeline run *claims*.
//!
//! Every phase of the procedure reports coverage through its own engine
//! configuration — Phase 1's profile-driven selection, Phase 2's
//! prefix-invariance-optimized omission checks, Phase 3's detection
//! matrix, Phase 4's pair checks — and the perf-oriented paths (compiled
//! kernel, parallel sharding, speculative omission) all promise
//! bit-identical results. The oracle takes none of that on faith: it
//! re-fault-simulates the final test set with the serial reference engine,
//! one test at a time (no sharding, no detection-profile shortcuts), and
//! cross-checks the claims. Per-test claims are simulated over the full
//! claimed list with no dropping of any kind; for the whole-set claim a
//! fault is retired once a test is confirmed to detect it — that *is* the
//! union the claim asserts (detection is monotone over tests, so the
//! outcome is independent of test order), and it keeps the oracle tractable
//! on circuits whose claims run to thousands of faults. The checks:
//!
//! - **Phase 1–2 claim** — `τ_seq` (a per-test claim) detects every fault
//!   the iterate loop reported for it;
//! - **Phase 3 claim** — the topped-up set detects every fault the pipeline
//!   reports as finally detected;
//! - **Phase 4 invariant** — combining never decreases coverage, so the
//!   compacted set must still detect the same claimed set.
//!
//! [`Pipeline`](crate::pipeline::Pipeline) runs these checks itself when
//! built with `.verify(true)`; the `atspeed-verify` crate re-exports
//! [`verify_test_set`] for standalone use (the `verifier` binary and the
//! `tables --verify` flag).

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::SeqFaultSim;

use crate::error::CoreError;
use crate::test::TestSet;

/// The coverage a pipeline run claims for one test set, to be checked by
/// [`verify_test_set`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClaimedCoverage {
    /// Faults the whole set is claimed to detect (the pipeline's
    /// `final_detected` list).
    pub detected: Vec<FaultId>,
    /// Per-test claims: `(test index, faults that test alone detects)`.
    /// The pipeline claims `τ_seq`'s detections this way (test index 0 of
    /// the initial set).
    pub per_test: Vec<(usize, Vec<FaultId>)>,
}

impl ClaimedCoverage {
    /// A claim that the set detects `detected`, with no per-test detail.
    pub fn set_only(detected: Vec<FaultId>) -> Self {
        ClaimedCoverage {
            detected,
            per_test: Vec::new(),
        }
    }
}

/// What the oracle actually re-simulated and found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Number of claimed faults re-checked against the whole set.
    pub set_faults_checked: usize,
    /// Number of per-test claimed faults re-checked.
    pub per_test_faults_checked: usize,
    /// Fault simulations performed (one per test per claim list).
    pub simulations: usize,
}

/// Independently re-fault-simulates `set` with the serial reference engine
/// and cross-checks it against `claimed`.
///
/// The union over tests must cover `claimed.detected` (each fault is
/// simulated until the first test confirmed to detect it — computing
/// exactly that union), and each per-test claim must be covered by that
/// test alone, simulated with no dropping at all.
///
/// # Errors
///
/// Returns [`CoreError::VerificationFailed`] naming the first faults found
/// missing. A claimed test index out of range is also a verification
/// failure (the claim refers to a test that no longer exists).
pub fn verify_test_set(
    nl: &Netlist,
    universe: &FaultUniverse,
    set: &TestSet,
    claimed: &ClaimedCoverage,
) -> Result<OracleReport, CoreError> {
    let _sp = atspeed_trace::span("oracle.verify_test_set");
    let mut fsim = SeqFaultSim::new(nl);
    let mut report = OracleReport {
        set_faults_checked: claimed.detected.len(),
        ..OracleReport::default()
    };

    // Whole-set claim: the union over tests must cover every claimed
    // fault. A fault leaves the worklist at the first test confirmed to
    // detect it — union semantics make that exact regardless of test
    // order, and later tests then re-simulate only the faults no earlier
    // test accounted for (without this, verifying a large circuit costs
    // tests × faults full sequential simulations).
    if !claimed.detected.is_empty() {
        let mut remaining: Vec<FaultId> = claimed.detected.clone();
        for t in &set.tests {
            if remaining.is_empty() {
                break;
            }
            report.simulations += 1;
            let det = fsim.detect(&t.si, &t.seq, &remaining, universe, true);
            let mut flags = det.iter();
            remaining.retain(|_| !*flags.next().expect("one detection flag per fault"));
        }
        let missing = remaining;
        if !missing.is_empty() {
            return Err(verification_failed(
                format!(
                    "set of {} tests misses {} of {} claimed faults (first: {:?})",
                    set.len(),
                    missing.len(),
                    claimed.detected.len(),
                    &missing[..missing.len().min(4)],
                ),
                missing.len(),
            ));
        }
    }

    // Per-test claims (τ_seq detections, Phase 3 assignments).
    for (idx, faults) in &claimed.per_test {
        report.per_test_faults_checked += faults.len();
        if faults.is_empty() {
            continue;
        }
        let Some(t) = set.tests.get(*idx) else {
            return Err(verification_failed(
                format!(
                    "per-test claim names test {idx} but the set has {} tests",
                    set.len()
                ),
                faults.len(),
            ));
        };
        report.simulations += 1;
        let det = fsim.detect(&t.si, &t.seq, faults, universe, true);
        let missing: Vec<FaultId> = faults
            .iter()
            .zip(det.iter())
            .filter(|(_, &d)| !d)
            .map(|(&f, _)| f)
            .collect();
        if !missing.is_empty() {
            return Err(verification_failed(
                format!(
                    "test {idx} misses {} of {} faults claimed for it (first: {:?})",
                    missing.len(),
                    faults.len(),
                    &missing[..missing.len().min(4)],
                ),
                missing.len(),
            ));
        }
    }

    atspeed_trace::metrics::global()
        .counter("oracle/faults_checked")
        .add((report.set_faults_checked + report.per_test_faults_checked) as u64);
    Ok(report)
}

fn verification_failed(context: String, missing: usize) -> CoreError {
    atspeed_trace::error!("core.oracle", "coverage verification failed";
        detail = context, missing = missing);
    atspeed_trace::metrics::global()
        .counter("oracle/failures")
        .inc();
    CoreError::VerificationFailed { context, missing }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test::ScanTest;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_sim::vectors::parse_values;
    use atspeed_sim::Sequence;

    fn detected_by(nl: &Netlist, u: &FaultUniverse, t: &ScanTest) -> Vec<FaultId> {
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let det = t.detects(nl, u, &reps);
        reps.iter()
            .zip(det.iter())
            .filter(|(_, &d)| d)
            .map(|(&f, _)| f)
            .collect()
    }

    fn some_test() -> ScanTest {
        let seq: Sequence = ["1010", "0110", "0001"]
            .iter()
            .map(|r| parse_values(r))
            .collect();
        ScanTest::new(parse_values("010"), seq)
    }

    #[test]
    fn honest_claims_verify() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let t = some_test();
        let detected = detected_by(&nl, &u, &t);
        assert!(!detected.is_empty());
        let set = TestSet::from_tests(vec![t]);
        let claimed = ClaimedCoverage {
            detected: detected.clone(),
            per_test: vec![(0, detected)],
        };
        let r = verify_test_set(&nl, &u, &set, &claimed).unwrap();
        assert_eq!(r.set_faults_checked, claimed.detected.len());
        assert!(r.simulations >= 2);
    }

    #[test]
    fn union_claim_is_order_independent() {
        // The whole-set check retires faults at their first detection, so
        // make sure a claim that genuinely needs both tests verifies with
        // the tests in either order.
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let strong = some_test();
        let weak = ScanTest::new(
            parse_values("000"),
            std::iter::once(parse_values("0000")).collect(),
        );
        let mut union: Vec<FaultId> = detected_by(&nl, &u, &strong);
        for f in detected_by(&nl, &u, &weak) {
            if !union.contains(&f) {
                union.push(f);
            }
        }
        assert!(union.len() > detected_by(&nl, &u, &strong).len());
        for tests in [
            vec![strong.clone(), weak.clone()],
            vec![weak.clone(), strong.clone()],
        ] {
            let set = TestSet::from_tests(tests);
            let claimed = ClaimedCoverage::set_only(union.clone());
            let r = verify_test_set(&nl, &u, &set, &claimed).unwrap();
            assert_eq!(r.set_faults_checked, union.len());
            assert_eq!(r.simulations, 2);
        }
    }

    #[test]
    fn whole_set_check_stops_once_everything_is_confirmed() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let t = some_test();
        let detected = detected_by(&nl, &u, &t);
        // Two copies of the same test: the first confirms every claimed
        // fault, so the second must not be simulated for the set claim.
        let set = TestSet::from_tests(vec![t.clone(), t]);
        let r = verify_test_set(&nl, &u, &set, &ClaimedCoverage::set_only(detected)).unwrap();
        assert_eq!(r.simulations, 1);
    }

    #[test]
    fn inflated_set_claim_is_rejected() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let t = some_test();
        let detected = detected_by(&nl, &u, &t);
        // Claim the whole universe: more than one short test can detect.
        let all: Vec<FaultId> = u.representatives().to_vec();
        assert!(detected.len() < all.len(), "test must not be complete");
        let set = TestSet::from_tests(vec![t]);
        let err = verify_test_set(&nl, &u, &set, &ClaimedCoverage::set_only(all)).unwrap_err();
        match err {
            CoreError::VerificationFailed { missing, .. } => assert!(missing > 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn wrong_per_test_attribution_is_rejected() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let strong = some_test();
        let weak = ScanTest::new(
            parse_values("000"),
            std::iter::once(parse_values("0000")).collect(),
        );
        let strong_detected = detected_by(&nl, &u, &strong);
        let weak_detected = detected_by(&nl, &u, &weak);
        assert!(weak_detected.len() < strong_detected.len());
        // The set detects everything claimed, but test 1 (weak) is credited
        // with the strong test's faults: a per-phase bookkeeping bug the
        // whole-set union would never catch.
        let set = TestSet::from_tests(vec![strong, weak]);
        let claimed = ClaimedCoverage {
            detected: strong_detected.clone(),
            per_test: vec![(1, strong_detected)],
        };
        let err = verify_test_set(&nl, &u, &set, &claimed).unwrap_err();
        assert!(matches!(err, CoreError::VerificationFailed { .. }));
    }

    #[test]
    fn out_of_range_test_index_is_rejected() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let set = TestSet::from_tests(vec![some_test()]);
        let claimed = ClaimedCoverage {
            detected: Vec::new(),
            per_test: vec![(5, u.representatives().to_vec())],
        };
        assert!(verify_test_set(&nl, &u, &set, &claimed).is_err());
    }

    #[test]
    fn empty_claim_trivially_verifies() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let r = verify_test_set(&nl, &u, &TestSet::new(), &ClaimedCoverage::default()).unwrap();
        assert_eq!(r.simulations, 0);
    }
}
