//! Phase 3: achieving complete fault coverage with single-vector tests.
//!
//! For every fault `f` still undetected by `τ_seq`, the combinational test
//! set `C` is fault-simulated (without dropping) to compute `n(f)` — how
//! many of the single-vector scan tests `τ_j` derived from `C` detect `f` —
//! and `last(f)` — the index of the last such test. Tests are then selected
//! greedily: repeatedly take the fault with minimum `n(f)` (essential tests,
//! `n(f) = 1`, are picked first by construction), add `τ_last(f)` to the
//! test set, and drop every newly covered fault.

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{CombTest, ParallelFsim, SimConfig};

use crate::test::ScanTest;

/// Result of Phase 3.
#[derive(Debug, Clone)]
pub struct Phase3Result {
    /// The added single-vector scan tests, in selection order.
    pub added: Vec<ScanTest>,
    /// Indices into `C` of the added tests.
    pub added_indices: Vec<usize>,
    /// Faults that no test in `C` detects (left uncovered).
    pub still_undetected: Vec<FaultId>,
}

/// Selects single-vector tests from `candidates` covering `undetected`,
/// single-threaded. See [`top_up_with`] for the parallel variant.
pub fn top_up(
    nl: &Netlist,
    universe: &FaultUniverse,
    candidates: &[CombTest],
    undetected: &[FaultId],
) -> Phase3Result {
    top_up_with(nl, universe, candidates, undetected, SimConfig::default())
}

/// Selects single-vector tests from `candidates` covering `undetected`.
///
/// The detection matrix — the expensive part — is fault-sharded across
/// `sim.threads` workers; the greedy selection over the matrix is
/// deterministic, so the result is identical at any thread count.
pub fn top_up_with(
    nl: &Netlist,
    universe: &FaultUniverse,
    candidates: &[CombTest],
    undetected: &[FaultId],
    sim: SimConfig,
) -> Phase3Result {
    if undetected.is_empty() || candidates.is_empty() {
        return Phase3Result {
            added: Vec::new(),
            added_indices: Vec::new(),
            still_undetected: undetected.to_vec(),
        };
    }
    // Full detection matrix (no dropping): rows = faults, bit t = test t.
    let matrix = ParallelFsim::new(nl, sim).detect_matrix(candidates, undetected, universe);
    let n_of = |row: &Vec<u64>| -> usize { row.iter().map(|w| w.count_ones() as usize).sum() };
    let last_of = |row: &Vec<u64>| -> Option<usize> {
        for (w, &word) in row.iter().enumerate().rev() {
            if word != 0 {
                return Some(w * 64 + (63 - word.leading_zeros() as usize));
            }
        }
        None
    };

    let mut alive: Vec<usize> = (0..undetected.len()).collect();
    let mut still_undetected = Vec::new();
    let mut added_indices = Vec::new();

    // Faults undetectable by C can never leave the worklist; peel them off.
    alive.retain(|&k| {
        if n_of(&matrix[k]) == 0 {
            still_undetected.push(undetected[k]);
            false
        } else {
            true
        }
    });

    while !alive.is_empty() {
        // Minimum n(f); ties resolved by fault order (first).
        let &k_min = alive
            .iter()
            .min_by_key(|&&k| n_of(&matrix[k]))
            .expect("alive non-empty");
        let t = last_of(&matrix[k_min]).expect("n(f) > 0 implies a detecting test");
        added_indices.push(t);
        let word = t / 64;
        let bit = 1u64 << (t % 64);
        alive.retain(|&k| matrix[k][word] & bit == 0);
    }

    let added = added_indices
        .iter()
        .map(|&t| ScanTest::from_comb(&candidates[t]))
        .collect();
    Phase3Result {
        added,
        added_indices,
        still_undetected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test::TestSet;
    use atspeed_atpg::comb_tset::{self, CombTsetConfig};
    use atspeed_circuit::bench_fmt::s27;

    fn setup() -> (atspeed_circuit::Netlist, FaultUniverse, Vec<CombTest>) {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let c = comb_tset::generate(&nl, &u, &CombTsetConfig::default())
            .unwrap()
            .tests;
        (nl, u, c)
    }

    #[test]
    fn covers_every_coverable_fault() {
        let (nl, u, c) = setup();
        let undetected: Vec<FaultId> = u.representatives().to_vec();
        let r = top_up(&nl, &u, &c, &undetected);
        assert!(r.still_undetected.is_empty(), "C is complete for s27");
        let set = TestSet::from_tests(r.added.clone());
        let det = set.detects(&nl, &u, &undetected);
        assert!(det.iter().all(|&d| d), "added tests must cover all targets");
    }

    #[test]
    fn adds_no_tests_when_nothing_is_undetected() {
        let (nl, u, c) = setup();
        let r = top_up(&nl, &u, &c, &[]);
        assert!(r.added.is_empty());
        assert!(r.still_undetected.is_empty());
    }

    #[test]
    fn selection_is_within_candidate_bounds_and_greedy() {
        let (nl, u, c) = setup();
        let undetected: Vec<FaultId> = u.representatives().to_vec();
        let r = top_up(&nl, &u, &c, &undetected);
        assert!(r.added_indices.iter().all(|&i| i < c.len()));
        // Greedy never selects more tests than |C|.
        assert!(r.added.len() <= c.len());
        // A compact selection: fewer tests than faults covered.
        assert!(r.added.len() <= undetected.len());
    }

    #[test]
    fn uncoverable_faults_are_reported() {
        let (nl, u, c) = setup();
        // Use only one candidate: most faults become uncoverable.
        let one = &c[..1];
        let undetected: Vec<FaultId> = u.representatives().to_vec();
        let r = top_up(&nl, &u, one, &undetected);
        let covered = undetected.len() - r.still_undetected.len();
        assert!(covered > 0);
        assert!(r.added.len() <= 1);
        // The reported leftovers are exactly the ones the single test
        // cannot detect.
        let set = TestSet::from_tests(r.added.clone());
        for f in &r.still_undetected {
            let det = set.detects(&nl, &u, &[*f]);
            assert!(!det[0]);
        }
    }
}
