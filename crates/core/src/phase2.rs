//! Phase 2: vector omission on the scan-based test.
//!
//! Shortens `T_SO` by omitting vectors while preserving the detection of
//! every fault in `F_SO` (the paper cites the static sequence compaction of
//! \[8\]). The heavy lifting lives in [`atspeed_atpg::compact`]; this module
//! adapts it to scan-test semantics (fixed scan-in state, primary outputs
//! observed each cycle, scan-out observed after the last vector).

use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};

pub use atspeed_atpg::compact::{OmissionConfig, OmissionStats};

use crate::test::ScanTest;

/// Omits vectors from `test`'s sequence while keeping every fault in
/// `targets` detected. Returns the compacted test `τ_C = (SI, T_C)`.
pub fn compact_test(
    nl: &Netlist,
    universe: &FaultUniverse,
    test: &ScanTest,
    targets: &[FaultId],
    cfg: OmissionConfig,
) -> (ScanTest, OmissionStats) {
    let (seq, stats) =
        atspeed_atpg::compact::omit_vectors(nl, universe, &test.si, &test.seq, targets, true, cfg);
    (ScanTest::new(test.si.clone(), seq), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_sim::vectors::parse_values;
    use atspeed_sim::Sequence;

    #[test]
    fn compacted_test_keeps_targets_detected() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let rows = [
            "1010", "1010", "0110", "0110", "0001", "1111", "1111", "0000",
        ];
        let seq: Sequence = rows.iter().map(|r| parse_values(r)).collect();
        let test = ScanTest::new(parse_values("010"), seq);
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let det = test.detects(&nl, &u, &reps);
        let targets: Vec<FaultId> = reps
            .iter()
            .zip(det.iter())
            .filter(|(_, &d)| d)
            .map(|(&f, _)| f)
            .collect();
        let (compact, stats) = compact_test(&nl, &u, &test, &targets, OmissionConfig::default());
        assert!(compact.len() <= test.len());
        assert_eq!(stats.removed, test.len() - compact.len());
        assert_eq!(compact.si, test.si, "scan-in state untouched");
        let after = compact.detects(&nl, &u, &targets);
        assert!(after.iter().all(|&d| d));
    }
}
