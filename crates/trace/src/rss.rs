//! Process peak-RSS measurement for the stress gate.
//!
//! Linux exposes the high-water mark of a process's resident set as the
//! `VmHWM` line of `/proc/self/status` — a kernel-maintained running
//! maximum, so a single read at any point reports the peak over the whole
//! process lifetime so far. No polling thread is needed.

use crate::metrics::MetricsRegistry;

/// Peak resident set size of the current process in bytes, from the
/// `VmHWM` line of `/proc/self/status`. Returns `None` off Linux or when
/// the field is missing or malformed.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Records [`peak_rss_bytes`] into `registry` as the running-maximum gauge
/// `process/peak_rss_bytes`; returns the measured value. A no-op returning
/// `None` where the measurement is unavailable.
pub fn record_peak_rss(registry: &MetricsRegistry) -> Option<u64> {
    let rss = peak_rss_bytes()?;
    registry
        .gauge("process/peak_rss_bytes")
        .record_max(rss.min(i64::MAX as u64) as i64);
    Some(rss)
}

/// Parses the `VmHWM:   1234 kB` line out of a `/proc/<pid>/status` blob.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kib * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_status_blob() {
        let status = "Name:\tstress\nVmPeak:\t  200000 kB\nVmHWM:\t   81920 kB\nVmRSS:\t 4096 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(81920 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot a number kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn measures_this_process() {
        let rss = peak_rss_bytes().expect("linux exposes VmHWM");
        // Any live test binary has at least a megabyte resident.
        assert!(rss > 1 << 20, "implausible peak RSS {rss}");

        let reg = MetricsRegistry::new();
        let recorded = record_peak_rss(&reg).unwrap();
        assert_eq!(reg.gauge("process/peak_rss_bytes").get() as u64, recorded);
        // The gauge is a running max: recording again never lowers it.
        record_peak_rss(&reg);
        assert!(reg.gauge("process/peak_rss_bytes").get() as u64 >= recorded);
    }
}
