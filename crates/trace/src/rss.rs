//! Process peak-RSS measurement for the stress gate.
//!
//! Linux exposes the high-water mark of a process's resident set as the
//! `VmHWM` line of `/proc/self/status` — a kernel-maintained running
//! maximum, so a single read at any point reports the peak over the whole
//! process lifetime so far. No polling thread is needed.
//!
//! Off Linux (and on Linux systems without `/proc`), the POSIX
//! `getrusage(RUSAGE_SELF)` syscall provides the same high-water mark via
//! `ru_maxrss`. The libc call is declared here as a tiny `extern "C"`
//! shim rather than through the `libc` crate, keeping the crate
//! zero-dependency. Unit convention differs by platform: Linux reports
//! `ru_maxrss` in kibibytes, macOS and iOS in bytes, other BSDs in
//! kibibytes — the shim normalises to bytes.

use crate::metrics::MetricsRegistry;

/// Peak resident set size of the current process in bytes: the `VmHWM`
/// line of `/proc/self/status` where available, else
/// `getrusage(RUSAGE_SELF).ru_maxrss`. Returns `None` only when both
/// sources fail (no `/proc` and the syscall errored or reported zero).
pub fn peak_rss_bytes() -> Option<u64> {
    if let Some(rss) = proc_status_peak() {
        return Some(rss);
    }
    getrusage_peak()
}

/// The `/proc/self/status` `VmHWM` source (Linux only in practice).
fn proc_status_peak() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Records [`peak_rss_bytes`] into `registry` as the running-maximum gauge
/// `process/peak_rss_bytes`; returns the measured value. A no-op returning
/// `None` where the measurement is unavailable.
pub fn record_peak_rss(registry: &MetricsRegistry) -> Option<u64> {
    let rss = peak_rss_bytes()?;
    registry
        .gauge("process/peak_rss_bytes")
        .record_max(rss.min(i64::MAX as u64) as i64);
    Some(rss)
}

/// Parses the `VmHWM:   1234 kB` line out of a `/proc/<pid>/status` blob.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kib * 1024)
}

/// `getrusage(RUSAGE_SELF)` fallback, normalised to bytes.
#[cfg(unix)]
fn getrusage_peak() -> Option<u64> {
    shim::max_rss_bytes()
}

#[cfg(not(unix))]
fn getrusage_peak() -> Option<u64> {
    None
}

/// The audited unsafe island: one libc declaration and one syscall.
#[cfg(unix)]
#[allow(unsafe_code)]
mod shim {
    /// `struct rusage` as POSIX lays it out on every mainstream 64-bit
    /// unix (two `timeval`s, then 14 longs, of which `ru_maxrss` is the
    /// first). Oversized spare tail absorbs any platform that appends
    /// fields.
    #[repr(C)]
    struct Rusage {
        ru_utime: [i64; 2],
        ru_stime: [i64; 2],
        ru_maxrss: i64,
        _rest: [i64; 16],
    }

    extern "C" {
        fn getrusage(who: i32, usage: *mut Rusage) -> i32;
    }

    const RUSAGE_SELF: i32 = 0;

    /// `ru_maxrss` in bytes, or `None` on syscall failure / zero report.
    pub(super) fn max_rss_bytes() -> Option<u64> {
        let mut usage = Rusage {
            ru_utime: [0; 2],
            ru_stime: [0; 2],
            ru_maxrss: 0,
            _rest: [0; 16],
        };
        // SAFETY: `usage` is a valid, writable, sufficiently large (the
        // spare tail over-allocates vs every known layout) rusage out
        // parameter, and RUSAGE_SELF is always a legal `who`.
        let rc = unsafe { getrusage(RUSAGE_SELF, &mut usage) };
        if rc != 0 || usage.ru_maxrss <= 0 {
            return None;
        }
        let raw = usage.ru_maxrss as u64;
        // macOS/iOS report bytes; Linux and the BSDs report kibibytes.
        if cfg!(any(target_os = "macos", target_os = "ios")) {
            Some(raw)
        } else {
            Some(raw * 1024)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_status_blob() {
        let status = "Name:\tstress\nVmPeak:\t  200000 kB\nVmHWM:\t   81920 kB\nVmRSS:\t 4096 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(81920 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot a number kB\n"), None);
    }

    /// The portable entry point must measure on every supported host
    /// platform (VmHWM on Linux, getrusage elsewhere) — not just Linux.
    #[test]
    fn measures_this_process_on_the_host_platform() {
        let rss = peak_rss_bytes().expect("either /proc or getrusage works");
        // Any live test binary has at least a megabyte resident.
        assert!(rss > 1 << 20, "implausible peak RSS {rss}");

        let reg = MetricsRegistry::new();
        let recorded = record_peak_rss(&reg).unwrap();
        assert_eq!(reg.gauge("process/peak_rss_bytes").get() as u64, recorded);
        // The gauge is a running max: recording again never lowers it.
        record_peak_rss(&reg);
        assert!(reg.gauge("process/peak_rss_bytes").get() as u64 >= recorded);
    }

    /// The fallback path must report a plausible figure on its own — no
    /// cross-check against `/proc`, because containerised kernels are
    /// known to account the two interfaces differently.
    #[cfg(unix)]
    #[test]
    fn getrusage_fallback_reports_a_plausible_peak() {
        let ru = getrusage_peak().expect("getrusage reports on unix");
        assert!(ru > 1 << 20, "implausible getrusage peak {ru}");
        assert!(ru < 1 << 40, "implausible getrusage peak {ru}");
    }
}
