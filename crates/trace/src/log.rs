//! Leveled structured logging: one JSON object per line.
//!
//! Events carry a level (`error` > `warn` > `info` > `debug`), a `target`
//! naming the emitting subsystem (`"bench.runner"`, `"core.iterate"`), a
//! human message, and arbitrary key/value fields. The line format is plain
//! JSONL, so run logs pipe straight into `jq`:
//!
//! ```text
//! {"ts_us":1754400000000000,"level":"info","target":"bench.runner","msg":"circuit done","circuit":"s298","wall_ms":412}
//! ```
//!
//! The maximum level defaults to `info` and is process-global
//! ([`set_max_level`]); the [`crate::error!`], [`crate::warn!`],
//! [`crate::info!`], and [`crate::debug!`] macros check it before
//! evaluating any field expression. Output goes to stderr unless a file
//! sink is installed with [`set_log_file`].

use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The run cannot produce its result.
    Error = 0,
    /// Something is wrong but the run continues.
    Warn = 1,
    /// Progress and headline figures (the default maximum).
    Info = 2,
    /// Per-iteration diagnostics.
    Debug = 3,
}

impl Level {
    /// The lowercase name used on the wire and on the command line.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a level name (case-insensitive), e.g. for a `--log LEVEL`
    /// flag. `"off"` is not a level; use [`set_max_level`] with
    /// [`Level::Error`] and accept errors, or filter at the sink.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-wide maximum level: events above it are dropped.
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current maximum level.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether events at `level` currently pass the filter.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Where log lines go: stderr by default, or an installed file sink.
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Redirects log output to `path` (appending), e.g. for archived run logs.
///
/// # Errors
///
/// Propagates the underlying filesystem error; the sink is unchanged on
/// failure.
pub fn set_log_file(path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(Box::new(file));
    Ok(())
}

/// Restores the default stderr sink.
pub fn log_to_stderr() {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// A numeric-looking field value is emitted as a bare JSON number only
/// when it round-trips exactly (so `"007"` or `"1e999"` stay quoted).
fn is_bare_number(s: &str) -> bool {
    if let Ok(v) = s.parse::<i64>() {
        return v.to_string() == s;
    }
    if let Ok(v) = s.parse::<f64>() {
        return v.is_finite() && v.to_string() == s;
    }
    false
}

/// Emits one structured event. Prefer the level macros, which skip field
/// evaluation when the level is filtered out.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
    if !enabled(level) {
        return;
    }
    let ts_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut line = format!(
        "{{\"ts_us\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
        ts_us,
        level.as_str(),
        crate::json_escape(target),
        crate::json_escape(msg)
    );
    for (k, v) in fields {
        let rendered = v.to_string();
        if is_bare_number(&rendered) {
            line.push_str(&format!(",\"{}\":{}", crate::json_escape(k), rendered));
        } else {
            line.push_str(&format!(
                ",\"{}\":\"{}\"",
                crate::json_escape(k),
                crate::json_escape(&rendered)
            ));
        }
    }
    line.push('}');
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    match sink.as_mut() {
        Some(w) => {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        None => eprintln!("{line}"),
    }
}

/// Emits an event at an explicit [`Level`]; the level macros forward here.
///
/// ```
/// use atspeed_trace::{logev, Level};
/// logev!(Level::Info, "doc.test", "hello"; answer = 42);
/// ```
#[macro_export]
macro_rules! logev {
    ($level:expr, $target:expr, $msg:expr $(; $($key:ident = $value:expr),+ $(,)?)?) => {{
        if $crate::log::enabled($level) {
            $crate::log::log(
                $level,
                $target,
                ::std::convert::AsRef::<str>::as_ref(&$msg),
                &[$($((stringify!($key), &$value as &dyn ::std::fmt::Display)),+)?],
            );
        }
    }};
}

/// Emits an `error`-level structured event.
#[macro_export]
macro_rules! error {
    ($($rest:tt)*) => { $crate::logev!($crate::log::Level::Error, $($rest)*) };
}

/// Emits a `warn`-level structured event.
#[macro_export]
macro_rules! warn {
    ($($rest:tt)*) => { $crate::logev!($crate::log::Level::Warn, $($rest)*) };
}

/// Emits an `info`-level structured event.
#[macro_export]
macro_rules! info {
    ($($rest:tt)*) => { $crate::logev!($crate::log::Level::Info, $($rest)*) };
}

/// Emits a `debug`-level structured event.
#[macro_export]
macro_rules! debug {
    ($($rest:tt)*) => { $crate::logev!($crate::log::Level::Debug, $($rest)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Debug);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::Debug.to_string(), "debug");
    }

    #[test]
    fn bare_number_detection_is_round_trip_exact() {
        assert!(is_bare_number("42"));
        assert!(is_bare_number("-3"));
        assert!(is_bare_number("2.5"));
        assert!(!is_bare_number("007"));
        assert!(!is_bare_number("1e999"));
        assert!(!is_bare_number("s298"));
        assert!(!is_bare_number(""));
        assert!(!is_bare_number("NaN"));
    }

    // The max-level filter and sink are process-global; everything that
    // toggles them lives in this one test to stay harness-order-proof.
    #[test]
    fn filter_and_macros_respect_max_level() {
        assert_eq!(max_level(), Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_max_level(Level::Debug);
        assert!(enabled(Level::Debug));
        let mut evaluated = false;
        crate::debug!("trace.test", "debug on"; flag = {
            evaluated = true;
            1
        });
        assert!(evaluated, "fields evaluate when the level passes");
        set_max_level(Level::Error);
        let mut evaluated = false;
        crate::info!("trace.test", "filtered"; flag = {
            evaluated = true;
            1
        });
        assert!(!evaluated, "fields must not evaluate when filtered");
        set_max_level(Level::Info);
    }

    #[test]
    fn log_accepts_owned_and_borrowed_messages() {
        // Compile-time check of the AsRef coercion in logev!.
        crate::info!("trace.test", "static str");
        crate::info!("trace.test", format!("owned {}", 1));
    }
}
