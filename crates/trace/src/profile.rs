//! Span-stack sampling profiler with collapsed-stack (`.folded`) output.
//!
//! A [`Profiler`] periodically samples each registered thread's **live span
//! stack** — the spans currently open through [`crate::span`] — and
//! aggregates the observations into folded stacks: one line per distinct
//! stack, `thread;outer;inner <count>`, the format
//! [speedscope](https://www.speedscope.app) and
//! [inferno](https://github.com/jonhoo/inferno) (`inferno-flamegraph`)
//! ingest directly. Because samples attach to *spans* rather than program
//! counters, the profile answers the attribution question the span
//! taxonomy poses: which circuits, phases, faults, and partitions the wall
//! clock actually went to — with zero external dependencies and no
//! debug-symbol machinery.
//!
//! # Cost model
//!
//! Profiling is opt-in, like tracing. While disabled, the hook in
//! [`crate::span`] is one relaxed atomic load and the per-span bookkeeping
//! is skipped entirely. While enabled, opening or closing a span
//! push/pops one frame behind an uncontended thread-private mutex, and a
//! background sampler thread wakes at the configured interval (default
//! 250 Hz), locks each registered stack just long enough to copy it, and
//! folds the copy into an aggregation map. Kernel hot loops open no
//! per-gate spans, so enabling the profiler costs well under 2% of
//! gate-eval throughput (measured in `benches/kernels.rs`).
//!
//! # Determinism for tests
//!
//! The sampler is manually pumpable: [`Profiler::sample_once`] takes one
//! synchronous sample sweep with no thread and no clock, so tests assert
//! exact folded counts without timing flake.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Process-wide profiler id allocator (instances are distinguished in
/// thread-local caches by id, so test instances never mix).
static NEXT_PROFILER_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Cache of this thread's registered stacks, one per profiler.
    static LOCAL_STACKS: RefCell<Vec<(usize, Arc<ThreadStack>)>> =
        const { RefCell::new(Vec::new()) };
}

/// One thread's live span stack, shared between the owning thread (push/
/// pop) and the sampler (copy).
#[derive(Debug)]
struct ThreadStack {
    /// Root frame for this thread's folded stacks: the OS thread name when
    /// it has one, else `thread-<n>`.
    label: String,
    frames: Mutex<Vec<Cow<'static, str>>>,
}

/// A span-stack sampling profiler.
///
/// Most code drives the process-wide instance through the free functions
/// ([`enabled`], [`push`], [`pop`], [`start`], [`stop`]); tests construct
/// their own instances and pump [`Profiler::sample_once`] by hand.
#[derive(Debug)]
pub struct Profiler {
    id: usize,
    enabled: AtomicBool,
    interval_us: AtomicU64,
    next_thread: AtomicU32,
    threads: Mutex<Vec<Arc<ThreadStack>>>,
    /// Folded stack -> sample count.
    samples: Mutex<BTreeMap<String, u64>>,
    sampler: Mutex<Option<SamplerThread>>,
}

#[derive(Debug)]
struct SamplerThread {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

/// The default sampling rate, in samples per second.
pub const DEFAULT_HZ: u32 = 250;

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// Creates a disabled profiler sampling at [`DEFAULT_HZ`] once started.
    pub fn new() -> Self {
        Profiler {
            id: NEXT_PROFILER_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            interval_us: AtomicU64::new(1_000_000 / u64::from(DEFAULT_HZ)),
            next_thread: AtomicU32::new(1),
            threads: Mutex::new(Vec::new()),
            samples: Mutex::new(BTreeMap::new()),
            sampler: Mutex::new(None),
        }
    }

    /// Turns the span-stack bookkeeping on or off. Spans opened while
    /// disabled never appear in samples, even if they are still live when
    /// profiling is enabled later (their guards never pushed a frame).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether span push/pop currently records frames.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the background sampling rate (clamped to `[1, 100_000]` Hz).
    /// Takes effect on the sampler's next wakeup.
    pub fn set_rate_hz(&self, hz: u32) {
        let hz = u64::from(hz.clamp(1, 100_000));
        self.interval_us.store(1_000_000 / hz, Ordering::Relaxed);
    }

    /// This thread's stack for this profiler, creating and registering it
    /// on first use.
    fn stack(&self) -> Arc<ThreadStack> {
        LOCAL_STACKS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, st)) = cache.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(st);
            }
            let label = std::thread::current()
                .name()
                .map(sanitize_frame)
                .unwrap_or_else(|| {
                    format!(
                        "thread-{}",
                        self.next_thread.fetch_add(1, Ordering::Relaxed)
                    )
                });
            let st = Arc::new(ThreadStack {
                label,
                frames: Mutex::new(Vec::new()),
            });
            self.threads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&st));
            cache.push((self.id, Arc::clone(&st)));
            st
        })
    }

    /// Pushes one frame onto the calling thread's live stack. Returns
    /// whether the frame was recorded (callers must pop iff it was).
    ///
    /// Takes `&Cow` rather than `&str` so a `Borrowed` span name clones
    /// as a pointer copy, not a heap allocation, on the span-open path.
    #[inline]
    #[allow(clippy::ptr_arg)]
    pub fn push(&self, name: &Cow<'static, str>) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let st = self.stack();
        st.frames
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(name.clone());
        true
    }

    /// Pops the calling thread's top frame; the inverse of a successful
    /// [`Profiler::push`] (span guards drop LIFO, so the top frame is the
    /// pushed one).
    #[inline]
    pub fn pop(&self) {
        let st = self.stack();
        st.frames.lock().unwrap_or_else(|e| e.into_inner()).pop();
    }

    /// Takes one synchronous sample of every registered thread's live
    /// stack, folding non-empty stacks into the aggregate. Returns how
    /// many stacks were sampled (threads currently inside at least one
    /// span).
    ///
    /// The background sampler calls this on a timer; tests call it
    /// directly for deterministic counts.
    pub fn sample_once(&self) -> usize {
        let threads = self.threads.lock().unwrap_or_else(|e| e.into_inner());
        let mut sampled = 0;
        let mut samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        for st in threads.iter() {
            let folded = {
                let frames = st.frames.lock().unwrap_or_else(|e| e.into_inner());
                if frames.is_empty() {
                    continue;
                }
                let mut line = st.label.clone();
                for f in frames.iter() {
                    line.push(';');
                    line.push_str(&sanitize_frame(f));
                }
                line
            };
            *samples.entry(folded).or_insert(0) += 1;
            sampled += 1;
        }
        sampled
    }

    /// Total samples aggregated so far, across all stacks.
    pub fn num_samples(&self) -> u64 {
        self.samples
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .sum()
    }

    /// Discards all aggregated samples (thread registrations persist).
    pub fn clear(&self) {
        self.samples
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Renders the aggregate as collapsed/folded stacks, one
    /// `stack count` line per distinct stack, lexicographically ordered —
    /// loadable by speedscope and `inferno-flamegraph` as-is.
    pub fn folded(&self) -> String {
        let samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (stack, count) in samples.iter() {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Writes [`Profiler::folded`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_folded(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.folded())
    }

    /// Enables profiling and starts the background sampler at `hz`
    /// samples per second. A no-op if a sampler is already running.
    pub fn start_sampler(self: &Arc<Self>, hz: u32) {
        self.set_rate_hz(hz);
        self.set_enabled(true);
        let mut slot = self.sampler.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_some() {
            return;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let profiler = Arc::clone(self);
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("atspeed-profiler".to_owned())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    profiler.sample_once();
                    let us = profiler.interval_us.load(Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(us));
                }
            })
            .expect("spawning the sampler thread");
        *slot = Some(SamplerThread { stop, handle });
    }

    /// Disables profiling and stops the background sampler (joining it),
    /// if one is running. Aggregated samples are kept; read them with
    /// [`Profiler::folded`].
    pub fn stop_sampler(&self) {
        self.set_enabled(false);
        let sampler = self
            .sampler
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(s) = sampler {
            s.stop.store(true, Ordering::Relaxed);
            let _ = s.handle.join();
        }
    }
}

/// Makes a name safe as one frame of a folded line: the folded format
/// reserves `;` as the frame separator and the trailing ` <count>` field,
/// and is line-oriented. Semicolons become `:`, whitespace becomes `_`.
fn sanitize_frame(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            ';' => ':',
            c if c.is_whitespace() => '_',
            c if (c as u32) < 0x20 => '_',
            c => c,
        })
        .collect()
}

/// The process-wide profiler, lazily constructed.
///
/// Stays unconstructed (and [`enabled`] stays `false` at the cost of one
/// atomic load) until something starts it.
static GLOBAL: OnceLock<Arc<Profiler>> = OnceLock::new();

/// The process-wide profiler used by the free functions.
pub fn global() -> &'static Arc<Profiler> {
    GLOBAL.get_or_init(|| Arc::new(Profiler::new()))
}

/// Whether the process-wide profiler is recording span frames. Near-free
/// while profiling has never been started.
#[inline]
pub fn enabled() -> bool {
    GLOBAL.get().is_some_and(|p| p.is_enabled())
}

/// Pushes a frame onto the process-wide profiler if it is enabled;
/// returns whether a matching [`pop`] is owed. Called by [`crate::span`],
/// which holds its name as a `Cow` — see [`Profiler::push`] for why the
/// reference stays a `&Cow`.
#[inline]
#[allow(clippy::ptr_arg)]
pub fn push(name: &Cow<'static, str>) -> bool {
    match GLOBAL.get() {
        Some(p) => p.push(name),
        None => false,
    }
}

/// Pops the frame a successful [`push`] recorded. Called by span guards.
#[inline]
pub fn pop() {
    if let Some(p) = GLOBAL.get() {
        p.pop();
    }
}

/// Starts the process-wide profiler's background sampler at `hz` samples
/// per second (binaries call this for `--profile FILE`).
pub fn start(hz: u32) {
    global().start_sampler(hz);
}

/// Stops the process-wide sampler and returns the folded stacks.
pub fn stop() -> String {
    let p = global();
    p.stop_sampler();
    p.folded()
}

/// Stops the process-wide sampler and writes the folded stacks to `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn stop_and_write(path: impl AsRef<Path>) -> io::Result<()> {
    let p = global();
    p.stop_sampler();
    p.write_folded(path)
}

/// Structural validation of one folded-stacks document: every non-empty
/// line must be `frame(;frame)* count` with a positive integer count and
/// no empty frames — the exact shape speedscope's and inferno's collapsed
/// parsers accept. Returns the total sample count.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_folded(folded: &str) -> Result<u64, String> {
    let mut total = 0u64;
    for (i, line) in folded.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no count field: {line:?}", i + 1))?;
        let n: u64 = count
            .parse()
            .map_err(|_| format!("line {}: bad count {count:?}", i + 1))?;
        if n == 0 {
            return Err(format!("line {}: zero count", i + 1));
        }
        if stack.is_empty() || stack.split(';').any(str::is_empty) {
            return Err(format!("line {}: empty frame in {stack:?}", i + 1));
        }
        total += n;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::new();
        assert!(!p.push(&Cow::Borrowed("x")));
        assert_eq!(p.sample_once(), 0);
        assert_eq!(p.num_samples(), 0);
        assert_eq!(p.folded(), "");
    }

    #[test]
    fn sample_folds_the_live_stack() {
        let p = Profiler::new();
        p.set_enabled(true);
        assert!(p.push(&Cow::Borrowed("outer")));
        assert!(p.push(&Cow::Borrowed("inner")));
        assert_eq!(p.sample_once(), 1);
        assert_eq!(p.sample_once(), 1);
        p.pop();
        assert_eq!(p.sample_once(), 1);
        p.pop();
        assert_eq!(p.sample_once(), 0, "empty stacks are not sampled");
        let folded = p.folded();
        let label = std::thread::current().name().map(sanitize_frame).unwrap();
        assert!(
            folded.contains(&format!("{label};outer;inner 2\n")),
            "{folded}"
        );
        assert!(folded.contains(&format!("{label};outer 1\n")), "{folded}");
        assert_eq!(validate_folded(&folded), Ok(3));
    }

    #[test]
    fn frames_are_sanitized_for_the_folded_format() {
        assert_eq!(sanitize_frame("a;b c\nd"), "a:b_c_d");
        let p = Profiler::new();
        p.set_enabled(true);
        assert!(p.push(&Cow::Borrowed("evil; frame")));
        p.sample_once();
        p.pop();
        assert_eq!(validate_folded(&p.folded()), Ok(1));
    }

    #[test]
    fn validate_folded_rejects_malformed_lines() {
        assert!(validate_folded("main;x").is_err(), "missing count");
        assert!(validate_folded("main;x zero").is_err());
        assert!(validate_folded("main;x 0").is_err());
        assert!(validate_folded(";x 1").is_err(), "empty frame");
        assert!(validate_folded("main;;x 1").is_err(), "empty frame");
        assert_eq!(validate_folded("main;x 2\n\nmain 1\n"), Ok(3));
        assert_eq!(validate_folded(""), Ok(0));
    }

    #[test]
    fn clear_discards_samples() {
        let p = Profiler::new();
        p.set_enabled(true);
        assert!(p.push(&Cow::Borrowed("s")));
        p.sample_once();
        assert_eq!(p.num_samples(), 1);
        p.clear();
        assert_eq!(p.num_samples(), 0);
        p.pop();
    }

    #[test]
    fn background_sampler_starts_and_stops() {
        let p = Arc::new(Profiler::new());
        p.start_sampler(1000);
        assert!(p.is_enabled());
        // The guard frame is live while the sampler runs; at 1 kHz some
        // samples land within 50 ms on any machine, but the assertion only
        // needs the sampler to have *run*, not a specific count.
        assert!(p.push(&Cow::Borrowed("busy")));
        std::thread::sleep(Duration::from_millis(50));
        p.pop();
        p.stop_sampler();
        assert!(!p.is_enabled());
        let after = p.num_samples();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(p.num_samples(), after, "sampler is really stopped");
    }
}
