//! Append-only run history: one schema-versioned JSONL record per
//! telemetry-enabled run.
//!
//! Benchmark baselines (`BENCH_*.json`) are frozen single points; the
//! history file is the trajectory between them. Every run that exports
//! telemetry appends one [`RunRecord`] line to
//! `target/bench-history.jsonl` (override with `--history PATH`) carrying
//! the git revision, the command line, a config fingerprint, every
//! `derived.*` headline metric, peak RSS, and wall time — enough for the
//! `report` binary to draw throughput/RSS trends across commits and for
//! CI to archive the series as an artifact.
//!
//! The format is JSON Lines so appends are atomic at line granularity,
//! partial files stay readable, and records from different machines
//! concatenate. [`SCHEMA_VERSION`] is bumped on any field
//! removal/renaming; consumers skip records with a newer major schema
//! than they understand (additions are non-breaking).

use std::io::Write;
use std::path::Path;

/// Version stamped into every record's `schema` field.
pub const SCHEMA_VERSION: u64 = 1;

/// The default history path, relative to the working directory.
pub const DEFAULT_PATH: &str = "target/bench-history.jsonl";

/// One run's history entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Schema version ([`SCHEMA_VERSION`] for records this code writes).
    pub schema: u64,
    /// Seconds since the Unix epoch when the record was written.
    pub unix_time_s: u64,
    /// Git revision of the working tree, `"unknown"` outside a checkout.
    pub git_sha: String,
    /// The command line that produced the run (binary name + args).
    pub command: String,
    /// FNV-1a fingerprint of the effective configuration (the argv); runs
    /// with equal fingerprints are directly comparable.
    pub config_fingerprint: String,
    /// Whole-run wall time in microseconds.
    pub wall_us: u64,
    /// Peak resident set in bytes (0 where unmeasurable).
    pub peak_rss_bytes: u64,
    /// The `derived.*` headline metrics, name -> value, as exported into
    /// the metrics JSON.
    pub derived: Vec<(String, f64)>,
}

impl RunRecord {
    /// Starts a record for the current process: schema, wall-clock time,
    /// git revision, command line, and config fingerprint are filled in;
    /// metrics fields start zeroed/empty.
    pub fn for_current_process() -> RunRecord {
        let argv: Vec<String> = std::env::args().collect();
        let command = command_line(&argv);
        RunRecord {
            schema: SCHEMA_VERSION,
            unix_time_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            git_sha: git_sha(),
            config_fingerprint: fingerprint(&argv),
            command,
            wall_us: 0,
            peak_rss_bytes: 0,
            derived: Vec::new(),
        }
    }

    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"schema\":{},\"unix_time_s\":{},\"git_sha\":\"{}\",\
             \"command\":\"{}\",\"config_fingerprint\":\"{}\",\
             \"wall_us\":{},\"peak_rss_bytes\":{},\"derived\":{{",
            self.schema,
            self.unix_time_s,
            crate::json_escape(&self.git_sha),
            crate::json_escape(&self.command),
            crate::json_escape(&self.config_fingerprint),
            self.wall_us,
            self.peak_rss_bytes,
        );
        for (i, (name, value)) in self.derived.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Format finite values plainly; JSON has no NaN/Inf.
            let v = if value.is_finite() { *value } else { 0.0 };
            out.push_str(&format!("\"{}\":{v:.1}", crate::json_escape(name)));
        }
        out.push_str("}}");
        out
    }

    /// Appends the record to the JSONL file at `path`, creating parent
    /// directories and the file as needed.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn append(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json_line())
    }
}

/// `binary-name arg1 arg2 ...` with the binary's directory stripped.
fn command_line(argv: &[String]) -> String {
    let mut parts: Vec<&str> = Vec::with_capacity(argv.len());
    if let Some(first) = argv.first() {
        parts.push(
            Path::new(first)
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or(first),
        );
    }
    parts.extend(argv.iter().skip(1).map(String::as_str));
    parts.join(" ")
}

/// The current git revision: `GITHUB_SHA` when CI provides it, else
/// `git rev-parse HEAD`, else `"unknown"`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        let sha = sha.trim().to_owned();
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// A 64-bit FNV-1a fingerprint of the argv (order-sensitive, rendered as
/// 16 hex digits). Cheap, stable across platforms, and collision-safe at
/// the "group comparable runs" granularity it serves.
pub fn fingerprint(args: &[String]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for a in args {
        for b in a.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ["ab","c"] and ["a","bc"] differ.
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn record() -> RunRecord {
        RunRecord {
            schema: SCHEMA_VERSION,
            unix_time_s: 1_700_000_000,
            git_sha: "abc123".into(),
            command: "tables --quick \"x\"".into(),
            config_fingerprint: fingerprint(&["tables".into(), "--quick".into()]),
            wall_us: 1234,
            peak_rss_bytes: 5 << 20,
            derived: vec![
                ("gate_evals_per_sec".into(), 2.5e7),
                ("peak_rss_bytes".into(), (5 << 20) as f64),
            ],
        }
    }

    #[test]
    fn record_renders_parseable_schema_versioned_json() {
        let line = record().to_json_line();
        let v = parse(&line).expect("record parses");
        assert_eq!(
            v.get("schema").and_then(Value::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(v.get("git_sha").and_then(Value::as_str), Some("abc123"));
        assert_eq!(
            v.get("command").and_then(Value::as_str),
            Some("tables --quick \"x\""),
            "quotes in the command escape and round-trip"
        );
        assert_eq!(v.get("wall_us").and_then(Value::as_u64), Some(1234));
        let derived = v.get("derived").expect("derived object");
        assert_eq!(
            derived.get("gate_evals_per_sec").and_then(Value::as_f64),
            Some(2.5e7)
        );
        assert!(!line.contains('\n'), "one record, one line");
    }

    #[test]
    fn append_accumulates_jsonl() {
        let dir = std::env::temp_dir().join(format!(
            "atspeed-history-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("nested/history.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        record().append(&path).unwrap();
        record().append(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 2, "two appends, two records");
        for l in lines {
            parse(l).expect("every line parses");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_separates_arg_boundaries() {
        let a = fingerprint(&["ab".into(), "c".into()]);
        let b = fingerprint(&["a".into(), "bc".into()]);
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert_eq!(a, fingerprint(&["ab".into(), "c".into()]), "stable");
    }

    #[test]
    fn current_process_record_is_filled_in() {
        let r = RunRecord::for_current_process();
        assert_eq!(r.schema, SCHEMA_VERSION);
        assert!(!r.command.is_empty());
        assert_eq!(r.config_fingerprint.len(), 16);
        assert!(!r.git_sha.is_empty());
        parse(&r.to_json_line()).expect("parses");
    }
}
