//! Named counters, gauges, and log-2-bucketed histograms.
//!
//! A [`MetricsRegistry`] maps names to metric cells. Resolving a name takes
//! the registry lock once and returns a cheap `Arc`-backed handle
//! ([`Counter`], [`Gauge`], [`Histogram`]); updates through the handle are
//! lock-free atomics, so hot loops resolve their metrics up front and never
//! touch the registry again.
//!
//! Histograms bucket values by bit length: bucket `0` holds the value `0`,
//! and bucket `k ≥ 1` holds values in `[2^(k-1), 2^k - 1]` — so bucket
//! boundaries are exact at powers of two (the value `2^j` is the lower
//! bound of bucket `j + 1`). 65 buckets cover the full `u64` range.
//!
//! Registries are value types: the process-wide instance behind
//! [`global`] serves production metrics, while tests (and scoped
//! simulation-stats handles in `atspeed-sim`) construct their own.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: value 0, plus one per bit length of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket index for a value: `0` for `0`, else the value's bit length.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive `[lo, hi]` value range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= NUM_BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        k => (1 << (k - 1), (1 << k) - 1),
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (registry-wide [`MetricsRegistry::zero`] uses this).
    fn zero(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value / extremum gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (running maximum).
    #[inline]
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.set(0);
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log-2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value (bulk merge of pre-aggregated
    /// thread-local tallies).
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.0.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.0.count.fetch_add(n, Ordering::Relaxed);
        self.0
            .sum
            .fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
    }

    /// Merges a pre-bucketed tally in one pass: `bucket_counts[k]` samples
    /// fell into bucket `k`, `count` samples total, summing to `sum` in
    /// raw value. This is the batched counterpart of [`Histogram::record`]
    /// for thread-local tallies flushed once per work claim.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_counts` does not have [`NUM_BUCKETS`] entries.
    pub fn merge_tally(&self, bucket_counts: &[u64], count: u64, sum: u64) {
        assert_eq!(bucket_counts.len(), NUM_BUCKETS, "one count per bucket");
        debug_assert_eq!(bucket_counts.iter().sum::<u64>(), count);
        for (k, &n) in bucket_counts.iter().enumerate() {
            if n > 0 {
                self.0.buckets[k].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0.count.fetch_add(count, Ordering::Relaxed);
        self.0.sum.fetch_add(sum, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The approximate `q`-quantile (`q` in `[0, 1]`, clamped) of the
    /// recorded samples; see [`HistogramSnapshot::approx_quantile`] for
    /// the accuracy contract.
    pub fn approx_quantile(&self, q: f64) -> f64 {
        self.snapshot().approx_quantile(q)
    }

    /// A consistent-enough copy of the bucket contents for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = (0..NUM_BUCKETS)
            .filter_map(|k| {
                let n = self.0.buckets[k].load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bounds(k).0, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }

    fn zero(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(bucket lower bound, sample count)`, non-empty buckets only,
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The approximate `q`-quantile (`q` in `[0, 1]`, clamped), `0.0` when
    /// empty.
    ///
    /// Samples are only known to bucket granularity, so the estimate
    /// linearly interpolates inside the bucket containing the target rank:
    /// exact when every sample in that bucket shares one value, and off by
    /// at most the bucket width (a factor of two) otherwise. That is the
    /// right trade for p50/p99 summaries of timing distributions spanning
    /// many orders of magnitude.
    pub fn approx_quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for &(lo, n) in &self.buckets {
            let before = cum as f64;
            cum += n;
            if cum as f64 >= target {
                if lo == 0 {
                    return 0.0;
                }
                // Upper bound of the log2 bucket opened by `lo`; for
                // lo = 2^63 the doubling wraps to exactly u64::MAX.
                let hi = (lo << 1).wrapping_sub(1);
                let frac = ((target - before) / n as f64).clamp(0.0, 1.0);
                let width = (hi - lo) as f64 + 1.0;
                return (lo as f64 + frac * width).min(hi as f64);
            }
        }
        // Unreachable when buckets are consistent with `count`; fall back
        // to the largest known lower bound.
        self.buckets.last().map_or(0.0, |&(lo, _)| lo as f64)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A metric name was resolved as one kind but is registered as another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricKindError {
    /// The contested metric name.
    pub name: String,
    /// The kind the caller asked for.
    pub requested: &'static str,
    /// The kind the name is registered as.
    pub registered: &'static str,
}

impl std::fmt::Display for MetricKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "metric `{}` requested as {} but registered as {}",
            self.name, self.requested, self.registered
        )
    }
}

impl std::error::Error for MetricKindError {}

/// A named registry of counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating on first use) the counter named `name`.
    ///
    /// # Errors
    ///
    /// Returns a [`MetricKindError`] if `name` is already registered as a
    /// different metric kind.
    pub fn try_counter(&self, name: &str) -> Result<Counter, MetricKindError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => Ok(c.clone()),
            other => Err(MetricKindError {
                name: name.to_owned(),
                requested: "counter",
                registered: other.kind_name(),
            }),
        }
    }

    /// Resolves (creating on first use) the counter named `name`.
    ///
    /// On a kind collision — `name` already registered as a gauge or
    /// histogram, typically two crates instrumenting the same name — this
    /// logs an error and returns a *detached* handle whose updates are
    /// dropped, so an instrumentation clash can never abort a run. Use
    /// [`MetricsRegistry::try_counter`] to observe the collision.
    pub fn counter(&self, name: &str) -> Counter {
        self.try_counter(name).unwrap_or_else(|e| {
            crate::error!("trace.metrics", "metric kind collision; returning detached handle";
                name = e.name, requested = e.requested, registered = e.registered);
            Counter::default()
        })
    }

    /// Resolves (creating on first use) the gauge named `name`.
    ///
    /// # Errors
    ///
    /// Returns a [`MetricKindError`] if `name` is already registered as a
    /// different metric kind.
    pub fn try_gauge(&self, name: &str) -> Result<Gauge, MetricKindError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => Ok(g.clone()),
            other => Err(MetricKindError {
                name: name.to_owned(),
                requested: "gauge",
                registered: other.kind_name(),
            }),
        }
    }

    /// Resolves (creating on first use) the gauge named `name`.
    ///
    /// On a kind collision this logs an error and returns a *detached*
    /// handle whose updates are dropped (see [`MetricsRegistry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.try_gauge(name).unwrap_or_else(|e| {
            crate::error!("trace.metrics", "metric kind collision; returning detached handle";
                name = e.name, requested = e.requested, registered = e.registered);
            Gauge::default()
        })
    }

    /// Resolves (creating on first use) the histogram named `name`.
    ///
    /// # Errors
    ///
    /// Returns a [`MetricKindError`] if `name` is already registered as a
    /// different metric kind.
    pub fn try_histogram(&self, name: &str) -> Result<Histogram, MetricKindError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => Ok(h.clone()),
            other => Err(MetricKindError {
                name: name.to_owned(),
                requested: "histogram",
                registered: other.kind_name(),
            }),
        }
    }

    /// Resolves (creating on first use) the histogram named `name`.
    ///
    /// On a kind collision this logs an error and returns a *detached*
    /// handle whose updates are dropped (see [`MetricsRegistry::counter`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.try_histogram(name).unwrap_or_else(|e| {
            crate::error!("trace.metrics", "metric kind collision; returning detached handle";
                name = e.name, requested = e.requested, registered = e.registered);
            Histogram::default()
        })
    }

    /// Zeroes every metric's value, keeping names and handles valid.
    pub fn zero(&self) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for m in inner.values() {
            match m {
                Metric::Counter(c) => c.zero(),
                Metric::Gauge(g) => g.zero(),
                Metric::Histogram(h) => h.zero(),
            }
        }
    }

    /// A point-in-time copy of every metric, names ascending.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut snap = MetricsSnapshot::default();
        for (name, m) in inner.iter() {
            match m {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }

    /// Renders a snapshot as a JSON object with `counters`, `gauges`, and
    /// `histograms` sections (histogram buckets keyed by lower bound).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// A point-in-time copy of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, names ascending.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, names ascending.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` per histogram, names ascending.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The snapshot of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as a JSON object (see
    /// [`MetricsRegistry::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    \"{}\": {}",
                if i > 0 { "," } else { "" },
                crate::json_escape(name),
                v
            ));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    \"{}\": {}",
                if i > 0 { "," } else { "" },
                crate::json_escape(name),
                v
            ));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.2}, \
                 \"p50\": {:.2}, \"p99\": {:.2}, \"buckets\": {{",
                if i > 0 { "," } else { "" },
                crate::json_escape(name),
                h.count,
                h.sum,
                h.mean(),
                h.approx_quantile(0.50),
                h.approx_quantile(0.99),
            ));
            for (j, (lo, n)) in h.buckets.iter().enumerate() {
                out.push_str(&format!(
                    "{}\"{}\": {}",
                    if j > 0 { ", " } else { "" },
                    lo,
                    n
                ));
            }
            out.push_str("}}");
        }
        out.push_str("\n  }\n}");
        out
    }
}

/// The process-wide metrics registry (what `--metrics-json` exports).
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_at_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        for j in 0..64u32 {
            let v = 1u64 << j;
            // 2^j opens bucket j+1...
            assert_eq!(bucket_index(v), j as usize + 1, "2^{j}");
            // ...and 2^j - 1 closes bucket j.
            assert_eq!(bucket_index(v - 1), j as usize, "2^{j} - 1");
            assert_eq!(bucket_bounds(j as usize + 1).0, v);
        }
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(4), (8, 15));
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_records_into_expected_buckets() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (1024, 1)]);
        assert!((s.mean() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_exact_on_single_value_buckets() {
        let h = Histogram::default();
        assert_eq!(h.approx_quantile(0.5), 0.0, "empty histogram");
        // 100 samples of 8 (bucket [8, 15]) and 1 sample of 1024: the p50
        // lands in the 8-bucket near its lower edge, p99+ reaches 1024.
        h.record_n(8, 100);
        h.record(1024);
        let s = h.snapshot();
        let p50 = s.approx_quantile(0.50);
        assert!((8.0..16.0).contains(&p50), "p50 {p50}");
        let p999 = s.approx_quantile(0.999);
        assert!((1024.0..2048.0).contains(&p999), "p99.9 {p999}");
        assert_eq!(s.approx_quantile(0.0), 8.0, "q=0 is the smallest bucket");
        // q = 1 stays within the top bucket.
        assert!(s.approx_quantile(1.0) <= 2047.0);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(s.approx_quantile(-1.0), s.approx_quantile(0.0));
        assert_eq!(s.approx_quantile(2.0), s.approx_quantile(1.0));
    }

    #[test]
    fn quantiles_handle_zero_and_top_buckets() {
        let h = Histogram::default();
        h.record_n(0, 10);
        assert_eq!(h.approx_quantile(0.5), 0.0, "all-zero samples");
        h.record_n(u64::MAX, 30);
        let p99 = h.approx_quantile(0.99);
        assert!(p99 >= (1u64 << 63) as f64, "p99 {p99} in the top bucket");
        assert!(p99 <= u64::MAX as f64);
    }

    #[test]
    fn counters_and_gauges_update_atomically_through_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("a");
        let a2 = reg.counter("a");
        a.add(3);
        a2.inc();
        assert_eq!(reg.counter("a").get(), 4);

        let g = reg.gauge("g");
        g.set(5);
        g.add(-2);
        g.record_max(10);
        g.record_max(7);
        assert_eq!(reg.gauge("g").get(), 10);
    }

    #[test]
    fn kind_mismatch_returns_detached_handle_not_panic() {
        let reg = MetricsRegistry::new();
        reg.gauge("x").set(5);
        // Pre-fix this aborted the process; now the clashing caller gets a
        // detached counter whose updates go nowhere.
        let detached = reg.counter("x");
        detached.add(100);
        assert_eq!(detached.get(), 100, "detached handle still works locally");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("x"), Some(5), "registered gauge untouched");
        assert_eq!(snap.counter("x"), None, "no counter ever registered");

        let err = reg.try_counter("x").unwrap_err();
        assert_eq!(err.requested, "counter");
        assert_eq!(err.registered, "gauge");
        assert!(err.to_string().contains("`x`"), "{err}");
        assert!(reg.try_histogram("x").is_err());
        assert!(reg.try_gauge("x").is_ok());
        // Collisions in the other directions detach too.
        reg.histogram("h").record(1);
        let _ = reg.gauge("h");
        let _ = reg.histogram("x");
        assert_eq!(reg.snapshot().histogram("h").unwrap().count, 1);
    }

    #[test]
    fn zero_keeps_handles_valid() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        c.add(7);
        h.record(9);
        reg.zero();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(reg.counter("c").get(), 1);
    }

    #[test]
    fn snapshot_json_is_shaped_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b").add(2);
        reg.counter("a").add(1);
        reg.gauge("g").set(-3);
        reg.histogram("h").record(4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(1));
        assert_eq!(snap.gauge("g"), Some(-3));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        let json = reg.to_json();
        assert!(json.contains("\"a\": 1"));
        assert!(json.contains("\"g\": -3"));
        assert!(json.contains("\"4\": 1"), "bucket keyed by lower bound");
    }
}
