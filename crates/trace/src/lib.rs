//! Zero-dependency telemetry for the atspeed workspace.
//!
//! Six cooperating subsystems, all usable independently:
//!
//! - [`span`] — hierarchical RAII **spans**. A [`Span`] guard records a
//!   begin event on creation and an end event on drop; guards nest
//!   naturally (LIFO drop order), events are buffered per thread, and the
//!   whole recording exports as a Chrome trace-event JSON file loadable in
//!   Perfetto or `chrome://tracing`. Tracing is **off by default**: a
//!   disabled span is a single relaxed atomic load and no allocation, so
//!   per-fault ATPG scopes stay essentially free in production runs.
//! - [`metrics`] — a named **metrics registry** of monotonic [`Counter`]s,
//!   [`Gauge`]s, and log-2-bucketed [`Histogram`]s. Handles are cheap
//!   `Arc`-backed clones: resolve a metric once, then update it with
//!   lock-free atomics from any thread.
//! - [`log`] — a leveled **structured event log** (`error`/`warn`/`info`/
//!   `debug`) emitting one JSON object per line, with key=value fields,
//!   replacing ad-hoc `eprintln!` diagnostics.
//! - [`profile`] — a **span-stack sampling profiler**: a background thread
//!   samples each thread's live span stack at a configurable rate and
//!   aggregates collapsed/folded stacks loadable by speedscope or
//!   inferno. Off by default at the cost of one atomic load per span.
//! - [`history`] — an append-only **run history**: one schema-versioned
//!   JSONL record per telemetry-enabled run (git SHA, command, config
//!   fingerprint, derived metrics, peak RSS, wall time).
//! - [`json`] — a minimal **JSON parser** used by the report tooling and
//!   by tests that round-trip the crate's own JSON output.
//!
//! # Example
//!
//! ```
//! use atspeed_trace as trace;
//!
//! // Spans (instance API; the `trace::span(..)` free function uses a
//! // process-wide tracer that binaries enable with `--trace`).
//! let tracer = trace::Tracer::new();
//! tracer.set_enabled(true);
//! {
//!     let _outer = tracer.span("phase1");
//!     let _inner = tracer.span("fsim");
//! }
//! let json = tracer.chrome_trace_json();
//! assert!(json.contains("\"ph\":\"B\""));
//!
//! // Metrics.
//! let reg = trace::MetricsRegistry::new();
//! reg.counter("podem/aborted").inc();
//! reg.histogram("podem/backtracks").record(17);
//! assert_eq!(reg.counter("podem/aborted").get(), 1);
//!
//! // Structured logs.
//! trace::info!("doc.example", "pipeline done"; circuit = "s27", cycles = 42);
//! ```

// `deny` rather than `forbid`: rss.rs carries one audited `extern "C"`
// getrusage shim behind an explicit `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod json;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod rss;
pub mod span;

pub use history::RunRecord;
pub use log::Level;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKindError, MetricsRegistry, MetricsSnapshot,
};
pub use profile::{validate_folded, Profiler};
pub use span::{
    chrome_trace_json, current_scope, scope, set_tracing, span, span_args, tracing_enabled,
    write_chrome_trace, Span, Tracer, TracerScope,
};

/// Escapes a string for embedding inside a JSON string literal.
///
/// Handles quotes, backslashes, and control characters — the full set JSON
/// requires — without allocating when no escape is needed.
pub(crate) fn json_escape(s: &str) -> std::borrow::Cow<'_, str> {
    if !s
        .chars()
        .any(|c| matches!(c, '"' | '\\') || (c as u32) < 0x20)
    {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::json_escape;

    #[test]
    fn escape_passes_plain_strings_through() {
        assert_eq!(json_escape("phase1-2"), "phase1-2");
        assert!(matches!(
            json_escape("plain"),
            std::borrow::Cow::Borrowed(_)
        ));
    }

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
