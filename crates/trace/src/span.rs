//! Hierarchical RAII spans and the Chrome trace-event JSON exporter.
//!
//! A [`Tracer`] collects *begin*/*end* events into per-thread buffers. Each
//! [`Span`] guard emits a begin event when created and the matching end
//! event when dropped; because guards drop in LIFO order, spans nest
//! exactly like the lexical scopes that create them. Every thread gets its
//! own buffer (and its own stable `tid`), so concurrent recording never
//! interleaves events within a thread's timeline and the per-thread
//! begin/end sequence is always balanced and properly nested.
//!
//! The export format is the Chrome trace-event JSON array understood by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: duration
//! events with `"ph":"B"`/`"ph":"E"`, microsecond timestamps relative to
//! the tracer's construction, one track per thread.
//!
//! # Cost model
//!
//! Tracing is opt-in. While disabled, [`Tracer::span`] is one relaxed
//! atomic load and returns an inert guard — no allocation, no lock, no
//! timestamp. This is what makes per-fault ATPG spans affordable: the
//! disabled-path cost is negligible next to a single gate evaluation.
//! While enabled, a span costs two buffer pushes behind a thread-private
//! mutex (uncontended except during export).

use std::borrow::Cow;
use std::cell::RefCell;
use std::fmt;
use std::io;
use std::marker::PhantomData;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Process-wide tracer id allocator (tracers are distinguished in
/// thread-local buffer caches by id, so test instances never mix).
static NEXT_TRACER_ID: AtomicUsize = AtomicUsize::new(0);

/// Number of live [`TracerScope`]s across all threads. While zero (the
/// overwhelmingly common case), the free span functions skip the
/// thread-local scope lookup entirely — one relaxed load, as before.
static SCOPE_DEPTH: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Cache of this thread's buffers, one per tracer it has recorded to.
    static LOCAL_BUFS: RefCell<Vec<(usize, Arc<ThreadBuf>)>> = const { RefCell::new(Vec::new()) };

    /// This thread's stack of scoped tracers; the innermost one receives
    /// the free-function spans instead of the process-wide tracer.
    static SCOPE_STACK: RefCell<Vec<Arc<Tracer>>> = const { RefCell::new(Vec::new()) };
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    End,
}

#[derive(Debug)]
struct Event {
    name: Cow<'static, str>,
    ph: Phase,
    /// Microseconds since the tracer's epoch.
    ts_us: u64,
    /// Pre-rendered JSON object *body* for the Chrome `args` field, e.g.
    /// `"circuit":"s27","faults":32`.
    args: Option<String>,
}

#[derive(Debug)]
struct ThreadBuf {
    tid: u32,
    events: Mutex<Vec<Event>>,
}

/// A span/event collector with per-thread buffers.
///
/// Most code uses the process-wide instance through the free functions
/// ([`span`], [`set_tracing`], [`chrome_trace_json`]); tests construct
/// their own instances for isolation.
#[derive(Debug)]
pub struct Tracer {
    id: usize,
    enabled: AtomicBool,
    epoch: Instant,
    next_tid: AtomicU32,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates a disabled tracer whose timestamps are relative to now.
    pub fn new() -> Self {
        Tracer {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_tid: AtomicU32::new(1),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Turns recording on or off. Spans created while disabled record
    /// nothing, including their end events.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans currently record events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// This thread's buffer for this tracer, creating and registering it
    /// on first use.
    fn buf(&self) -> Arc<ThreadBuf> {
        LOCAL_BUFS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, buf)) = cache.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(buf);
            }
            let buf = Arc::new(ThreadBuf {
                tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
                events: Mutex::new(Vec::new()),
            });
            self.threads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&buf));
            cache.push((self.id, Arc::clone(&buf)));
            buf
        })
    }

    fn emit(&self, name: Cow<'static, str>, ph: Phase, args: Option<String>) {
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let buf = self.buf();
        buf.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Event {
                name,
                ph,
                ts_us,
                args,
            });
    }

    /// Opens a span named `name`; the span ends when the guard drops.
    ///
    /// Accepts `&'static str` (no allocation) or an owned `String` for
    /// dynamic names. Returns an inert guard when the tracer is disabled.
    #[inline]
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span<'_> {
        if !self.is_enabled() {
            return Span {
                tracer: None,
                scoped: None,
                name: Cow::Borrowed(""),
                profiled: false,
            };
        }
        self.span_slow(name.into(), None)
    }

    /// Opens a span with key/value arguments attached to its begin event
    /// (visible in the Perfetto selection panel).
    pub fn span_args(
        &self,
        name: impl Into<Cow<'static, str>>,
        args: &[(&str, &dyn fmt::Display)],
    ) -> Span<'_> {
        if !self.is_enabled() {
            return Span {
                tracer: None,
                scoped: None,
                name: Cow::Borrowed(""),
                profiled: false,
            };
        }
        self.span_slow(name.into(), Some(render_args(args)))
    }

    fn span_slow(&self, name: Cow<'static, str>, args: Option<String>) -> Span<'_> {
        self.emit(name.clone(), Phase::Begin, args);
        Span {
            tracer: Some(self),
            scoped: None,
            name,
            profiled: false,
        }
    }

    /// Total events recorded so far (begin + end), across all threads.
    pub fn num_events(&self) -> usize {
        let threads = self.threads.lock().unwrap_or_else(|e| e.into_inner());
        threads
            .iter()
            .map(|b| b.events.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Discards all recorded events (thread registrations persist).
    pub fn clear(&self) {
        let threads = self.threads.lock().unwrap_or_else(|e| e.into_inner());
        for b in threads.iter() {
            b.events.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Renders everything recorded so far as a Chrome trace-event JSON
    /// document (`{"traceEvents":[...]}`), loadable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Events are emitted thread by thread, preserving each thread's
    /// in-order begin/end sequence (the viewers sort by timestamp and
    /// require no global order).
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let threads = self.threads.lock().unwrap_or_else(|e| e.into_inner());
        for buf in threads.iter() {
            let events = buf.events.lock().unwrap_or_else(|e| e.into_inner());
            for ev in events.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\n{{\"name\":\"{}\",\"cat\":\"atspeed\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
                    crate::json_escape(&ev.name),
                    match ev.ph {
                        Phase::Begin => "B",
                        Phase::End => "E",
                    },
                    buf.tid,
                    ev.ts_us,
                ));
                if let Some(args) = &ev.args {
                    out.push_str(",\"args\":{");
                    out.push_str(args);
                    out.push('}');
                }
                out.push('}');
            }
        }
        out.push_str("\n]}");
        out
    }
}

fn render_args(args: &[(&str, &dyn fmt::Display)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":\"{}\"",
            crate::json_escape(k),
            crate::json_escape(&v.to_string())
        ));
    }
    out
}

/// RAII guard for one span: records the end event on drop.
///
/// Inert (records nothing) when created from a disabled tracer. Spans
/// opened through the free functions also appear as one frame on the
/// process-wide profiler's stack while that profiler is enabled
/// (`profiled` remembers whether a matching pop is owed on drop).
#[derive(Debug)]
#[must_use = "a span ends when its guard drops; binding it to `_` ends it immediately"]
pub struct Span<'a> {
    tracer: Option<&'a Tracer>,
    /// Owned handle for spans redirected into a [`TracerScope`]'s tracer
    /// (the guard may outlive the scope, so it keeps the tracer alive).
    scoped: Option<Arc<Tracer>>,
    name: Cow<'static, str>,
    profiled: bool,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.profiled {
            crate::profile::pop();
        }
        if let Some(tracer) = &self.scoped {
            tracer.emit(std::mem::take(&mut self.name), Phase::End, None);
        } else if let Some(tracer) = self.tracer {
            tracer.emit(std::mem::take(&mut self.name), Phase::End, None);
        }
    }
}

/// Redirects this thread's free-function spans ([`span`], [`span_args`])
/// into `tracer` until the guard drops — the mechanism behind per-job
/// span trees in long-running services: a worker enters a scope with a
/// fresh job-local tracer, runs the job, and exports that tracer alone,
/// so concurrent jobs never mix span trees.
///
/// Scopes nest (innermost wins) and are strictly per-thread; the guard is
/// deliberately `!Send`. Worker pools that fan a scoped job out across
/// helper threads re-enter the scope there via [`current_scope`]. While a
/// scope is active on a thread, that thread's free-function spans go
/// *only* to the scoped tracer, not to the process-wide one.
#[derive(Debug)]
#[must_use = "a scope ends when its guard drops; binding it to `_` ends it immediately"]
pub struct TracerScope {
    /// Keep the guard on the thread that opened it (thread-local stack).
    _not_send: PhantomData<*const ()>,
}

/// Enters a span scope on the current thread; see [`TracerScope`].
pub fn scope(tracer: Arc<Tracer>) -> TracerScope {
    SCOPE_STACK.with(|s| s.borrow_mut().push(tracer));
    SCOPE_DEPTH.fetch_add(1, Ordering::Relaxed);
    TracerScope {
        _not_send: PhantomData,
    }
}

impl Drop for TracerScope {
    fn drop(&mut self) {
        SCOPE_DEPTH.fetch_sub(1, Ordering::Relaxed);
        SCOPE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The innermost scoped tracer on this thread, if any. Helper-thread
/// pools capture this before spawning and re-[`scope`] it on each worker
/// so a scoped job's spans stay with the job across threads.
pub fn current_scope() -> Option<Arc<Tracer>> {
    if SCOPE_DEPTH.load(Ordering::Relaxed) == 0 {
        return None;
    }
    SCOPE_STACK.with(|s| s.borrow().last().cloned())
}

/// The process-wide tracer, lazily constructed.
///
/// Stays unconstructed (and [`tracing_enabled`] stays `false` at the cost
/// of one atomic load) until [`set_tracing`] first turns recording on.
static GLOBAL: OnceLock<Tracer> = OnceLock::new();

/// The process-wide tracer used by the free functions.
pub fn global() -> &'static Tracer {
    GLOBAL.get_or_init(Tracer::new)
}

/// Enables or disables the process-wide tracer (binaries call this for
/// `--trace FILE`).
pub fn set_tracing(on: bool) {
    global().set_enabled(on);
}

/// Whether the process-wide tracer is recording.
#[inline]
pub fn tracing_enabled() -> bool {
    GLOBAL.get().is_some_and(Tracer::is_enabled)
}

/// Opens a span on the process-wide tracer — or on the current thread's
/// [`TracerScope`] tracer when one is active — and pushes a frame onto
/// the process-wide profiler's span stack when profiling is enabled.
/// Near-free while all three are disabled (one relaxed atomic load each).
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> Span<'static> {
    free_span(name.into(), None)
}

/// Opens a span with arguments on the process-wide tracer (or the active
/// [`TracerScope`]'s). Profiles like [`span`] (arguments are not part of
/// the profile frame).
pub fn span_args(
    name: impl Into<Cow<'static, str>>,
    args: &[(&str, &dyn fmt::Display)],
) -> Span<'static> {
    let name = name.into();
    // Render args lazily: only when some tracer will actually record.
    if current_scope().is_none() && !tracing_enabled() {
        return free_span(name, None);
    }
    let rendered = render_args(args);
    free_span(name, Some(rendered))
}

fn free_span(name: Cow<'static, str>, args: Option<String>) -> Span<'static> {
    let profiled = crate::profile::push(&name);
    if let Some(t) = current_scope() {
        if t.is_enabled() {
            t.emit(name.clone(), Phase::Begin, args);
            return Span {
                tracer: None,
                scoped: Some(t),
                name,
                profiled,
            };
        }
        // An entered-but-disabled scope still isolates the job: its spans
        // must not leak into the process-wide trace.
        return Span {
            tracer: None,
            scoped: None,
            name: Cow::Borrowed(""),
            profiled,
        };
    }
    match GLOBAL.get() {
        Some(t) if t.is_enabled() => {
            t.emit(name.clone(), Phase::Begin, args);
            Span {
                tracer: Some(t),
                scoped: None,
                name,
                profiled,
            }
        }
        _ => Span {
            tracer: None,
            scoped: None,
            name: Cow::Borrowed(""),
            profiled,
        },
    }
}

/// Exports the process-wide tracer's recording as Chrome trace JSON.
pub fn chrome_trace_json() -> String {
    global().chrome_trace_json()
}

/// Writes the process-wide tracer's recording to `path` as a Chrome
/// trace-event file (open it at <https://ui.perfetto.dev>).
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        {
            let _a = t.span("a");
            let _b = t.span_args("b", &[("k", &1)]);
        }
        assert_eq!(t.num_events(), 0);
        assert_eq!(
            t.chrome_trace_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}"
        );
    }

    #[test]
    fn span_records_begin_and_end() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let _a = t.span("alpha");
        }
        assert_eq!(t.num_events(), 2);
        let json = t.chrome_trace_json();
        assert!(json.contains("\"name\":\"alpha\",\"cat\":\"atspeed\",\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
    }

    #[test]
    fn clear_discards_events() {
        let t = Tracer::new();
        t.set_enabled(true);
        drop(t.span("x"));
        assert_eq!(t.num_events(), 2);
        t.clear();
        assert_eq!(t.num_events(), 0);
    }

    #[test]
    fn args_are_escaped() {
        let t = Tracer::new();
        t.set_enabled(true);
        drop(t.span_args("s", &[("label", &"a\"b")]));
        let json = t.chrome_trace_json();
        assert!(json.contains("\"label\":\"a\\\"b\""));
    }

    #[test]
    fn tracer_scope_captures_free_spans_in_isolation() {
        let job = Arc::new(Tracer::new());
        job.set_enabled(true);
        {
            let _scope = scope(Arc::clone(&job));
            let _a = span("job.phase");
            drop(span_args("job.inner", &[("k", &7)]));
        }
        // 2 spans x begin+end landed on the job tracer, none on global.
        assert_eq!(job.num_events(), 4);
        let json = job.chrome_trace_json();
        assert!(json.contains("job.phase"), "{json}");
        assert!(json.contains("\"k\":\"7\""), "{json}");
        // After the scope ends, free spans fall back to the global path
        // (which is disabled here, so nothing more records on `job`).
        drop(span("after"));
        assert_eq!(job.num_events(), 4);
    }

    #[test]
    fn nested_scopes_innermost_wins_and_disabled_scopes_isolate() {
        let outer = Arc::new(Tracer::new());
        outer.set_enabled(true);
        let inner = Arc::new(Tracer::new());
        inner.set_enabled(true);
        let _o = scope(Arc::clone(&outer));
        {
            let _i = scope(Arc::clone(&inner));
            drop(span("x"));
        }
        assert_eq!(inner.num_events(), 2);
        assert_eq!(outer.num_events(), 0, "inner scope shadows outer");
        drop(span("y"));
        assert_eq!(outer.num_events(), 2, "outer scope resumes");

        // A scope whose tracer is disabled still swallows spans rather
        // than leaking them to the process-wide tracer.
        let off = Arc::new(Tracer::new());
        {
            let _s = scope(Arc::clone(&off));
            drop(span("swallowed"));
        }
        assert_eq!(off.num_events(), 0);
        assert_eq!(outer.num_events(), 2, "swallowed span leaks nowhere");
    }

    #[test]
    fn current_scope_reports_the_innermost_tracer() {
        assert!(current_scope().is_none());
        let t = Arc::new(Tracer::new());
        let _s = scope(Arc::clone(&t));
        let seen = current_scope().expect("scope active");
        assert!(Arc::ptr_eq(&seen, &t));
    }

    #[test]
    fn span_guard_outliving_its_scope_still_closes_on_the_job_tracer() {
        let job = Arc::new(Tracer::new());
        job.set_enabled(true);
        let guard = {
            let _scope = scope(Arc::clone(&job));
            span("outlives")
        };
        drop(guard);
        assert_eq!(job.num_events(), 2, "begin and end both on the job");
    }

    #[test]
    fn spans_toggled_off_mid_run_stay_silent() {
        let t = Tracer::new();
        t.set_enabled(true);
        let s = t.span("outer");
        t.set_enabled(false);
        drop(t.span("inner")); // records nothing
        drop(s); // end event for `outer` still records: guard is live
        assert_eq!(t.num_events(), 2);
    }
}
