//! A minimal JSON value parser.
//!
//! The workspace emits JSON from several hand-rolled writers (Chrome
//! traces, the metrics registry, run-history records) and carries no
//! serialization dependency — so consuming that output back (the `report`
//! binary, the escaping round-trip tests) needs a parser of its own. This
//! one covers the full JSON grammar (RFC 8259): objects, arrays, strings
//! with every escape form including `\uXXXX` surrogate pairs, numbers,
//! booleans, and null.
//!
//! Numbers are held as `f64`, which is exact for the integers the
//! workspace writes up to 2^53; [`Value::as_u64`] round-trips those.
//! Object members preserve insertion order and duplicate keys (last one
//! wins on [`Value::get`]), matching what a streaming writer produces.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (`None` for other variants or a missing
    /// key). The *last* member wins when keys repeat.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (floors the stored
    /// `f64`; exact for writer output up to 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What the parser expected or found.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first violation.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Nesting guard: our writers stay shallow, and a bound keeps a corrupted
/// input from recursing the stack away.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("lone low surrogate"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one whole UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let before = p.pos;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("unrepresentable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"a b\"").unwrap(), Value::Str("a b".into()));
    }

    #[test]
    fn parses_structures_and_lookup() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "n": null, "a2": 7}"#).unwrap();
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert_eq!(v.get("a2").and_then(Value::as_u64), Some(7));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("c"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn resolves_every_escape_form() {
        let v = parse(r#""q\" b\\ s\/ \b \f \n \r \t u\u0041 \ud83d\ude00""#).unwrap();
        assert_eq!(
            v.as_str().unwrap(),
            "q\" b\\ s/ \u{8} \u{c} \n \r \t uA \u{1F600}"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"\\q\"",
            "\"\u{1}\"",
            "01x",
            "1 2",
            "\"\\ud800 lone\"",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bound trips instead of blowing the stack.
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(2));
    }
}
