//! Exporter contract tests: the emitted Chrome trace JSON parses, span
//! begin/end events are balanced and properly nested per thread, histogram
//! bucket boundaries are exact at powers of two, and multi-threaded
//! recording produces no interleaving corruption.
//!
//! The workspace carries no JSON dependency, so a minimal recursive-descent
//! JSON parser lives at the bottom of this file; it accepts exactly the
//! JSON grammar (it is the same validator the CI telemetry job re-checks
//! with `python3 -m json.tool`).

use atspeed_trace::metrics::{bucket_bounds, bucket_index};
use atspeed_trace::{MetricsRegistry, Tracer};

fn events_of(json: &str) -> Vec<(String, String, f64)> {
    let doc = parse_json(json).expect("chrome trace JSON must parse");
    let events = doc
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents is an array");
    events
        .iter()
        .map(|e| {
            let name = e.get("name").unwrap().as_str().unwrap().to_owned();
            let ph = e.get("ph").unwrap().as_str().unwrap().to_owned();
            let tid = e.get("tid").unwrap().as_f64().unwrap();
            assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            (name, ph, tid)
        })
        .collect()
}

/// Per-tid stack replay: every E matches the innermost open B of the same
/// name, and every stack drains to empty.
fn assert_balanced_and_nested(events: &[(String, String, f64)]) {
    use std::collections::BTreeMap;
    let mut stacks: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (name, ph, tid) in events {
        let stack = stacks.entry(*tid as u64).or_default();
        match ph.as_str() {
            "B" => stack.push(name),
            "E" => {
                let open = stack
                    .pop()
                    .unwrap_or_else(|| panic!("end event `{name}` on tid {tid} with no open span"));
                assert_eq!(open, name, "span ends must nest LIFO on tid {tid}");
            }
            other => panic!("unexpected phase `{other}`"),
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
    }
}

#[test]
fn exported_json_parses_and_is_balanced() {
    let t = Tracer::new();
    t.set_enabled(true);
    {
        let _root = t.span("pipeline");
        {
            let _p1 = t.span_args("phase1", &[("circuit", &"s27"), ("note", &"a\"b\\c")]);
        }
        let _p2 = t.span("phase2");
    }
    let json = t.chrome_trace_json();
    let events = events_of(&json);
    assert_eq!(events.len(), 6);
    assert_balanced_and_nested(&events);
}

#[test]
fn nested_spans_nest_in_emitted_order() {
    let t = Tracer::new();
    t.set_enabled(true);
    {
        let _a = t.span("outer");
        {
            let _b = t.span("middle");
            let _c = t.span("inner");
        }
    }
    let events = events_of(&t.chrome_trace_json());
    let shape: Vec<(&str, &str)> = events
        .iter()
        .map(|(n, p, _)| (n.as_str(), p.as_str()))
        .collect();
    assert_eq!(
        shape,
        [
            ("outer", "B"),
            ("middle", "B"),
            ("inner", "B"),
            ("inner", "E"),
            ("middle", "E"),
            ("outer", "E"),
        ]
    );
    assert_balanced_and_nested(&events);
}

#[test]
fn timestamps_are_monotone_within_a_thread() {
    let t = Tracer::new();
    t.set_enabled(true);
    for _ in 0..50 {
        let _s = t.span("tick");
    }
    let doc = parse_json(&t.chrome_trace_json()).unwrap();
    let ts: Vec<f64> = doc
        .get("traceEvents")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e.get("ts").unwrap().as_f64().unwrap())
        .collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn multithreaded_recording_has_no_interleaving_corruption() {
    let t = Tracer::new();
    t.set_enabled(true);
    std::thread::scope(|s| {
        for w in 0..8 {
            let t = &t;
            s.spawn(move || {
                for i in 0..200 {
                    let _outer = t.span(if w % 2 == 0 { "even" } else { "odd" });
                    if i % 3 == 0 {
                        let _inner = t.span("nested");
                    }
                }
            });
        }
    });
    let json = t.chrome_trace_json();
    let events = events_of(&json);
    // 8 workers x 200 outer spans, plus 67 nested spans each, x2 (B+E).
    assert_eq!(events.len(), 8 * (200 + 67) * 2);
    assert_balanced_and_nested(&events);
    // Worker threads and their tids are 1:1.
    let tids: std::collections::BTreeSet<u64> =
        events.iter().map(|(_, _, tid)| *tid as u64).collect();
    assert_eq!(tids.len(), 8);
}

#[test]
fn histogram_bucket_boundaries_power_of_two_contract() {
    // 1000 = 0b1111101000 sits in [512, 1023]; 1024 opens the next bucket.
    assert_eq!(bucket_index(1000), 10);
    assert_eq!(bucket_index(1023), 10);
    assert_eq!(bucket_index(1024), 11);
    assert_eq!(bucket_bounds(11), (1024, 2047));

    let reg = MetricsRegistry::new();
    let h = reg.histogram("walls");
    for v in [0u64, 1, 2, 4, 8, 16, 16, 31, 32] {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(
        snap.buckets,
        vec![(0, 1), (1, 1), (2, 1), (4, 1), (8, 1), (16, 3), (32, 1)]
    );
    // The registry JSON parses too.
    let doc = parse_json(&reg.to_json()).expect("metrics JSON parses");
    let hist = doc
        .get("histograms")
        .unwrap()
        .get("walls")
        .expect("walls histogram present");
    assert_eq!(hist.get("count").unwrap().as_f64().unwrap(), 9.0);
    assert_eq!(
        hist.get("buckets").unwrap().get("16").unwrap().as_f64(),
        Some(3.0)
    );
}

#[test]
fn metrics_json_with_awkward_names_still_parses() {
    let reg = MetricsRegistry::new();
    reg.counter("weird \"name\"\\path").add(1);
    reg.gauge("g").set(-7);
    let doc = parse_json(&reg.to_json()).expect("escaped names parse");
    assert_eq!(
        doc.get("counters")
            .unwrap()
            .get("weird \"name\"\\path")
            .unwrap()
            .as_f64(),
        Some(1.0)
    );
}

// ---------------------------------------------------------------------
// Minimal JSON parser (test-only): full grammar, no dependencies.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }
}

fn parse_json(input: &str) -> Result<Json, String> {
    let bytes: Vec<char> = input.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], ' ' | '\t' | '\n' | '\r') {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at {pos}"))
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some('{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, ':')?;
                pairs.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at {pos}")),
                }
            }
        }
        Some('"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some('t') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some('f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some('n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[char], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    for c in lit.chars() {
        if b.get(*pos) != Some(&c) {
            return Err(format!("bad literal at {pos}"));
        }
        *pos += 1;
    }
    Ok(value)
}

fn parse_string(b: &[char], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&'"') {
        return Err(format!("expected string at {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hex: String = b
                            .get(*pos..*pos + 4)
                            .ok_or("short \\u escape")?
                            .iter()
                            .collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad codepoint")?);
                    }
                    other => return Err(format!("bad escape `\\{other}`")),
                }
            }
            c if (c as u32) < 0x20 => return Err("raw control character in string".into()),
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&'-') {
        *pos += 1;
    }
    // Integer part: `0` alone or a nonzero digit run (no leading zeros).
    match b.get(*pos) {
        Some('0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while b.get(*pos).is_some_and(char::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return Err(format!("bad number at {start}")),
    }
    if b.get(*pos) == Some(&'.') {
        *pos += 1;
        if !b.get(*pos).is_some_and(char::is_ascii_digit) {
            return Err(format!("bad fraction at {pos}"));
        }
        while b.get(*pos).is_some_and(char::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some('e') | Some('E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some('+') | Some('-')) {
            *pos += 1;
        }
        if !b.get(*pos).is_some_and(char::is_ascii_digit) {
            return Err(format!("bad exponent at {pos}"));
        }
        while b.get(*pos).is_some_and(char::is_ascii_digit) {
            *pos += 1;
        }
    }
    let text: String = b[start..*pos].iter().collect();
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("unparsable number `{text}`"))
}
