//! Observability contract tests: Chrome-trace escaping round-trips
//! through the crate's own JSON parser for adversarial span names and
//! argument values, and the sampling profiler — pumped by hand, no
//! timers — attributes samples to the right threads in structurally
//! valid collapsed/folded output.

use std::borrow::Cow;
use std::sync::{Arc, Barrier};

use atspeed_trace::json::{parse, Value};
use atspeed_trace::profile::Profiler;
use atspeed_trace::{validate_folded, Tracer};

// ---------------------------------------------------------------------
// Chrome-trace escaping: property-style round trip.
// ---------------------------------------------------------------------

/// Deterministic splitmix64 so the "property test" is reproducible.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed;
    move || {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Characters chosen to hit every escaping path: the two mandatory
/// escapes, every control-character shorthand, raw controls that need
/// `\u00XX`, multi-byte BMP text, and astral-plane codepoints that
/// exercise surrogate-pair handling in the parser.
const PALETTE: &[char] = &[
    '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{0}', '\u{1}', '\u{1f}', ' ', 'a', 'Z',
    '0', ';', ':', '{', '}', '[', ']', ',', 'é', 'Ω', '→', '€', '\u{7f}', '😀', '𝕊', '🧪',
];

fn random_string(next: &mut impl FnMut() -> u64) -> String {
    let len = (next() % 24) as usize;
    (0..len)
        .map(|_| PALETTE[(next() % PALETTE.len() as u64) as usize])
        .collect()
}

/// Every generated (name, key, value) triple must come back byte-for-byte
/// after rendering to Chrome trace JSON and re-parsing with
/// `atspeed_trace::json` — the writer's escaping and the reader's
/// unescaping are exact inverses on arbitrary text.
#[test]
fn chrome_trace_escaping_round_trips_adversarial_strings() {
    let mut next = rng(0xC0FFEE);
    for case in 0..200u32 {
        let t = Tracer::new();
        t.set_enabled(true);
        let name = random_string(&mut next);
        let key = random_string(&mut next);
        let value = random_string(&mut next);
        {
            let _sp = t.span_args(name.clone(), &[(key.as_str(), &value)]);
        }
        let json = t.chrome_trace_json();
        let doc = parse(&json)
            .unwrap_or_else(|e| panic!("case {case}: emitted JSON must parse: {e}\n{json}"));
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2, "case {case}: one B and one E event");
        let begin = &events[0];
        assert_eq!(
            begin.get("name").and_then(Value::as_str),
            Some(name.as_str()),
            "case {case}: span name must round-trip"
        );
        let args = begin
            .get("args")
            .and_then(Value::as_obj)
            .expect("begin event carries args");
        assert_eq!(args.len(), 1, "case {case}");
        assert_eq!(args[0].0, key, "case {case}: arg key must round-trip");
        assert_eq!(
            args[0].1.as_str(),
            Some(value.as_str()),
            "case {case}: arg value must round-trip"
        );
        // The end event carries the same name and no args.
        assert_eq!(
            events[1].get("name").and_then(Value::as_str),
            Some(name.as_str())
        );
        assert_eq!(events[1].get("ph").and_then(Value::as_str), Some("E"));
    }
}

// ---------------------------------------------------------------------
// Profiler: deterministic, manually-pumped sampling.
// ---------------------------------------------------------------------

/// A profiler that was never enabled records nothing, no matter how many
/// spans run or how often it is pumped.
#[test]
fn disabled_profiler_stays_empty_under_load() {
    let p = Profiler::new();
    for _ in 0..100 {
        assert!(!p.push(&Cow::Borrowed("work")));
        assert_eq!(p.sample_once(), 0);
    }
    assert_eq!(p.num_samples(), 0);
    assert_eq!(p.folded(), "");
    assert_eq!(validate_folded(&p.folded()), Ok(0));
}

/// Two threads hold different span stacks; every manual pump observes
/// both, and the folded output attributes each stack to its thread's
/// label with exact counts.
#[test]
fn manual_pump_attributes_samples_to_the_right_thread() {
    let p = Arc::new(Profiler::new());
    p.set_enabled(true);

    // Rendezvous: worker builds its stack, main pumps, worker unwinds.
    let ready = Arc::new(Barrier::new(2));
    let done = Arc::new(Barrier::new(2));
    let worker = {
        let (p, ready, done) = (Arc::clone(&p), Arc::clone(&ready), Arc::clone(&done));
        std::thread::Builder::new()
            .name("omission-worker".to_owned())
            .spawn(move || {
                assert!(p.push(&Cow::Borrowed("phase2")));
                assert!(p.push(&Cow::Borrowed("omit attempt")));
                ready.wait();
                done.wait();
                p.pop();
                p.pop();
            })
            .expect("spawn worker")
    };

    assert!(p.push(&Cow::Borrowed("pipeline")));
    ready.wait();
    // Both stacks are now frozen: 3 pumps see 2 live stacks each.
    for _ in 0..3 {
        assert_eq!(p.sample_once(), 2);
    }
    done.wait();
    worker.join().expect("worker exits cleanly");
    p.pop();

    let folded = p.folded();
    let total = validate_folded(&folded).expect("folded output is structurally valid");
    assert_eq!(total, 6, "3 pumps x 2 threads:\n{folded}");
    // Worker frames fold under the worker's thread name, with whitespace
    // sanitized; the main-thread stack never mixes in.
    assert!(
        folded.contains("omission-worker;phase2;omit_attempt 3"),
        "{folded}"
    );
    let main_line = folded
        .lines()
        .find(|l| l.ends_with(";pipeline 3"))
        .unwrap_or_else(|| panic!("main-thread stack missing:\n{folded}"));
    assert!(
        !main_line.starts_with("omission-worker"),
        "main-thread samples must not attribute to the worker: {main_line}"
    );
}

/// The folded output obeys the collapsed-stack grammar speedscope and
/// inferno ingest — even when span names try to smuggle in the format's
/// own separators.
#[test]
fn folded_output_is_structurally_valid_collapsed_format() {
    let p = Profiler::new();
    p.set_enabled(true);
    assert!(p.push(&Cow::Borrowed("phase 1;2")));
    assert!(p.push(&Cow::Borrowed("fault G17 s-a-1\nnote")));
    for _ in 0..5 {
        p.sample_once();
    }
    p.pop();
    p.pop();

    let folded = p.folded();
    assert_eq!(validate_folded(&folded), Ok(5));
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(count.parse::<u64>().expect("integer count") > 0);
        for frame in stack.split(';') {
            assert!(!frame.is_empty(), "no empty frames in {line:?}");
            assert!(
                !frame.contains(char::is_whitespace),
                "frames are whitespace-free in {line:?}"
            );
        }
    }
    // The reserved characters were sanitized, not dropped.
    assert!(
        folded.contains("phase_1:2;fault_G17_s-a-1_note"),
        "{folded}"
    );
}

/// The span free functions feed the process-wide profiler: while it is
/// enabled, an open span is one frame on the live stack even with the
/// tracer off; after disabling, new spans leave no trace.
#[test]
fn free_spans_feed_the_global_profiler_only_while_enabled() {
    let p = atspeed_trace::profile::global();
    p.set_enabled(true);
    {
        let _sp = atspeed_trace::span("integration.outer");
        let _inner = atspeed_trace::span("integration.inner");
        p.sample_once();
    }
    p.set_enabled(false);
    let with = p.num_samples();
    assert!(with >= 1, "the pump saw the live span stack");
    {
        let _sp = atspeed_trace::span("integration.after");
        p.sample_once();
    }
    assert_eq!(p.num_samples(), with, "disabled profiler gains no samples");
    let folded = p.folded();
    assert!(
        folded.contains("integration.outer;integration.inner"),
        "{folded}"
    );
    validate_folded(&folded).expect("global profiler output validates");
}
