//! Transition-delay fault simulation.
//!
//! The paper's motivation for long primary-input sequences is that they are
//! applied **at speed** (with the functional clock) and therefore detect
//! delay defects, which scan-bounded single-vector tests miss. This module
//! makes that claim measurable with the classic *transition fault* model:
//!
//! - a **slow-to-rise** fault on a net is detected by two consecutive
//!   at-speed cycles where the fault-free value transitions 0→1 in the
//!   first cycle pair and the (late) faulty value — modeled as the previous
//!   cycle's value, i.e. stuck-at-0 for that cycle — propagates to an
//!   observation point in the second cycle;
//! - a **slow-to-fall** fault is the 1→0 dual.
//!
//! Following standard practice, a transition fault is simulated as a
//! stuck-at fault that is only *armed* during cycles immediately following
//! a launching transition at the fault site. Launch and capture must occur
//! in back-to-back functional cycles — exactly what a long `T_i` provides
//! and what a scan operation interrupts: within a test `(SI, T)`, cycle
//! pairs `(t, t+1)` for `t < L(T)-1` are at-speed pairs, and the final
//! cycle's capture may also be observed by the scan-out.

use atspeed_circuit::{NetId, Netlist};

use crate::comb::Overrides;
use crate::fault::{Fault, FaultSite};
use crate::kernel::{CompiledSim, SimScratch};
use crate::logic::{V3, W3};
use crate::vectors::{Sequence, State};

/// A transition-delay fault on a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionFault {
    /// The net whose transition is slow.
    pub net: NetId,
    /// `true` = slow-to-rise (misses 0→1), `false` = slow-to-fall.
    pub rising: bool,
}

impl TransitionFault {
    /// The stuck-at fault whose effect models the late transition during
    /// the capture cycle (slow-to-rise behaves as stuck-at-0).
    pub fn as_stuck_at(&self) -> Fault {
        Fault {
            site: FaultSite::Stem(self.net),
            stuck: !self.rising,
        }
    }

    /// Conventional description.
    pub fn describe(&self, nl: &Netlist) -> String {
        format!(
            "{} {}",
            nl.net_name(self.net),
            if self.rising { "str" } else { "stf" }
        )
    }
}

/// Enumerates both transition faults on every net.
pub fn all_transition_faults(nl: &Netlist) -> Vec<TransitionFault> {
    let mut out = Vec::with_capacity(2 * nl.num_nets());
    for net in nl.net_ids() {
        out.push(TransitionFault { net, rising: true });
        out.push(TransitionFault { net, rising: false });
    }
    out
}

/// Parallel-fault transition-delay fault simulator for scan tests.
///
/// Runs over the compiled kernel: the fault-free machine advances
/// event-driven between cycles, while the faulty machine takes a full
/// compiled pass each cycle (the armed-fault override set changes every
/// cycle, which invalidates the delta path's fixed-override premise).
#[derive(Debug)]
pub struct TransitionFaultSim<'a> {
    nl: &'a Netlist,
    good: SimScratch,
    faulty: SimScratch,
    ov: Overrides,
}

impl<'a> TransitionFaultSim<'a> {
    /// Creates a simulator for `nl`.
    pub fn new(nl: &'a Netlist) -> Self {
        let cc = nl.compiled();
        TransitionFaultSim {
            nl,
            good: SimScratch::new(cc),
            faulty: SimScratch::new(cc),
            ov: Overrides::new(nl),
        }
    }

    /// Simulates the scan test `(si, seq)` under `faults` and returns which
    /// transition faults it detects.
    ///
    /// Detection of fault `f` requires some cycle `t ≥ 1` where the
    /// fault-free value of `f.net` transitions in the fault direction
    /// between `t-1` and `t`, and the corresponding stuck-at effect at `t`
    /// reaches a primary output (any such `t`) or the captured state at the
    /// last cycle (observed by the scan-out). A single-vector test
    /// (`L = 1`) has no at-speed cycle pair, hence detects nothing — the
    /// paper's argument in miniature.
    pub fn detect(&mut self, si: &State, seq: &Sequence, faults: &[TransitionFault]) -> Vec<bool> {
        let mut detected = vec![false; faults.len()];
        if seq.len() < 2 {
            return detected;
        }
        for (chunk_idx, chunk) in faults.chunks(63).enumerate() {
            let base = chunk_idx * 63;
            let caught = self.detect_chunk(si, seq, chunk);
            for (k, _) in chunk.iter().enumerate() {
                if caught & (1u64 << (k + 1)) != 0 {
                    detected[base + k] = true;
                }
            }
        }
        detected
    }

    /// Counts the transition faults of `faults` detected by an entire test
    /// set, with fault dropping across tests.
    pub fn count_detected_by_set(
        &mut self,
        tests: &[(State, Sequence)],
        faults: &[TransitionFault],
    ) -> usize {
        let mut alive: Vec<TransitionFault> = faults.to_vec();
        let mut total = 0usize;
        for (si, seq) in tests {
            if alive.is_empty() {
                break;
            }
            let det = self.detect(si, seq, &alive);
            let survivors: Vec<TransitionFault> = alive
                .iter()
                .zip(det.iter())
                .filter(|(_, &d)| !d)
                .map(|(&f, _)| f)
                .collect();
            total += alive.len() - survivors.len();
            alive = survivors;
        }
        total
    }

    fn detect_chunk(&mut self, si: &State, seq: &Sequence, chunk: &[TransitionFault]) -> u64 {
        let nl = self.nl;
        let cc = nl.compiled();
        let sim = CompiledSim::new(cc);
        let active: u64 = if chunk.len() == 63 {
            !1u64
        } else {
            ((1u64 << chunk.len()) - 1) << 1
        };
        let mut caught = 0u64;

        // Good-machine previous-cycle values decide, per fault, in which
        // cycles the stuck-at effect is armed. We simulate cycle by cycle:
        // first fault-free (to learn transitions), then with the armed
        // subset injected.
        let mut good_state: Vec<W3> = si.iter().map(|&v| W3::broadcast(v)).collect();
        let mut faulty_state: Vec<W3> = good_state.clone();
        let mut prev_good: Vec<V3> = vec![V3::X; nl.num_nets()];
        // Machines whose fault has been armed at least once: only their
        // divergence is a real fault effect (un-armed machines track the
        // good machine exactly, since no injection ever touches them).
        let mut infected = 0u64;

        for t in 0..seq.len() {
            let vec = seq.vector(t);
            // Fault-free evaluation of cycle t (slot 0 view). The good
            // machine has no overrides, so after a full first-cycle pass it
            // can advance event-driven on the changed sources alone.
            for (i, &pi) in cc.pis().iter().enumerate() {
                self.good.set_source(pi, W3::broadcast(vec[i]));
            }
            for (f, &q) in cc.ff_qs().iter().enumerate() {
                self.good.set_source(q, good_state[f]);
            }
            if t == 0 {
                sim.eval(&mut self.good);
            } else {
                sim.eval_delta(&mut self.good);
            }

            // Arm faults whose site transitions in the fault direction
            // between t-1 and t (launch at t-1, capture at t).
            self.ov.clear();
            let mut armed = 0u64;
            if t >= 1 {
                for (k, f) in chunk.iter().enumerate() {
                    let before = prev_good[f.net.index()];
                    let now = self.good.value(f.net).get(0);
                    let launches = match (before, now) {
                        (V3::Zero, V3::One) => f.rising,
                        (V3::One, V3::Zero) => !f.rising,
                        _ => false,
                    };
                    if launches {
                        let mask = 1u64 << (k + 1);
                        armed |= mask;
                        self.ov.add(f.as_stuck_at(), mask);
                    }
                }
            }

            infected |= armed;

            // Faulty evaluation of cycle t with armed faults injected;
            // previously latched corruption keeps propagating through the
            // per-slot flip-flop state. The armed override set changes every
            // cycle, so this machine always takes a full pass.
            for (i, &pi) in cc.pis().iter().enumerate() {
                self.faulty.set_untracked(pi, W3::broadcast(vec[i]));
            }
            for (f, &q) in cc.ff_qs().iter().enumerate() {
                self.faulty.set_untracked(q, faulty_state[f]);
            }
            sim.eval_with(&mut self.faulty, &self.ov);

            // Observe primary outputs.
            let mut diff = 0u64;
            for &po in cc.pos() {
                let w = self.faulty.value(po);
                match self.good.value(po).get(0) {
                    V3::One => diff |= w.zero,
                    V3::Zero => diff |= w.one,
                    V3::X => {}
                }
            }
            caught |= diff & infected & active;

            // Capture both machines; the faulty machine carries latched
            // fault effects forward (a late transition corrupts the
            // captured value permanently).
            for (f, &d) in cc.ff_ds().iter().enumerate() {
                good_state[f] = self.good.value(d);
                faulty_state[f] = self.faulty.value(d);
            }

            // Scan-out observation at the last cycle.
            if t + 1 == seq.len() {
                let mut sd = 0u64;
                for (f, w) in faulty_state.iter().enumerate() {
                    let good = good_state[f];
                    match good.get(0) {
                        V3::One => sd |= w.zero,
                        V3::Zero => sd |= w.one,
                        V3::X => {}
                    }
                }
                caught |= sd & infected & active;
            }

            for net in nl.net_ids() {
                prev_good[net.index()] = self.good.value(net).get(0);
            }
            if caught == active {
                break;
            }
        }
        caught
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::parse_values;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::{GateKind, NetlistBuilder};

    fn buf_circuit() -> Netlist {
        // y = BUF(a) through one FF so transitions need two cycles to see.
        let mut b = NetlistBuilder::new("buf");
        b.input("a");
        b.gate(GateKind::Buf, "y", &["a"]);
        b.output("y");
        b.finish().unwrap()
    }

    #[test]
    fn rising_transition_detected_by_zero_one_pair() {
        let nl = buf_circuit();
        let a = nl.find_net("a").unwrap();
        let f = TransitionFault {
            net: a,
            rising: true,
        };
        let mut sim = TransitionFaultSim::new(&nl);
        // 0 then 1: launches a rising transition; slow-to-rise shows 0.
        let seq: Sequence = ["0", "1"].iter().map(|r| parse_values(r)).collect();
        assert_eq!(sim.detect(&vec![], &seq, &[f]), vec![true]);
        // 1 then 0: no rising launch.
        let seq: Sequence = ["1", "0"].iter().map(|r| parse_values(r)).collect();
        assert_eq!(sim.detect(&vec![], &seq, &[f]), vec![false]);
        // Falling fault is the dual.
        let g = TransitionFault {
            net: a,
            rising: false,
        };
        assert_eq!(sim.detect(&vec![], &seq, &[g]), vec![true]);
    }

    #[test]
    fn single_vector_tests_detect_no_transition_faults() {
        // The paper's core claim in miniature: a scan test with L=1 has no
        // at-speed cycle pair.
        let nl = s27();
        let faults = all_transition_faults(&nl);
        let mut sim = TransitionFaultSim::new(&nl);
        let seq: Sequence = std::iter::once(parse_values("1010")).collect();
        let det = sim.detect(&parse_values("010"), &seq, &faults);
        assert!(det.iter().all(|&d| !d));
    }

    #[test]
    fn longer_sequences_detect_more() {
        let nl = s27();
        let faults = all_transition_faults(&nl);
        let mut sim = TransitionFaultSim::new(&nl);
        let rows = [
            "1010", "0101", "0011", "1100", "1111", "0000", "1001", "0110",
        ];
        let long: Sequence = rows.iter().map(|r| parse_values(r)).collect();
        let short: Sequence = rows[..2].iter().map(|r| parse_values(r)).collect();
        let si = parse_values("000");
        let count = |det: Vec<bool>| det.iter().filter(|&&d| d).count();
        let d_long = count(sim.detect(&si, &long, &faults));
        let d_short = count(sim.detect(&si, &short, &faults));
        assert!(d_long >= d_short);
        assert!(d_long > 0, "an 8-cycle at-speed burst detects something");
    }

    #[test]
    fn set_counting_drops_faults() {
        let nl = s27();
        let faults = all_transition_faults(&nl);
        let mut sim = TransitionFaultSim::new(&nl);
        let t1 = (
            parse_values("000"),
            ["1010", "0101"].iter().map(|r| parse_values(r)).collect(),
        );
        let t2 = (
            parse_values("111"),
            ["0000", "1111", "0000"]
                .iter()
                .map(|r| parse_values(r))
                .collect(),
        );
        let both = sim.count_detected_by_set(&[t1.clone(), t2.clone()], &faults);
        let first = sim.count_detected_by_set(&[t1], &faults);
        assert!(both >= first);
        assert!(both <= faults.len());
    }

    #[test]
    fn fault_count_and_descriptions() {
        let nl = s27();
        let faults = all_transition_faults(&nl);
        assert_eq!(faults.len(), 2 * nl.num_nets());
        assert!(faults[0].describe(&nl).ends_with("str"));
        assert!(faults[1].describe(&nl).ends_with("stf"));
    }
}
