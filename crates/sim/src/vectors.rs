//! Primary-input sequences and flip-flop state vectors.

use std::fmt;

use crate::logic::V3;

/// A flip-flop state vector: one [`V3`] per flip-flop, in [`FfId`] order.
///
/// [`FfId`]: atspeed_circuit::FfId
pub type State = Vec<V3>;

/// A time-major sequence of primary-input vectors.
///
/// `seq.vector(t)[i]` is the value applied to primary input `i` at time unit
/// `t`. In the paper's notation this is a sequence `T`, applied with the
/// functional clock (at speed). The paper's subsequence notation
/// `T[u1, u2]` corresponds to [`Sequence::subrange`].
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Sequence {
    vectors: Vec<Vec<V3>>,
}

impl Sequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Sequence::default()
    }

    /// Creates a sequence from time-major vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have differing widths.
    pub fn from_vectors(vectors: Vec<Vec<V3>>) -> Self {
        if let Some(first) = vectors.first() {
            let w = first.len();
            assert!(
                vectors.iter().all(|v| v.len() == w),
                "all vectors in a sequence must have the same width"
            );
        }
        Sequence { vectors }
    }

    /// The number of time units (`L(T)` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the sequence has no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The primary-input vector applied at time `t`.
    #[inline]
    pub fn vector(&self, t: usize) -> &[V3] {
        &self.vectors[t]
    }

    /// Appends a vector at the end.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from existing vectors.
    pub fn push(&mut self, v: Vec<V3>) {
        if let Some(first) = self.vectors.first() {
            assert_eq!(first.len(), v.len(), "vector width mismatch");
        }
        self.vectors.push(v);
    }

    /// Removes and returns the vector at time `t`, shifting later vectors.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    pub fn remove(&mut self, t: usize) -> Vec<V3> {
        self.vectors.remove(t)
    }

    /// The prefix `T[0, end]` **inclusive** of time unit `end`, matching the
    /// paper's prefix tests `τ_SO,i = (SI, T_0[0, i])`.
    ///
    /// # Panics
    ///
    /// Panics if `end >= self.len()`.
    pub fn prefix(&self, end: usize) -> Sequence {
        assert!(end < self.len(), "prefix end {end} out of bounds");
        Sequence {
            vectors: self.vectors[..=end].to_vec(),
        }
    }

    /// The subsequence `T[u1, u2]`, inclusive on both ends.
    ///
    /// # Panics
    ///
    /// Panics if `u1 > u2` or `u2 >= self.len()`.
    pub fn subrange(&self, u1: usize, u2: usize) -> Sequence {
        assert!(u1 <= u2 && u2 < self.len(), "bad subrange [{u1},{u2}]");
        Sequence {
            vectors: self.vectors[u1..=u2].to_vec(),
        }
    }

    /// Concatenates two sequences (`T_i T_j` in the paper's test combining).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ and neither side is empty.
    pub fn concat(&self, other: &Sequence) -> Sequence {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        assert_eq!(
            self.vectors[0].len(),
            other.vectors[0].len(),
            "sequence width mismatch"
        );
        let mut vectors = self.vectors.clone();
        vectors.extend(other.vectors.iter().cloned());
        Sequence { vectors }
    }

    /// Iterates over the vectors in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<V3>> {
        self.vectors.iter()
    }
}

impl fmt::Debug for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sequence[{} x {}]", self.len(), {
            self.vectors.first().map_or(0, Vec::len)
        })?;
        if self.len() <= 8 {
            for v in &self.vectors {
                write!(f, " ")?;
                for &x in v {
                    write!(f, "{x}")?;
                }
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = &'a Vec<V3>;
    type IntoIter = std::slice::Iter<'a, Vec<V3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Vec<V3>> for Sequence {
    fn from_iter<I: IntoIterator<Item = Vec<V3>>>(iter: I) -> Self {
        Sequence::from_vectors(iter.into_iter().collect())
    }
}

/// A character that is not a 3-valued logic literal, found while parsing a
/// vector string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The offending character.
    pub character: char,
    /// Its byte offset in the input.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid logic character `{}` at position {} (expected 0, 1, x, or X)",
            self.character, self.position
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a state or vector string like `"01x1"` into values, reporting
/// the first invalid character instead of panicking.
///
/// This is the entry point for externally supplied vectors (CLI arguments,
/// vector files, repro bundles); [`parse_values`] is its panicking
/// counterpart for tests and examples with literal strings.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first character outside
/// `0`, `1`, `x`, `X`.
pub fn try_parse_values(s: &str) -> Result<Vec<V3>, ParseError> {
    s.char_indices()
        .map(|(position, c)| match c {
            '0' => Ok(V3::Zero),
            '1' => Ok(V3::One),
            'x' | 'X' => Ok(V3::X),
            character => Err(ParseError {
                character,
                position,
            }),
        })
        .collect()
}

/// Parses a state or vector string like `"01x1"` into values.
///
/// Intended for tests and examples.
///
/// # Panics
///
/// Panics on characters other than `0`, `1`, `x`, `X`.
pub fn parse_values(s: &str) -> Vec<V3> {
    match try_parse_values(s) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: &[&str]) -> Sequence {
        rows.iter().map(|r| parse_values(r)).collect()
    }

    #[test]
    fn construction_and_access() {
        let s = seq(&["01", "10", "xx"]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.vector(0), &[V3::Zero, V3::One]);
        assert_eq!(s.vector(2), &[V3::X, V3::X]);
    }

    #[test]
    fn prefix_is_inclusive() {
        let s = seq(&["00", "01", "10", "11"]);
        let p = s.prefix(1);
        assert_eq!(p.len(), 2);
        assert_eq!(p.vector(1), s.vector(1));
        assert_eq!(s.prefix(3), s);
    }

    #[test]
    fn subrange_matches_paper_notation() {
        let s = seq(&["00", "01", "10", "11"]);
        let sub = s.subrange(1, 2);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.vector(0), s.vector(1));
    }

    #[test]
    fn concat_appends() {
        let a = seq(&["00", "01"]);
        let b = seq(&["11"]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.vector(2), b.vector(0));
        assert_eq!(a.concat(&Sequence::new()), a);
        assert_eq!(Sequence::new().concat(&b), b);
    }

    #[test]
    fn remove_shifts() {
        let mut s = seq(&["00", "01", "10"]);
        let removed = s.remove(1);
        assert_eq!(removed, parse_values("01"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.vector(1), &parse_values("10")[..]);
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn rejects_ragged_vectors() {
        let _ = Sequence::from_vectors(vec![parse_values("01"), parse_values("011")]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn prefix_bounds_checked() {
        let s = seq(&["0"]);
        let _ = s.prefix(1);
    }

    #[test]
    fn parse_values_handles_case() {
        assert_eq!(parse_values("01xX"), vec![V3::Zero, V3::One, V3::X, V3::X]);
    }

    #[test]
    fn try_parse_values_locates_bad_characters() {
        assert_eq!(try_parse_values("01x"), Ok(parse_values("01x")));
        assert_eq!(try_parse_values(""), Ok(vec![]));
        let err = try_parse_values("012").unwrap_err();
        assert_eq!(err.character, '2');
        assert_eq!(err.position, 2);
        assert!(err.to_string().contains("position 2"), "{err}");
        assert!(try_parse_values("0 1").is_err());
    }

    #[test]
    #[should_panic(expected = "invalid logic character `q`")]
    fn parse_values_still_panics_for_tests() {
        let _ = parse_values("0q");
    }

    #[test]
    fn debug_shows_dimensions() {
        let s = seq(&["01", "10"]);
        let d = format!("{s:?}");
        assert!(d.contains("2 x 2"), "{d}");
    }
}
