//! Sequential (cycle-accurate) simulation and parallel-fault fault
//! simulation.
//!
//! The fault simulator packs the good machine into slot 0 of every word and
//! up to 63 faulty machines into the remaining slots (the classic
//! parallel-fault organization). Detection is recorded when a primary
//! output is binary in both machines and differs; scanning out additionally
//! observes the flip-flop state, and [`SeqFaultSim::profiles`] records the
//! full per-cycle state-difference sets that Phase 1 of the paper uses to
//! choose the scan-out time unit.

use atspeed_circuit::{CompiledCircuit, FfId, Netlist, PoId};

use crate::comb::Overrides;
use crate::fault::{FaultId, FaultUniverse};
use crate::fused::FusedSim;
use crate::kernel::{CompiledSim, SimScratch};
use crate::logic::{V3, W3};
use crate::parallel::EngineKind;
use crate::vectors::{Sequence, State};

/// Fault-free trace of a sequence: per-cycle primary-output values and the
/// captured flip-flop state after each cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoodTrace {
    /// `po_values[t][k]` is primary output `k` during cycle `t`.
    pub po_values: Vec<Vec<V3>>,
    /// `states[t]` is the flip-flop state captured at the end of cycle `t`
    /// (what a scan-out performed after cycle `t` would shift out).
    pub states: Vec<State>,
}

/// Fault-free sequential simulator.
///
/// Reads only observed nets (primary outputs and flip-flop D inputs),
/// which are always fused-unit roots, so [`EngineKind::WideFused`] runs
/// the cone-fused kernel per cycle. [`EngineKind::Wide`] maps to scalar
/// here: there is no pattern dimension to widen (the whole word simulates
/// one trace).
#[derive(Debug, Clone, Copy)]
pub struct SeqSim<'a> {
    nl: &'a Netlist,
    engine: EngineKind,
}

impl<'a> SeqSim<'a> {
    /// Creates a simulator for `nl` on the scalar kernel.
    pub fn new(nl: &'a Netlist) -> Self {
        Self::with_engine(nl, EngineKind::Scalar)
    }

    /// Creates a simulator for `nl` on the given kernel (see the type docs
    /// for how each [`EngineKind`] behaves here).
    pub fn with_engine(nl: &'a Netlist, engine: EngineKind) -> Self {
        SeqSim { nl, engine }
    }

    /// Simulates `seq` from the initial state `init` (use all-X for a
    /// circuit that has not been scan-loaded).
    ///
    /// The first cycle is a full pass; later cycles run event-driven,
    /// re-evaluating only the cone of the inputs and state bits that
    /// changed between cycles.
    ///
    /// # Panics
    ///
    /// Panics if `init` or the sequence width do not match the netlist.
    pub fn run(&self, init: &State, seq: &Sequence) -> GoodTrace {
        assert_eq!(init.len(), self.nl.num_ffs(), "state width mismatch");
        let cc = self.nl.compiled();
        let sim = CompiledSim::new(cc);
        let mut fused =
            (self.engine == EngineKind::WideFused).then(|| FusedSim::new(cc, self.nl.fused()));
        let mut scratch = SimScratch::new(cc);
        let mut state: Vec<W3> = init.iter().map(|&v| W3::broadcast(v)).collect();
        let mut po_values = Vec::with_capacity(seq.len());
        let mut states = Vec::with_capacity(seq.len());
        for t in 0..seq.len() {
            let vec = seq.vector(t);
            assert_eq!(vec.len(), self.nl.num_pis(), "input width mismatch");
            for (i, &pi) in cc.pis().iter().enumerate() {
                scratch.set_source(pi, W3::broadcast(vec[i]));
            }
            for (f, &q) in cc.ff_qs().iter().enumerate() {
                scratch.set_source(q, state[f]);
            }
            match (&mut fused, t) {
                (Some(f), 0) => f.eval(&mut scratch),
                (Some(f), _) => f.eval_delta(&mut scratch),
                (None, 0) => sim.eval(&mut scratch),
                (None, _) => sim.eval_delta(&mut scratch),
            }
            po_values.push(
                cc.pos()
                    .iter()
                    .map(|&po| scratch.value(po).get(0))
                    .collect(),
            );
            for (f, &d) in cc.ff_ds().iter().enumerate() {
                state[f] = scratch.value(d);
            }
            states.push(state.iter().map(|w| w.get(0)).collect());
        }
        GoodTrace { po_values, states }
    }
}

/// Per-fault detection profile over a sequence, produced by
/// [`SeqFaultSim::profiles`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DetectionProfile {
    /// Earliest cycle at which a primary output detects the fault, if any.
    pub po_detect: Option<u32>,
    /// Bit `t` set ⇒ the faulty flip-flop state differs observably from the
    /// good state at the end of cycle `t` (a scan-out after cycle `t`
    /// detects the fault).
    pub state_diff: Vec<u64>,
}

impl DetectionProfile {
    fn set_state_diff(&mut self, t: usize) {
        let word = t / 64;
        if self.state_diff.len() <= word {
            self.state_diff.resize(word + 1, 0);
        }
        self.state_diff[word] |= 1 << (t % 64);
    }

    /// Whether a scan-out at the end of cycle `t` observes a state
    /// difference.
    pub fn state_diff_at(&self, t: usize) -> bool {
        self.state_diff
            .get(t / 64)
            .is_some_and(|w| w & (1 << (t % 64)) != 0)
    }

    /// Whether the prefix test `(SI, T[0, i])` followed by a scan-out
    /// detects the fault (the predicate of the paper's Step 3).
    pub fn detected_by_prefix(&self, i: usize) -> bool {
        self.po_detect.is_some_and(|d| (d as usize) <= i) || self.state_diff_at(i)
    }

    /// The earliest cycle whose prefix test detects the fault: the minimum
    /// of the primary-output detection time and the first state-difference
    /// cycle. `None` when the sequence never detects the fault.
    pub fn earliest_detection(&self) -> Option<u32> {
        let first_sd = self
            .state_diff
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| (i * 64) as u32 + w.trailing_zeros());
        match (self.po_detect, first_sd) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// What is observed at the end of a test, in addition to the primary
/// outputs watched every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalObserve<'m> {
    /// Nothing — no scan-out (e.g. a scan-less sequence `T_0`).
    None,
    /// The whole flip-flop state (full scan-out).
    FullState,
    /// Only the flip-flops marked `true` (partial scan-out).
    PartialState(&'m [bool]),
}

/// Parallel-fault sequential fault simulator with reusable scratch buffers.
///
/// Evaluates over the netlist's [`CompiledCircuit`]: within each 63-fault
/// chunk the first cycle is a full compiled pass under the injected
/// overrides, and subsequent cycles propagate event-driven from the input
/// and state bits that changed (the override set is fixed for the whole
/// chunk, so values outside the changed cone stay valid).
///
/// # Engine selection
///
/// This engine observes only primary outputs and flip-flop D inputs —
/// always fused-unit roots — so [`EngineKind::WideFused`] runs the
/// cone-fused kernel for every cycle's pass. [`EngineKind::Wide`] maps to
/// scalar here: the word's 64 slots already carry the good machine plus
/// [`FAULTS_PER_PASS`] faulty machines, leaving no pattern dimension to
/// widen. Detection results are identical at every kind.
#[derive(Debug)]
pub struct SeqFaultSim<'a> {
    nl: &'a Netlist,
    cc: &'a CompiledCircuit,
    fused: Option<FusedSim<'a>>,
    scratch: SimScratch,
    ov: Overrides,
}

/// How many faulty machines ride along with the good machine per pass.
pub const FAULTS_PER_PASS: usize = 63;

impl<'a> SeqFaultSim<'a> {
    /// Creates a fault simulator for `nl` on the scalar kernel.
    pub fn new(nl: &'a Netlist) -> Self {
        Self::with_engine(nl, EngineKind::Scalar)
    }

    /// Creates a fault simulator for `nl` on the given kernel (see the
    /// type docs for how each [`EngineKind`] behaves here).
    pub fn with_engine(nl: &'a Netlist, engine: EngineKind) -> Self {
        let cc = nl.compiled();
        let fused = (engine == EngineKind::WideFused).then(|| FusedSim::new(cc, nl.fused()));
        SeqFaultSim {
            nl,
            cc,
            fused,
            scratch: SimScratch::new(cc),
            ov: Overrides::new(nl),
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// Fault-simulates `seq` from `init` under `faults` and returns which
    /// were detected. Primary outputs are observed every cycle; when
    /// `observe_final_state` is set the flip-flop state after the last
    /// cycle is also observed (modeling a scan-out).
    ///
    /// Detection requires the good and faulty values to be binary and
    /// opposite — X differences never count.
    pub fn detect(
        &mut self,
        init: &State,
        seq: &Sequence,
        faults: &[FaultId],
        universe: &FaultUniverse,
        observe_final_state: bool,
    ) -> Vec<bool> {
        let observe = if observe_final_state {
            FinalObserve::FullState
        } else {
            FinalObserve::None
        };
        self.detect_observed(init, seq, faults, universe, observe)
    }

    /// Like [`SeqFaultSim::detect`], with explicit control over the final
    /// observation — [`FinalObserve::PartialState`] models a partial scan
    /// chain that shifts out only a subset of the flip-flops.
    pub fn detect_observed(
        &mut self,
        init: &State,
        seq: &Sequence,
        faults: &[FaultId],
        universe: &FaultUniverse,
        observe: FinalObserve<'_>,
    ) -> Vec<bool> {
        crate::stats::add_invocation();
        let mut detected = vec![false; faults.len()];
        for (chunk_idx, chunk) in faults.chunks(FAULTS_PER_PASS).enumerate() {
            let base = chunk_idx * FAULTS_PER_PASS;
            let caught = self.simulate_chunk(init, seq, chunk, universe, observe);
            for (k, _) in chunk.iter().enumerate() {
                if caught & (1u64 << (k + 1)) != 0 {
                    detected[base + k] = true;
                }
            }
        }
        detected
    }

    /// Whether `seq` detects *every* fault in `faults` — equivalent to
    /// `detect(..).iter().all(|&d| d)` but exits on the first 63-fault
    /// chunk that finishes with an undetected member, skipping the
    /// remaining chunks entirely. This is the accept/reject predicate of
    /// vector omission, where most rejections lose a fault early.
    pub fn detects_all(
        &mut self,
        init: &State,
        seq: &Sequence,
        faults: &[FaultId],
        universe: &FaultUniverse,
        observe_final_state: bool,
    ) -> bool {
        crate::stats::add_invocation();
        let observe = if observe_final_state {
            FinalObserve::FullState
        } else {
            FinalObserve::None
        };
        for chunk in faults.chunks(FAULTS_PER_PASS) {
            let caught = self.simulate_chunk(init, seq, chunk, universe, observe);
            if caught != active_mask(chunk.len()) {
                return false;
            }
        }
        true
    }

    /// Simulates one chunk of up to [`FAULTS_PER_PASS`] faults over `seq`
    /// and returns the caught-slot mask (bit `k+1` set ⇒ `chunk[k]`
    /// detected). Exits early once every active slot is caught.
    fn simulate_chunk(
        &mut self,
        init: &State,
        seq: &Sequence,
        chunk: &[FaultId],
        universe: &FaultUniverse,
        observe: FinalObserve<'_>,
    ) -> u64 {
        let active = active_mask(chunk.len());
        self.ov.clear();
        for (k, &fid) in chunk.iter().enumerate() {
            self.ov.add(universe.fault(fid), 1u64 << (k + 1));
        }
        let mut caught = 0u64;
        let mut state: Vec<W3> = init.iter().map(|&v| W3::broadcast(v)).collect();
        let sim = CompiledSim::new(self.cc);
        for t in 0..seq.len() {
            self.seed_inputs(seq, t, &state);
            match (&mut self.fused, t) {
                (Some(f), 0) => f.eval_with(&mut self.scratch, &self.ov),
                (Some(f), _) => f.eval_delta_with(&mut self.scratch, &self.ov),
                (None, 0) => sim.eval_with(&mut self.scratch, &self.ov),
                (None, _) => sim.eval_delta_with(&mut self.scratch, &self.ov),
            }
            caught |= self.po_diff_mask() & active;
            self.capture(&mut state);
            if t + 1 == seq.len() {
                match observe {
                    FinalObserve::None => {}
                    FinalObserve::FullState => {
                        caught |= state_diff_mask(&state) & active;
                    }
                    FinalObserve::PartialState(mask) => {
                        caught |= masked_state_diff(&state, mask) & active;
                    }
                }
            }
            if caught == active {
                break;
            }
        }
        caught
    }

    /// Fault-simulates `seq` from `init` and returns the full detection
    /// profile of every fault: the earliest primary-output detection cycle
    /// and the set of cycles whose end-of-cycle state differs observably.
    ///
    /// A fault's state-difference set is only tracked up to its
    /// primary-output detection (later prefixes detect it regardless), which
    /// is exactly what [`DetectionProfile::detected_by_prefix`] needs.
    pub fn profiles(
        &mut self,
        init: &State,
        seq: &Sequence,
        faults: &[FaultId],
        universe: &FaultUniverse,
    ) -> Vec<DetectionProfile> {
        self.profiles_bounded(init, seq, faults, universe, usize::MAX)
            .0
    }

    /// [`SeqFaultSim::profiles`] with a memory bound: each fault's
    /// state-difference bitset is truncated to its first
    /// `max_state_words × 64` cycles, and the number of set bits dropped by
    /// the cap is returned alongside the profiles.
    ///
    /// Truncation only *under-claims* detection — a dropped bit means a
    /// scan-out that would detect the fault is not credited, so consumers
    /// keep extra vectors or generate redundant top-up tests; they never
    /// claim coverage that does not exist. The bound is applied per fault
    /// by absolute cycle index, so the result (profiles *and* the truncated
    /// count) is identical however the fault list is chunked or partitioned
    /// across threads.
    pub fn profiles_bounded(
        &mut self,
        init: &State,
        seq: &Sequence,
        faults: &[FaultId],
        universe: &FaultUniverse,
        max_state_words: usize,
    ) -> (Vec<DetectionProfile>, u64) {
        crate::stats::add_invocation();
        let mut truncated = 0u64;
        let mut profiles = vec![DetectionProfile::default(); faults.len()];
        for (chunk_idx, chunk) in faults.chunks(FAULTS_PER_PASS).enumerate() {
            let base = chunk_idx * FAULTS_PER_PASS;
            let active = active_mask(chunk.len());
            self.ov.clear();
            for (k, &fid) in chunk.iter().enumerate() {
                self.ov.add(universe.fault(fid), 1u64 << (k + 1));
            }
            let mut po_done = 0u64;
            let mut state: Vec<W3> = init.iter().map(|&v| W3::broadcast(v)).collect();
            let sim = CompiledSim::new(self.cc);
            for t in 0..seq.len() {
                self.seed_inputs(seq, t, &state);
                match (&mut self.fused, t) {
                    (Some(f), 0) => f.eval_with(&mut self.scratch, &self.ov),
                    (Some(f), _) => f.eval_delta_with(&mut self.scratch, &self.ov),
                    (None, 0) => sim.eval_with(&mut self.scratch, &self.ov),
                    (None, _) => sim.eval_delta_with(&mut self.scratch, &self.ov),
                }
                let po_mask = self.po_diff_mask() & active & !po_done;
                if po_mask != 0 {
                    for k in 0..chunk.len() {
                        if po_mask & (1u64 << (k + 1)) != 0 {
                            profiles[base + k].po_detect = Some(t as u32);
                        }
                    }
                    po_done |= po_mask;
                }
                self.capture(&mut state);
                let sd = state_diff_mask(&state) & active & !po_done;
                if sd != 0 {
                    for k in 0..chunk.len() {
                        if sd & (1u64 << (k + 1)) != 0 {
                            if t / 64 < max_state_words {
                                profiles[base + k].set_state_diff(t);
                            } else {
                                truncated += 1;
                            }
                        }
                    }
                }
                if po_done == active {
                    break;
                }
            }
        }
        (profiles, truncated)
    }

    fn seed_inputs(&mut self, seq: &Sequence, t: usize, state: &[W3]) {
        let vec = seq.vector(t);
        debug_assert_eq!(vec.len(), self.nl.num_pis(), "input width mismatch");
        for (i, &pi) in self.cc.pis().iter().enumerate() {
            self.scratch.set_source(pi, W3::broadcast(vec[i]));
        }
        for (f, &q) in self.cc.ff_qs().iter().enumerate() {
            self.scratch.set_source(q, state[f]);
        }
    }

    fn po_diff_mask(&self) -> u64 {
        let mut mask = 0u64;
        for (k, &po) in self.cc.pos().iter().enumerate() {
            let w = self
                .ov
                .apply_po_pin(PoId::from_index(k), self.scratch.value(po));
            match w.get(0) {
                V3::One => mask |= w.zero,
                V3::Zero => mask |= w.one,
                V3::X => {}
            }
        }
        mask
    }

    fn capture(&mut self, state: &mut [W3]) {
        for (f, &d) in self.cc.ff_ds().iter().enumerate() {
            let w = self
                .ov
                .apply_ff_pin(FfId::from_index(f), self.scratch.value(d));
            state[f] = w;
        }
    }
}

/// Active-slot mask for a chunk of `len` faulty machines (slots 1..=len;
/// slot 0 is the good machine).
#[inline]
fn active_mask(len: usize) -> u64 {
    debug_assert!((1..=FAULTS_PER_PASS).contains(&len));
    ((1u64 << len) - 1) << 1
}

/// Mask of slots whose state differs observably from slot 0 (good state
/// binary, faulty state binary and opposite, for at least one flip-flop).
fn state_diff_mask(state: &[W3]) -> u64 {
    let mut mask = 0u64;
    for w in state {
        match w.get(0) {
            V3::One => mask |= w.zero,
            V3::Zero => mask |= w.one,
            V3::X => {}
        }
    }
    mask
}

/// [`state_diff_mask`] restricted to the flip-flops marked in `observed`.
fn masked_state_diff(state: &[W3], observed: &[bool]) -> u64 {
    debug_assert_eq!(state.len(), observed.len(), "observation mask width");
    let mut mask = 0u64;
    for (w, &obs) in state.iter().zip(observed) {
        if !obs {
            continue;
        }
        match w.get(0) {
            V3::One => mask |= w.zero,
            V3::Zero => mask |= w.one,
            V3::X => {}
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultSite};
    use crate::vectors::parse_values;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::{GateKind, NetlistBuilder};

    /// A 1-bit toggle counter: q' = q XOR en, out = q.
    fn toggler() -> atspeed_circuit::Netlist {
        let mut b = NetlistBuilder::new("tff");
        b.input("en");
        b.dff("q", "d");
        b.gate(GateKind::Xor, "d", &["q", "en"]);
        b.gate(GateKind::Buf, "out", &["q"]);
        b.output("out");
        b.finish().unwrap()
    }

    fn seq_of(rows: &[&str]) -> Sequence {
        rows.iter().map(|r| parse_values(r)).collect()
    }

    #[test]
    fn good_sim_toggles() {
        let nl = toggler();
        let sim = SeqSim::new(&nl);
        let trace = sim.run(&vec![V3::Zero], &seq_of(&["1", "1", "0", "1"]));
        // q starts 0; out shows q *before* capture.
        let outs: Vec<V3> = trace.po_values.iter().map(|v| v[0]).collect();
        assert_eq!(outs, vec![V3::Zero, V3::One, V3::Zero, V3::Zero]);
        let states: Vec<V3> = trace.states.iter().map(|s| s[0]).collect();
        assert_eq!(states, vec![V3::One, V3::Zero, V3::Zero, V3::One]);
    }

    #[test]
    fn good_sim_from_unknown_state_stays_x_until_resolved() {
        let nl = toggler();
        let sim = SeqSim::new(&nl);
        let trace = sim.run(&vec![V3::X], &seq_of(&["1", "1"]));
        // XOR with en=1 keeps the state unknown.
        assert_eq!(trace.po_values[0][0], V3::X);
        assert_eq!(trace.states[1][0], V3::X);
    }

    #[test]
    fn detects_stuck_en_via_po() {
        let nl = toggler();
        let u = FaultUniverse::full(&nl);
        let mut fsim = SeqFaultSim::new(&nl);
        // en stuck-at-0: q never toggles; detect at the PO at cycle 1.
        let en = nl.find_net("en").unwrap();
        let target = u
            .all_ids()
            .find(|&id| {
                u.fault(id)
                    == Fault {
                        site: FaultSite::Stem(en),
                        stuck: false,
                    }
            })
            .unwrap();
        let det = fsim.detect(&vec![V3::Zero], &seq_of(&["1", "0"]), &[target], &u, false);
        assert_eq!(det, vec![true]);
    }

    #[test]
    fn state_only_difference_needs_scan_out() {
        let nl = toggler();
        let u = FaultUniverse::full(&nl);
        let mut fsim = SeqFaultSim::new(&nl);
        let en = nl.find_net("en").unwrap();
        let target = u
            .all_ids()
            .find(|&id| {
                u.fault(id)
                    == Fault {
                        site: FaultSite::Stem(en),
                        stuck: false,
                    }
            })
            .unwrap();
        // One cycle: PO shows the pre-toggle state (equal in both machines),
        // but the captured state differs: only a scan-out detects it.
        let seq = seq_of(&["1"]);
        let no_scan = fsim.detect(&vec![V3::Zero], &seq, &[target], &u, false);
        assert_eq!(no_scan, vec![false]);
        let with_scan = fsim.detect(&vec![V3::Zero], &seq, &[target], &u, true);
        assert_eq!(with_scan, vec![true]);
    }

    #[test]
    fn profiles_record_state_diff_and_po_detect() {
        let nl = toggler();
        let u = FaultUniverse::full(&nl);
        let mut fsim = SeqFaultSim::new(&nl);
        let en = nl.find_net("en").unwrap();
        let target = u
            .all_ids()
            .find(|&id| {
                u.fault(id)
                    == Fault {
                        site: FaultSite::Stem(en),
                        stuck: false,
                    }
            })
            .unwrap();
        let seq = seq_of(&["1", "0", "0"]);
        let p = &fsim.profiles(&vec![V3::Zero], &seq, &[target], &u)[0];
        // State differs after cycle 0; PO detects from cycle 1.
        assert!(p.state_diff_at(0));
        assert_eq!(p.po_detect, Some(1));
        assert!(p.detected_by_prefix(0), "prefix 0 detected via scan-out");
        assert!(p.detected_by_prefix(2), "later prefixes detected via PO");
    }

    #[test]
    fn bounded_profiles_truncate_only_past_the_word_budget() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let mut fsim = SeqFaultSim::new(&nl);
        let reps: Vec<FaultId> = u.representatives().to_vec();
        // A 70-cycle sequence spills into the second state-diff word.
        let rows: Vec<String> = (0..70).map(|t| format!("{:04b}", t % 16)).collect();
        let seq: Sequence = rows.iter().map(|r| parse_values(r)).collect();
        let init: State = parse_values("010");
        let (full, none_truncated) = fsim.profiles_bounded(&init, &seq, &reps, &u, usize::MAX);
        assert_eq!(none_truncated, 0);
        let (capped, truncated) = fsim.profiles_bounded(&init, &seq, &reps, &u, 1);
        let dropped: u64 = full
            .iter()
            .map(|p| {
                p.state_diff
                    .iter()
                    .skip(1)
                    .map(|w| w.count_ones() as u64)
                    .sum::<u64>()
            })
            .sum();
        assert!(
            dropped > 0,
            "sequence must spill past word 0 for this test to bite"
        );
        assert_eq!(
            truncated, dropped,
            "truncation stat counts exactly the capped bits"
        );
        for (f, c) in full.iter().zip(capped.iter()) {
            // PO detection and the first 64 cycles of state diffs agree.
            assert_eq!(f.po_detect, c.po_detect);
            assert_eq!(f.state_diff.first(), c.state_diff.first());
            // The cap never *adds* detections.
            for t in 0..seq.len() {
                assert!(!c.state_diff_at(t) || f.state_diff_at(t));
            }
            assert!(c.state_diff.len() <= 1);
        }
    }

    #[test]
    fn x_differences_do_not_count_as_detection() {
        let nl = toggler();
        let u = FaultUniverse::full(&nl);
        let mut fsim = SeqFaultSim::new(&nl);
        // From the unknown state, q stays X in the good machine, so even a
        // hard fault on q cannot be *definitely* detected at the PO.
        let q = nl.find_net("q").unwrap();
        let target = u
            .all_ids()
            .find(|&id| {
                u.fault(id)
                    == Fault {
                        site: FaultSite::Stem(q),
                        stuck: true,
                    }
            })
            .unwrap();
        let det = fsim.detect(&vec![V3::X], &seq_of(&["1", "1"]), &[target], &u, true);
        assert_eq!(det, vec![false]);
    }

    #[test]
    fn s27_complete_detection_under_exhaustive_tests() {
        // Every collapsed s27 fault is detectable in the full-scan sense;
        // run many short scan tests and check a high detection count.
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let mut fsim = SeqFaultSim::new(&nl);
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let mut missed: Vec<FaultId> = reps.clone();
        // Exhaustive over 4 PIs x 8 states, single-vector scan tests.
        for st in 0..8u32 {
            for pv in 0..16u32 {
                if missed.is_empty() {
                    break;
                }
                let init: State = (0..3).map(|b| V3::from_bool(st & (1 << b) != 0)).collect();
                let seq: Sequence =
                    std::iter::once((0..4).map(|b| V3::from_bool(pv & (1 << b) != 0)).collect())
                        .collect();
                let det = fsim.detect(&init, &seq, &missed, &u, true);
                missed = missed
                    .iter()
                    .zip(det.iter())
                    .filter(|(_, &d)| !d)
                    .map(|(&f, _)| f)
                    .collect();
            }
        }
        assert!(
            missed.is_empty(),
            "all collapsed s27 faults are combinationally testable, missed {:?}",
            missed
                .iter()
                .map(|&f| u.fault(f).describe(&nl))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn detect_matches_profiles_on_s27() {
        // Differential test: full-sequence detection with scan-out equals
        // `detected_by_prefix(L-1)` from the profile API.
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let mut fsim = SeqFaultSim::new(&nl);
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let seq = seq_of(&["1010", "0110", "0001", "1111", "0000"]);
        let init: State = parse_values("010");
        let det = fsim.detect(&init, &seq, &reps, &u, true);
        let profiles = fsim.profiles(&init, &seq, &reps, &u);
        for (k, p) in profiles.iter().enumerate() {
            assert_eq!(
                det[k],
                p.detected_by_prefix(seq.len() - 1),
                "fault {} profile/detect mismatch",
                u.fault(reps[k]).describe(&nl)
            );
        }
    }

    #[test]
    fn detects_all_matches_detect() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let mut fsim = SeqFaultSim::new(&nl);
        let reps: Vec<FaultId> = u.representatives().to_vec();
        let init: State = parse_values("010");
        for (rows, observe) in [
            (vec!["1010", "0110", "0001", "1111"], true),
            (vec!["1010", "0110"], false),
            (vec!["0000"], true),
        ] {
            let seq = seq_of(&rows);
            // Full set (mixed verdicts) and the detected subset (all true).
            let det = fsim.detect(&init, &seq, &reps, &u, observe);
            let all = det.iter().all(|&d| d);
            assert_eq!(fsim.detects_all(&init, &seq, &reps, &u, observe), all);
            let detected: Vec<FaultId> = reps
                .iter()
                .zip(det.iter())
                .filter(|(_, &d)| d)
                .map(|(&f, _)| f)
                .collect();
            if !detected.is_empty() {
                assert!(fsim.detects_all(&init, &seq, &detected, &u, observe));
            }
        }
        assert!(fsim.detects_all(&init, &seq_of(&["0000"]), &[], &u, true));
    }

    /// Every engine variant must reproduce the scalar engine's good-machine
    /// traces, detections, and profiles exactly — the fused kernel only
    /// guarantees root nets, and SeqSim/SeqFaultSim observe only those.
    #[test]
    fn all_engines_match_scalar_sequential_results() {
        use atspeed_circuit::synth::{generate, SynthSpec};
        let synth = generate(&SynthSpec::new("seq-eng", 5, 3, 8, 160, 11)).unwrap();
        for nl in [s27(), synth] {
            let u = FaultUniverse::full(&nl);
            let reps: Vec<FaultId> = u.representatives().to_vec();
            let mut x = 0xc0ffeeu64;
            let mut rnd = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let v3 = |r: u64| match r % 5 {
                0 => V3::X,
                n => V3::from_bool(n & 1 == 1),
            };
            let seq: Sequence = (0..20)
                .map(|_| (0..nl.num_pis()).map(|_| v3(rnd())).collect())
                .collect();
            let init: State = (0..nl.num_ffs()).map(|_| v3(rnd())).collect();

            let trace = SeqSim::new(&nl).run(&init, &seq);
            let mut scalar = SeqFaultSim::new(&nl);
            let det = scalar.detect(&init, &seq, &reps, &u, true);
            let profiles = scalar.profiles(&init, &seq, &reps, &u);
            for engine in EngineKind::ALL {
                let t = SeqSim::with_engine(&nl, engine).run(&init, &seq);
                assert_eq!(t.po_values, trace.po_values, "{engine} POs diverge");
                assert_eq!(t.states, trace.states, "{engine} states diverge");

                let mut sim = SeqFaultSim::with_engine(&nl, engine);
                assert_eq!(
                    sim.detect(&init, &seq, &reps, &u, true),
                    det,
                    "{engine} detect diverges on {}",
                    nl.name()
                );
                let p = sim.profiles(&init, &seq, &reps, &u);
                for (a, b) in p.iter().zip(profiles.iter()) {
                    assert_eq!(a.po_detect, b.po_detect, "{engine} po_detect diverges");
                    assert_eq!(a.state_diff, b.state_diff, "{engine} state_diff diverges");
                }
            }
        }
    }

    #[test]
    fn more_than_63_faults_use_multiple_passes() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let mut fsim = SeqFaultSim::new(&nl);
        // All 52 uncollapsed faults plus repeats to exceed one pass.
        let mut faults: Vec<FaultId> = u.all_ids().collect();
        let extra: Vec<FaultId> = faults.iter().copied().take(30).collect();
        faults.extend(extra);
        let seq = seq_of(&["1010", "0110", "0001"]);
        let det = fsim.detect(&parse_values("000"), &seq, &faults, &u, true);
        assert_eq!(det.len(), faults.len());
        // Repeated faults must agree with their first occurrence.
        for i in 0..30 {
            assert_eq!(det[i], det[52 + i], "pass boundary changed verdict");
        }
    }
}
