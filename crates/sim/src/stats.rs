//! Lightweight per-phase instrumentation for the simulation substrate.
//!
//! The engines in this crate ([`comb`](crate::comb),
//! [`fsim_comb`](crate::fsim_comb), [`fsim_seq`](crate::fsim_seq),
//! [`parallel`](crate::parallel)) report three counters — gate evaluations,
//! fault-simulation invocations, and faults dropped — plus wall time per
//! parallel partition. Counts accumulate in thread-local cells (one
//! unsynchronized add per engine call, so the hot loops stay hot) and are
//! merged into a process-wide registry keyed by the current *phase* label.
//!
//! The orchestration layer names the phases: call [`set_phase`] around each
//! pipeline stage, then take a [`SimReport`] snapshot with [`report`] when
//! done. Worker threads must call [`flush`] before they exit so their
//! counts are not lost.
//!
//! Counter semantics:
//!
//! - **gate evaluations** — single-gate, 64-slot-wide evaluations: a full
//!   levelized pass counts one per gate, an event-driven fault propagation
//!   counts only the gates it touched;
//! - **invocations** — engine-level fault-simulation entry points
//!   (`detect*`, `profiles`). A parallel call that fans out to `P`
//!   partitions counts once per partition;
//! - **faults dropped** — faults removed from further simulation by
//!   detection, including cross-partition drops through the shared bitmap.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

thread_local! {
    static GATE_EVALS: Cell<u64> = const { Cell::new(0) };
    static INVOCATIONS: Cell<u64> = const { Cell::new(0) };
    static DROPPED: Cell<u64> = const { Cell::new(0) };
    static EVENTS_SKIPPED: Cell<u64> = const { Cell::new(0) };
}

/// Counters merged for one phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Single-gate 64-slot-wide evaluations.
    pub gate_evals: u64,
    /// Engine-level fault-simulation invocations.
    pub fsim_invocations: u64,
    /// Faults dropped after detection.
    pub faults_dropped: u64,
    /// Gate evaluations an event-driven pass avoided (gates outside the
    /// propagated cone that a full levelized pass would have computed).
    pub events_skipped: u64,
    /// Wall time attributed to the phase.
    pub wall: Duration,
    /// Parallel partitions run during the phase.
    pub partitions: u64,
    /// Summed wall time across those partitions.
    pub partition_wall_total: Duration,
    /// Wall time of the slowest partition (the parallel critical path).
    pub partition_wall_max: Duration,
}

struct Registry {
    phases: BTreeMap<String, PhaseStats>,
    current: String,
    phase_started: Option<Instant>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let reg = guard.get_or_insert_with(|| Registry {
        phases: BTreeMap::new(),
        current: "unattributed".to_string(),
        phase_started: None,
    });
    f(reg)
}

/// Adds `n` gate evaluations to this thread's pending counts.
#[inline]
pub fn add_gate_evals(n: u64) {
    GATE_EVALS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Adds one fault-simulation invocation to this thread's pending counts.
#[inline]
pub fn add_invocation() {
    INVOCATIONS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Adds `n` dropped faults to this thread's pending counts.
#[inline]
pub fn add_dropped(n: u64) {
    DROPPED.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Adds `n` skipped gate evaluations (event-driven savings) to this
/// thread's pending counts.
#[inline]
pub fn add_events_skipped(n: u64) {
    EVENTS_SKIPPED.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Merges this thread's pending counts into the current phase.
///
/// Worker threads must call this before exiting; the orchestrating thread
/// is flushed automatically by [`set_phase`] and [`report`].
pub fn flush() {
    let ge = GATE_EVALS.with(|c| c.replace(0));
    let inv = INVOCATIONS.with(|c| c.replace(0));
    let dr = DROPPED.with(|c| c.replace(0));
    let sk = EVENTS_SKIPPED.with(|c| c.replace(0));
    if ge == 0 && inv == 0 && dr == 0 && sk == 0 {
        return;
    }
    with_registry(|reg| {
        let entry = reg.phases.entry(reg.current.clone()).or_default();
        entry.gate_evals += ge;
        entry.fsim_invocations += inv;
        entry.faults_dropped += dr;
        entry.events_skipped += sk;
    });
}

/// Records one parallel partition's wall time under the current phase.
pub fn record_partition(wall: Duration) {
    with_registry(|reg| {
        let entry = reg.phases.entry(reg.current.clone()).or_default();
        entry.partitions += 1;
        entry.partition_wall_total += wall;
        entry.partition_wall_max = entry.partition_wall_max.max(wall);
    });
}

/// Ends the current phase and starts attributing counts to `name`.
///
/// Flushes the calling thread's pending counts to the *old* phase first
/// and charges the old phase its elapsed wall time.
pub fn set_phase(name: &str) {
    flush();
    with_registry(|reg| {
        let now = Instant::now();
        if let Some(started) = reg.phase_started.take() {
            let entry = reg.phases.entry(reg.current.clone()).or_default();
            entry.wall += now - started;
        }
        reg.current = name.to_string();
        reg.phase_started = Some(now);
    });
}

/// Clears all recorded stats and returns phase attribution to the default.
pub fn reset() {
    GATE_EVALS.with(|c| c.set(0));
    INVOCATIONS.with(|c| c.set(0));
    DROPPED.with(|c| c.set(0));
    EVENTS_SKIPPED.with(|c| c.set(0));
    with_registry(|reg| {
        reg.phases.clear();
        reg.current = "unattributed".to_string();
        reg.phase_started = None;
    });
}

/// Takes a snapshot of everything recorded since the last [`reset`].
///
/// Flushes the calling thread and closes out the running phase timer (the
/// phase keeps accumulating if more work follows).
pub fn report() -> SimReport {
    flush();
    with_registry(|reg| {
        if let Some(started) = reg.phase_started {
            let now = Instant::now();
            let entry = reg.phases.entry(reg.current.clone()).or_default();
            entry.wall += now - started;
            reg.phase_started = Some(now);
        }
        SimReport {
            phases: reg
                .phases
                .iter()
                .filter(|(_, s)| **s != PhaseStats::default())
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    })
}

/// A snapshot of per-phase simulation counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Stats per phase label, ordered by label.
    pub phases: Vec<(String, PhaseStats)>,
}

impl PhaseStats {
    /// Gate evaluations per second of phase wall time (0.0 when no wall
    /// time was recorded). The headline throughput figure for comparing
    /// the legacy, compiled, and event-driven kernels.
    pub fn gate_evals_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.gate_evals as f64 / secs
        } else {
            0.0
        }
    }
}

impl SimReport {
    /// Sums the counters across phases.
    pub fn totals(&self) -> PhaseStats {
        let mut t = PhaseStats::default();
        for (_, s) in &self.phases {
            t.gate_evals += s.gate_evals;
            t.fsim_invocations += s.fsim_invocations;
            t.faults_dropped += s.faults_dropped;
            t.events_skipped += s.events_skipped;
            t.wall += s.wall;
            t.partitions += s.partitions;
            t.partition_wall_total += s.partition_wall_total;
            t.partition_wall_max = t.partition_wall_max.max(s.partition_wall_max);
        }
        t
    }

    /// Renders the report as a JSON object (phase label → counters).
    ///
    /// Hand-rolled because the workspace carries no serialization
    /// dependency; labels are restricted to identifier-like strings by the
    /// callers, but quotes and backslashes are escaped anyway.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n");
        for (i, (name, s)) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "  \"{}\": {{\"gate_evals\": {}, \"fsim_invocations\": {}, \
                 \"faults_dropped\": {}, \"events_skipped\": {}, \
                 \"gate_evals_per_sec\": {:.1}, \"wall_us\": {}, \"partitions\": {}, \
                 \"partition_wall_total_us\": {}, \"partition_wall_max_us\": {}}}{}\n",
                esc(name),
                s.gate_evals,
                s.fsim_invocations,
                s.faults_dropped,
                s.events_skipped,
                s.gate_evals_per_sec(),
                s.wall.as_micros(),
                s.partitions,
                s.partition_wall_total.as_micros(),
                s.partition_wall_max.as_micros(),
                if i + 1 == self.phases.len() { "" } else { "," }
            ));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<18} {:>14} {:>8} {:>9} {:>14} {:>11} {:>10} {:>6} {:>10}",
            "phase",
            "gate evals",
            "fsims",
            "dropped",
            "evts skipped",
            "evals/s",
            "wall",
            "parts",
            "part max"
        )?;
        for (name, s) in &self.phases {
            writeln!(
                f,
                "{:<18} {:>14} {:>8} {:>9} {:>14} {:>11.3e} {:>10.2?} {:>6} {:>10.2?}",
                name,
                s.gate_evals,
                s.fsim_invocations,
                s.faults_dropped,
                s.events_skipped,
                s.gate_evals_per_sec(),
                s.wall,
                s.partitions,
                s.partition_wall_max
            )?;
        }
        let t = self.totals();
        writeln!(
            f,
            "{:<18} {:>14} {:>8} {:>9} {:>14} {:>11.3e} {:>10.2?} {:>6} {:>10.2?}",
            "total",
            t.gate_evals,
            t.fsim_invocations,
            t.faults_dropped,
            t.events_skipped,
            t.gate_evals_per_sec(),
            t.wall,
            t.partitions,
            t.partition_wall_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so exercise everything in one test
    // to avoid cross-test interference under the parallel test harness.
    #[test]
    fn counters_merge_into_phases() {
        reset();
        set_phase("alpha");
        add_gate_evals(10);
        add_invocation();
        add_dropped(3);
        set_phase("beta");
        add_gate_evals(5);
        add_events_skipped(7);
        record_partition(Duration::from_millis(2));
        record_partition(Duration::from_millis(4));
        let r = report();
        let alpha = &r.phases.iter().find(|(n, _)| n == "alpha").unwrap().1;
        assert_eq!(alpha.gate_evals, 10);
        assert_eq!(alpha.fsim_invocations, 1);
        assert_eq!(alpha.faults_dropped, 3);
        let beta = &r.phases.iter().find(|(n, _)| n == "beta").unwrap().1;
        assert_eq!(beta.gate_evals, 5);
        assert_eq!(beta.events_skipped, 7);
        assert!(beta.gate_evals_per_sec() > 0.0, "beta has wall time");
        assert_eq!(beta.partitions, 2);
        assert_eq!(beta.partition_wall_max, Duration::from_millis(4));
        assert_eq!(beta.partition_wall_total, Duration::from_millis(6),);
        let t = r.totals();
        assert_eq!(t.gate_evals, 15);
        assert_eq!(t.events_skipped, 7);
        let json = r.to_json();
        assert!(json.contains("\"alpha\""));
        assert!(json.contains("\"gate_evals\": 10"));
        assert!(json.contains("\"events_skipped\": 7"));
        assert!(json.contains("\"gate_evals_per_sec\""));
        assert!(!format!("{r}").is_empty());
        reset();
        assert!(report().phases.is_empty());
    }
}
