//! Lightweight per-phase instrumentation for the simulation substrate.
//!
//! The engines in this crate ([`comb`](crate::comb),
//! [`fsim_comb`](crate::fsim_comb), [`fsim_seq`](crate::fsim_seq),
//! [`parallel`](crate::parallel)) report three counters — gate evaluations,
//! fault-simulation invocations, and faults dropped — plus wall time per
//! parallel partition. Counts accumulate in thread-local cells (one
//! unsynchronized add per engine call, so the hot loops stay hot) and are
//! merged into an [`atspeed_trace::MetricsRegistry`] under metric names of
//! the form `phase/<label>/<field>`, keyed by the current *phase* label.
//!
//! The orchestration layer names the phases: call [`set_phase`] around each
//! pipeline stage, then take a [`SimReport`] snapshot with [`report`] when
//! done. Worker threads must call [`flush`] before they exit so their
//! counts are not lost; a worker spawned inside a [`scoped`] region must
//! additionally [`StatsHandle::enter`] the parent's handle, because the
//! scope stack is thread-local.
//!
//! By default counts land in the process-global registry
//! ([`atspeed_trace::metrics::global`]), so `--metrics-json` exports phase
//! counters next to the other workspace metrics. Tests (and any caller
//! wanting isolation) create a private registry with [`scoped`]: while the
//! returned guard lives, this thread's stats calls target that registry
//! only, and concurrent tests cannot observe each other's counts.
//!
//! Counter semantics:
//!
//! - **gate evaluations** — gate-words: one unit is one gate evaluated over
//!   one 64-slot word. A scalar full pass counts one per gate, a wide
//!   (`W3x4`) pass counts `LANES` per gate, a fused pass counts every gate
//!   inside its evaluated units, and event-driven propagation counts only
//!   the gate-words it touched. Skipped work is reported in the same unit
//!   (`events_skipped`), so for any delta pass
//!   `evals + skipped == num_gates × words`;
//! - **invocations** — engine-level fault-simulation entry points
//!   (`detect*`, `profiles`). A parallel call that fans out to `P`
//!   partitions counts once per partition;
//! - **faults dropped** — faults removed from further simulation by
//!   detection, including cross-partition drops through the shared bitmap.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use atspeed_trace::metrics::{bucket_index, MetricsRegistry, NUM_BUCKETS};

// ---------------------------------------------------------------------------
// Thread-local pending counts (one unsynchronized add per engine call).
// ---------------------------------------------------------------------------

thread_local! {
    static GATE_EVALS: Cell<u64> = const { Cell::new(0) };
    static INVOCATIONS: Cell<u64> = const { Cell::new(0) };
    static DROPPED: Cell<u64> = const { Cell::new(0) };
    static EVENTS_SKIPPED: Cell<u64> = const { Cell::new(0) };
    // Partition wall times are batched here too, so a worker takes the
    // registry lock once per claimed partition set (at flush) instead of
    // once per partition.
    static PART_COUNT: Cell<u64> = const { Cell::new(0) };
    static PART_TOTAL_NS: Cell<u64> = const { Cell::new(0) };
    static PART_MAX_NS: Cell<u64> = const { Cell::new(0) };
    static PART_SUM_US: Cell<u64> = const { Cell::new(0) };
    static PART_HIST: RefCell<[u64; NUM_BUCKETS]> = const { RefCell::new([0; NUM_BUCKETS]) };
}

/// Everything a thread has recorded since its last flush.
#[derive(Clone)]
struct Pending {
    gate_evals: u64,
    invocations: u64,
    dropped: u64,
    events_skipped: u64,
    partitions: u64,
    part_total_ns: u64,
    part_max_ns: u64,
    part_sum_us: u64,
    part_hist: [u64; NUM_BUCKETS],
}

impl Pending {
    fn take() -> Pending {
        Pending {
            gate_evals: GATE_EVALS.with(|c| c.replace(0)),
            invocations: INVOCATIONS.with(|c| c.replace(0)),
            dropped: DROPPED.with(|c| c.replace(0)),
            events_skipped: EVENTS_SKIPPED.with(|c| c.replace(0)),
            partitions: PART_COUNT.with(|c| c.replace(0)),
            part_total_ns: PART_TOTAL_NS.with(|c| c.replace(0)),
            part_max_ns: PART_MAX_NS.with(|c| c.replace(0)),
            part_sum_us: PART_SUM_US.with(|c| c.replace(0)),
            part_hist: PART_HIST
                .with(|h| std::mem::replace(&mut *h.borrow_mut(), [0; NUM_BUCKETS])),
        }
    }

    fn is_empty(&self) -> bool {
        self.gate_evals == 0
            && self.invocations == 0
            && self.dropped == 0
            && self.events_skipped == 0
            && self.partitions == 0
    }
}

/// Adds `n` gate evaluations to this thread's pending counts.
#[inline]
pub fn add_gate_evals(n: u64) {
    GATE_EVALS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Adds one fault-simulation invocation to this thread's pending counts.
#[inline]
pub fn add_invocation() {
    INVOCATIONS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Adds `n` dropped faults to this thread's pending counts.
#[inline]
pub fn add_dropped(n: u64) {
    DROPPED.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Adds `n` skipped gate evaluations (event-driven savings) to this
/// thread's pending counts.
#[inline]
pub fn add_events_skipped(n: u64) {
    EVENTS_SKIPPED.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Records one parallel partition's wall time in this thread's pending
/// tally. Nothing is locked here; the batch is merged into the registry on
/// the next [`flush`].
pub fn record_partition(wall: Duration) {
    let ns = wall.as_nanos().min(u128::from(u64::MAX)) as u64;
    let us = wall.as_micros().min(u128::from(u64::MAX)) as u64;
    PART_COUNT.with(|c| c.set(c.get() + 1));
    PART_TOTAL_NS.with(|c| c.set(c.get().wrapping_add(ns)));
    PART_MAX_NS.with(|c| c.set(c.get().max(ns)));
    PART_SUM_US.with(|c| c.set(c.get().wrapping_add(us)));
    PART_HIST.with(|h| h.borrow_mut()[bucket_index(us)] += 1);
}

/// Merges this thread's pending counts into the current phase of the
/// current [`StatsHandle`].
///
/// Worker threads must call this before exiting; the orchestrating thread
/// is flushed automatically by [`set_phase`] and [`report`].
pub fn flush() {
    let pending = Pending::take();
    if pending.is_empty() {
        return;
    }
    handle().merge(&pending);
}

// ---------------------------------------------------------------------------
// Handles: which registry the calling thread's stats go to.
// ---------------------------------------------------------------------------

/// Phase attribution state shared by everyone using one handle.
#[derive(Debug)]
struct PhaseState {
    current: String,
    phase_started: Option<Instant>,
}

#[derive(Debug)]
enum MetricsRef {
    /// The process-global registry ([`atspeed_trace::metrics::global`]).
    Global,
    /// A private registry owned by this handle (see [`scoped`]).
    Owned(MetricsRegistry),
}

#[derive(Debug)]
struct HandleInner {
    metrics: MetricsRef,
    state: Mutex<PhaseState>,
}

/// A destination for simulation stats: a metrics registry plus the current
/// phase label. Cloning is cheap (`Arc`); clones share state.
///
/// Most code never touches handles — the free functions route through the
/// calling thread's current handle. Handles exist so that (a) tests can
/// isolate themselves with [`scoped`], and (b) worker threads spawned
/// inside a scope can join it with [`StatsHandle::enter`].
#[derive(Debug, Clone)]
pub struct StatsHandle(Arc<HandleInner>);

impl StatsHandle {
    fn new_scoped() -> StatsHandle {
        StatsHandle(Arc::new(HandleInner {
            metrics: MetricsRef::Owned(MetricsRegistry::new()),
            state: Mutex::new(PhaseState {
                current: "unattributed".to_string(),
                phase_started: None,
            }),
        }))
    }

    /// The metrics registry this handle writes to. Phase counters appear
    /// under `phase/<label>/<field>` names; other subsystems may record
    /// arbitrary metrics alongside them.
    pub fn metrics(&self) -> &MetricsRegistry {
        match &self.0.metrics {
            MetricsRef::Global => atspeed_trace::metrics::global(),
            MetricsRef::Owned(reg) => reg,
        }
    }

    /// Makes this handle the target of the calling thread's stats until the
    /// returned guard drops. Use from worker threads to join the scope of
    /// the thread that spawned them:
    ///
    /// ```
    /// use atspeed_sim::stats;
    /// let scope = stats::scoped();
    /// let h = stats::handle();
    /// std::thread::scope(|s| {
    ///     s.spawn(|| {
    ///         let _g = h.enter();
    ///         stats::add_gate_evals(17);
    ///         // guard drop flushes into the scoped registry
    ///     });
    /// });
    /// assert_eq!(scope.report().totals().gate_evals, 17);
    /// ```
    ///
    /// Flushes the thread's pending counts to its *previous* handle first,
    /// so nothing recorded before the switch is misattributed.
    #[must_use = "stats target reverts when the guard drops"]
    pub fn enter(&self) -> StatsEnterGuard {
        flush();
        HANDLE_STACK.with(|s| s.borrow_mut().push(self.clone()));
        StatsEnterGuard {
            _not_send: std::marker::PhantomData,
        }
    }

    fn merge(&self, p: &Pending) {
        let label = {
            let st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            st.current.clone()
        };
        let m = self.metrics();
        let name = |field: &str| format!("phase/{label}/{field}");
        if p.gate_evals > 0 {
            m.counter(&name("gate_evals")).add(p.gate_evals);
        }
        if p.invocations > 0 {
            m.counter(&name("fsim_invocations")).add(p.invocations);
        }
        if p.dropped > 0 {
            m.counter(&name("faults_dropped")).add(p.dropped);
        }
        if p.events_skipped > 0 {
            m.counter(&name("events_skipped")).add(p.events_skipped);
        }
        if p.partitions > 0 {
            m.counter(&name("partitions")).add(p.partitions);
            m.counter(&name("partition_wall_total_ns"))
                .add(p.part_total_ns);
            m.gauge(&name("partition_wall_max_ns"))
                .record_max(i64::try_from(p.part_max_ns).unwrap_or(i64::MAX));
            m.histogram(&name("partition_wall_us")).merge_tally(
                &p.part_hist,
                p.partitions,
                p.part_sum_us,
            );
        }
    }

    /// Ends the current phase and starts attributing counts to `name`.
    /// Charges the old phase its elapsed wall time. Does *not* flush any
    /// thread's pending counts — use the free [`set_phase`] for that.
    pub fn set_phase(&self, name: &str) {
        let now = Instant::now();
        let (old, elapsed) = {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            let charge = st
                .phase_started
                .take()
                .map(|started| (st.current.clone(), now - started));
            st.current = name.to_string();
            st.phase_started = Some(now);
            match charge {
                Some((old, d)) => (old, d),
                None => return,
            }
        };
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.metrics()
            .counter(&format!("phase/{old}/wall_ns"))
            .add(ns);
    }

    /// Clears phase attribution and zeroes every metric in the registry
    /// (names and outstanding metric handles stay valid).
    pub fn reset(&self) {
        {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            st.current = "unattributed".to_string();
            st.phase_started = None;
        }
        self.metrics().zero();
    }

    /// Snapshots per-phase counters from the registry. Closes out the
    /// running phase timer (the phase keeps accumulating if more work
    /// follows). Does *not* flush thread-local pending counts — use the
    /// free [`report`] for that.
    pub fn report(&self) -> SimReport {
        {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(started) = st.phase_started {
                let now = Instant::now();
                let ns = (now - started).as_nanos().min(u128::from(u64::MAX)) as u64;
                let current = st.current.clone();
                st.phase_started = Some(now);
                drop(st);
                if ns > 0 {
                    self.metrics()
                        .counter(&format!("phase/{current}/wall_ns"))
                        .add(ns);
                }
            }
        }
        let snap = self.metrics().snapshot();
        let mut phases: BTreeMap<String, PhaseStats> = BTreeMap::new();
        for (name, value) in &snap.counters {
            let Some(rest) = name.strip_prefix("phase/") else {
                continue;
            };
            // Phase labels are identifier-like (no '/'), so the last
            // segment is the field name.
            let Some((label, field)) = rest.rsplit_once('/') else {
                continue;
            };
            let entry = phases.entry(label.to_string()).or_default();
            match field {
                "gate_evals" => entry.gate_evals = *value,
                "fsim_invocations" => entry.fsim_invocations = *value,
                "faults_dropped" => entry.faults_dropped = *value,
                "events_skipped" => entry.events_skipped = *value,
                "wall_ns" => entry.wall = Duration::from_nanos(*value),
                "partitions" => entry.partitions = *value,
                "partition_wall_total_ns" => {
                    entry.partition_wall_total = Duration::from_nanos(*value)
                }
                _ => {}
            }
        }
        for (name, value) in &snap.gauges {
            let Some(rest) = name.strip_prefix("phase/") else {
                continue;
            };
            let Some((label, field)) = rest.rsplit_once('/') else {
                continue;
            };
            if field == "partition_wall_max_ns" {
                let entry = phases.entry(label.to_string()).or_default();
                entry.partition_wall_max = Duration::from_nanos(u64::try_from(*value).unwrap_or(0));
            }
        }
        for (name, hist) in &snap.histograms {
            let Some(rest) = name.strip_prefix("phase/") else {
                continue;
            };
            let Some((label, field)) = rest.rsplit_once('/') else {
                continue;
            };
            if field == "partition_wall_us" {
                let entry = phases.entry(label.to_string()).or_default();
                entry.partition_wall_p50 = Duration::from_micros(hist.approx_quantile(0.50) as u64);
                entry.partition_wall_p99 = Duration::from_micros(hist.approx_quantile(0.99) as u64);
            }
        }
        SimReport {
            phases: phases
                .into_iter()
                .filter(|(_, s)| *s != PhaseStats::default())
                .collect(),
        }
    }
}

thread_local! {
    /// Innermost scoped handle wins; empty means the global handle.
    static HANDLE_STACK: RefCell<Vec<StatsHandle>> = const { RefCell::new(Vec::new()) };
}

fn global_handle() -> &'static StatsHandle {
    static GLOBAL: OnceLock<StatsHandle> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        StatsHandle(Arc::new(HandleInner {
            metrics: MetricsRef::Global,
            state: Mutex::new(PhaseState {
                current: "unattributed".to_string(),
                phase_started: None,
            }),
        }))
    })
}

/// The calling thread's current stats destination: the innermost
/// [`scoped`]/[`StatsHandle::enter`] handle, or the process-global one.
pub fn handle() -> StatsHandle {
    HANDLE_STACK
        .with(|s| s.borrow().last().cloned())
        .unwrap_or_else(|| global_handle().clone())
}

/// Reverts the calling thread's stats destination on drop; returned by
/// [`StatsHandle::enter`] and carried inside [`StatsScope`].
///
/// Guards must drop in LIFO order (natural with `let _g = h.enter();`
/// block scoping). The pending counts accumulated while entered are
/// flushed to the entered handle on drop.
pub struct StatsEnterGuard {
    // Thread-local stack manipulation must unwind on the same thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for StatsEnterGuard {
    fn drop(&mut self) {
        flush();
        HANDLE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// An isolated stats region: a fresh private registry that this thread's
/// stats calls target until the guard drops. See [`scoped`].
pub struct StatsScope {
    handle: StatsHandle,
    _guard: StatsEnterGuard,
}

impl StatsScope {
    /// The handle backing this scope — clone it into worker threads and
    /// [`StatsHandle::enter`] there.
    pub fn handle(&self) -> StatsHandle {
        self.handle.clone()
    }

    /// Snapshot of this scope's counters; flushes the calling thread first.
    pub fn report(&self) -> SimReport {
        flush();
        self.handle.report()
    }
}

/// Opens an isolated stats region backed by a fresh private registry.
///
/// While the returned guard lives, the calling thread's [`add_gate_evals`],
/// [`set_phase`], [`report`], … target the private registry, so concurrent
/// tests cannot interfere with each other or with the process-global
/// metrics. Pending counts recorded *before* the call are flushed to the
/// previous destination first.
#[must_use = "the scope ends when the guard drops"]
pub fn scoped() -> StatsScope {
    let handle = StatsHandle::new_scoped();
    let guard = handle.enter();
    StatsScope {
        handle,
        _guard: guard,
    }
}

/// Ends the current phase and starts attributing counts to `name`.
///
/// Flushes the calling thread's pending counts to the *old* phase first
/// and charges the old phase its elapsed wall time.
pub fn set_phase(name: &str) {
    flush();
    handle().set_phase(name);
}

/// Clears all recorded stats and returns phase attribution to the default.
///
/// On the global handle this zeroes the process-global metrics registry —
/// including metrics recorded by other subsystems — which is what a fresh
/// benchmark run wants.
pub fn reset() {
    let _ = Pending::take();
    handle().reset();
}

/// Takes a snapshot of everything recorded since the last [`reset`].
///
/// Flushes the calling thread and closes out the running phase timer (the
/// phase keeps accumulating if more work follows).
pub fn report() -> SimReport {
    flush();
    handle().report()
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// Counters merged for one phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Single-gate 64-slot-wide evaluations.
    pub gate_evals: u64,
    /// Engine-level fault-simulation invocations.
    pub fsim_invocations: u64,
    /// Faults dropped after detection.
    pub faults_dropped: u64,
    /// Gate evaluations an event-driven pass avoided (gates outside the
    /// propagated cone that a full levelized pass would have computed).
    pub events_skipped: u64,
    /// Wall time attributed to the phase.
    pub wall: Duration,
    /// Parallel partitions run during the phase.
    pub partitions: u64,
    /// Summed wall time across those partitions.
    pub partition_wall_total: Duration,
    /// Wall time of the slowest partition (the parallel critical path).
    pub partition_wall_max: Duration,
    /// Median partition wall time (approximate, from the log2-bucketed
    /// `partition_wall_us` histogram).
    pub partition_wall_p50: Duration,
    /// 99th-percentile partition wall time (approximate, same source).
    pub partition_wall_p99: Duration,
}

impl PhaseStats {
    /// Gate evaluations per second of phase wall time (0.0 when no wall
    /// time was recorded). The headline throughput figure for comparing
    /// the legacy, compiled, and event-driven kernels.
    pub fn gate_evals_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.gate_evals as f64 / secs
        } else {
            0.0
        }
    }

    /// Load-imbalance ratio of the phase's parallel partitions: the
    /// slowest partition's wall time over the mean partition wall time.
    /// 1.0 means perfectly balanced; `P` (the partition count) means one
    /// partition did all the work. 0.0 when the phase ran no partitions.
    pub fn partition_imbalance(&self) -> f64 {
        if self.partitions == 0 {
            return 0.0;
        }
        let mean = self.partition_wall_total.as_secs_f64() / self.partitions as f64;
        if mean > 0.0 {
            self.partition_wall_max.as_secs_f64() / mean
        } else {
            0.0
        }
    }
}

/// A snapshot of per-phase simulation counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Stats per phase label, ordered by label.
    pub phases: Vec<(String, PhaseStats)>,
}

impl SimReport {
    /// Sums the counters across phases.
    pub fn totals(&self) -> PhaseStats {
        let mut t = PhaseStats::default();
        for (_, s) in &self.phases {
            t.gate_evals += s.gate_evals;
            t.fsim_invocations += s.fsim_invocations;
            t.faults_dropped += s.faults_dropped;
            t.events_skipped += s.events_skipped;
            t.wall += s.wall;
            t.partitions += s.partitions;
            t.partition_wall_total += s.partition_wall_total;
            t.partition_wall_max = t.partition_wall_max.max(s.partition_wall_max);
            // Quantiles do not sum; the cross-phase maximum is the
            // conservative roll-up for a totals row.
            t.partition_wall_p50 = t.partition_wall_p50.max(s.partition_wall_p50);
            t.partition_wall_p99 = t.partition_wall_p99.max(s.partition_wall_p99);
        }
        t
    }

    /// Renders the report as a JSON object (phase label → counters).
    ///
    /// Hand-rolled because the workspace carries no serialization
    /// dependency; labels are restricted to identifier-like strings by the
    /// callers, but quotes and backslashes are escaped anyway.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n");
        for (i, (name, s)) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "  \"{}\": {{\"gate_evals\": {}, \"fsim_invocations\": {}, \
                 \"faults_dropped\": {}, \"events_skipped\": {}, \
                 \"gate_evals_per_sec\": {:.1}, \"wall_us\": {}, \"partitions\": {}, \
                 \"partition_wall_total_us\": {}, \"partition_wall_max_us\": {}, \
                 \"partition_wall_p50_us\": {}, \"partition_wall_p99_us\": {}, \
                 \"partition_imbalance\": {:.3}}}{}\n",
                esc(name),
                s.gate_evals,
                s.fsim_invocations,
                s.faults_dropped,
                s.events_skipped,
                s.gate_evals_per_sec(),
                s.wall.as_micros(),
                s.partitions,
                s.partition_wall_total.as_micros(),
                s.partition_wall_max.as_micros(),
                s.partition_wall_p50.as_micros(),
                s.partition_wall_p99.as_micros(),
                s.partition_imbalance(),
                if i + 1 == self.phases.len() { "" } else { "," }
            ));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<18} {:>14} {:>8} {:>9} {:>14} {:>11} {:>10} {:>6} {:>10} {:>10} {:>10} {:>6}",
            "phase",
            "gate evals",
            "fsims",
            "dropped",
            "evts skipped",
            "evals/s",
            "wall",
            "parts",
            "part p50",
            "part p99",
            "part max",
            "imbal"
        )?;
        for (name, s) in &self.phases {
            writeln!(
                f,
                "{:<18} {:>14} {:>8} {:>9} {:>14} {:>11.3e} {:>10.2?} {:>6} {:>10.2?} {:>10.2?} {:>10.2?} {:>6.2}",
                name,
                s.gate_evals,
                s.fsim_invocations,
                s.faults_dropped,
                s.events_skipped,
                s.gate_evals_per_sec(),
                s.wall,
                s.partitions,
                s.partition_wall_p50,
                s.partition_wall_p99,
                s.partition_wall_max,
                s.partition_imbalance()
            )?;
        }
        let t = self.totals();
        writeln!(
            f,
            "{:<18} {:>14} {:>8} {:>9} {:>14} {:>11.3e} {:>10.2?} {:>6} {:>10.2?} {:>10.2?} {:>10.2?} {:>6.2}",
            "total",
            t.gate_evals,
            t.fsim_invocations,
            t.faults_dropped,
            t.events_skipped,
            t.gate_evals_per_sec(),
            t.wall,
            t.partitions,
            t.partition_wall_p50,
            t.partition_wall_p99,
            t.partition_wall_max,
            t.partition_imbalance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test opens its own scoped() registry, so they are independent
    // under the parallel test harness — no shared global state.

    #[test]
    fn counters_merge_into_phases() {
        let scope = scoped();
        set_phase("alpha");
        add_gate_evals(10);
        add_invocation();
        add_dropped(3);
        set_phase("beta");
        add_gate_evals(5);
        add_events_skipped(7);
        let r = scope.report();
        let alpha = &r.phases.iter().find(|(n, _)| n == "alpha").unwrap().1;
        assert_eq!(alpha.gate_evals, 10);
        assert_eq!(alpha.fsim_invocations, 1);
        assert_eq!(alpha.faults_dropped, 3);
        let beta = &r.phases.iter().find(|(n, _)| n == "beta").unwrap().1;
        assert_eq!(beta.gate_evals, 5);
        assert_eq!(beta.events_skipped, 7);
        assert!(beta.gate_evals_per_sec() > 0.0, "beta has wall time");
        let t = r.totals();
        assert_eq!(t.gate_evals, 15);
        assert_eq!(t.events_skipped, 7);
    }

    #[test]
    fn partitions_batch_and_merge_exactly() {
        let scope = scoped();
        set_phase("par");
        record_partition(Duration::from_millis(2));
        record_partition(Duration::from_millis(4));
        // Partition tallies stay thread-local until flush (report flushes);
        // only the phase wall timer has reached the registry so far.
        let pre = handle().report();
        assert!(pre
            .phases
            .iter()
            .all(|(_, s)| s.partitions == 0 && s.partition_wall_total == Duration::ZERO));
        let r = scope.report();
        let par = &r.phases.iter().find(|(n, _)| n == "par").unwrap().1;
        assert_eq!(par.partitions, 2);
        assert_eq!(par.partition_wall_total, Duration::from_millis(6));
        assert_eq!(par.partition_wall_max, Duration::from_millis(4));
        // The batched histogram saw both samples.
        let hist = scope
            .handle()
            .metrics()
            .histogram("phase/par/partition_wall_us");
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum(), 2000 + 4000);
    }

    #[test]
    fn imbalance_ratio_reported_in_json_and_display() {
        let mut s = PhaseStats {
            partitions: 4,
            partition_wall_total: Duration::from_millis(40),
            partition_wall_max: Duration::from_millis(20),
            ..PhaseStats::default()
        };
        assert!((s.partition_imbalance() - 2.0).abs() < 1e-9);
        s.partitions = 0;
        assert_eq!(s.partition_imbalance(), 0.0);
        let scope = scoped();
        set_phase("p");
        record_partition(Duration::from_millis(1));
        record_partition(Duration::from_millis(3));
        let r = scope.report();
        let json = r.to_json();
        assert!(json.contains("\"partition_imbalance\": 1.5"), "{json}");
        assert!(format!("{r}").contains("imbal"));
    }

    #[test]
    fn partition_quantiles_surface_in_report_json_and_display() {
        let scope = scoped();
        set_phase("q");
        for _ in 0..20 {
            record_partition(Duration::from_millis(2));
        }
        record_partition(Duration::from_millis(40));
        let r = scope.report();
        let q = &r.phases.iter().find(|(n, _)| n == "q").unwrap().1;
        // 2 ms lands in the [1024, 2047] µs bucket; the p50 estimate stays
        // within it. The single 40 ms outlier pulls p99 upward.
        assert!(
            (Duration::from_millis(1)..Duration::from_millis(3)).contains(&q.partition_wall_p50),
            "p50 {:?}",
            q.partition_wall_p50
        );
        assert!(
            q.partition_wall_p99 >= q.partition_wall_p50,
            "p99 {:?} < p50 {:?}",
            q.partition_wall_p99,
            q.partition_wall_p50
        );
        let json = r.to_json();
        assert!(json.contains("\"partition_wall_p50_us\""), "{json}");
        assert!(json.contains("\"partition_wall_p99_us\""), "{json}");
        let table = format!("{r}");
        assert!(table.contains("part p50"), "{table}");
        assert!(table.contains("part p99"), "{table}");
    }

    #[test]
    fn json_keeps_existing_schema_fields() {
        let scope = scoped();
        set_phase("alpha");
        add_gate_evals(10);
        let json = scope.report().to_json();
        for key in [
            "\"gate_evals\": 10",
            "\"fsim_invocations\": 0",
            "\"faults_dropped\": 0",
            "\"events_skipped\": 0",
            "\"gate_evals_per_sec\"",
            "\"wall_us\"",
            "\"partitions\": 0",
            "\"partition_wall_total_us\": 0",
            "\"partition_wall_max_us\": 0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn reset_clears_scope() {
        let scope = scoped();
        set_phase("x");
        add_gate_evals(1);
        assert!(!scope.report().phases.is_empty());
        reset();
        assert!(scope.report().phases.is_empty());
    }

    #[test]
    fn scopes_nest_and_isolate() {
        let outer = scoped();
        set_phase("outer");
        add_gate_evals(1);
        {
            let inner = scoped();
            set_phase("inner");
            add_gate_evals(100);
            let r = inner.report();
            assert_eq!(r.totals().gate_evals, 100);
            assert!(r.phases.iter().all(|(n, _)| n != "outer"));
        }
        // Counts recorded after the inner scope closed go to the outer one.
        add_gate_evals(2);
        let r = outer.report();
        assert_eq!(r.totals().gate_evals, 3);
        assert!(r.phases.iter().all(|(n, _)| n != "inner"));
    }

    #[test]
    fn worker_threads_enter_a_scope_handle() {
        let scope = scoped();
        set_phase("workers");
        let h = handle();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _g = h.enter();
                    add_gate_evals(10);
                    record_partition(Duration::from_micros(50));
                });
            }
        });
        let r = scope.report();
        let w = &r.phases.iter().find(|(n, _)| n == "workers").unwrap().1;
        assert_eq!(w.gate_evals, 40);
        assert_eq!(w.partitions, 4);
    }
}
