//! The compiled simulation kernel: levelized and event-driven evaluation
//! over [`CompiledCircuit`] with caller-owned, reusable scratch state.
//!
//! [`CompiledSim`] is the hot-path counterpart of the legacy
//! [`CombSim`](crate::comb::CombSim) walker. It indexes the flat CSR arrays
//! of a [`CompiledCircuit`] — no per-gate pointer chase, no per-call input
//! buffer — and folds each gate's function directly over its pin span.
//!
//! All mutable per-simulation state (the net value array, the event-queue
//! level buckets, the in-queue flags) lives in a [`SimScratch`] that the
//! caller owns and recycles across calls, so steady-state evaluation
//! performs no allocation at all. Engines that simulate many related
//! passes (sequential fault simulation, incremental test generation) use
//! the *event-driven* entry points ([`CompiledSim::eval_delta`],
//! [`CompiledSim::eval_delta_with`]): after seeding source nets through
//! [`SimScratch::set_source`], only the fanout cone of the nets that
//! actually changed is re-evaluated, and the gates skipped are reported to
//! [`stats`](crate::stats) as *events skipped*.

use atspeed_circuit::{CompiledCircuit, GateId, GateKind, NetId};

use crate::comb::Overrides;
use crate::logic::W3;

/// Reusable per-simulation mutable state for [`CompiledSim`].
///
/// Holds the net value array plus the event-propagation machinery (changed
/// source list, level buckets, in-queue flags). Create one per simulation
/// context — e.g. one per worker thread — and recycle it across calls;
/// nothing is reallocated after construction.
#[derive(Debug, Clone)]
pub struct SimScratch {
    vals: Vec<W3>,
    // Source nets written since the last eval, for the delta path.
    changed: Vec<NetId>,
    dirty: Vec<bool>,
    // Event queue: gates pending re-evaluation, bucketed by level. Stored
    // as intrusive singly-linked lists — `bucket_head[level]` chains
    // through `next_in_bucket[gate]` (sentinel `u32::MAX`) — so the
    // retained footprint is O(levels + gates) flat words instead of one
    // growable `Vec` per level (worst-case O(levels × gates) capacity on
    // deep 100k-gate circuits). Push/pop at the head reproduces the old
    // per-level LIFO order exactly.
    bucket_head: Vec<u32>,
    next_in_bucket: Vec<u32>,
    in_queue: Vec<bool>,
    queued: Vec<GateId>,
}

const NO_GATE: u32 = u32::MAX;

impl SimScratch {
    /// Creates scratch state sized for `cc`, with every net at X.
    pub fn new(cc: &CompiledCircuit) -> Self {
        SimScratch {
            vals: vec![W3::ALL_X; cc.num_nets()],
            changed: Vec::new(),
            dirty: vec![false; cc.num_nets()],
            bucket_head: vec![NO_GATE; cc.max_level() as usize + 1],
            next_in_bucket: vec![NO_GATE; cc.num_gates()],
            in_queue: vec![false; cc.num_gates()],
            queued: Vec::new(),
        }
    }

    /// The current net values, indexed by [`NetId`].
    #[inline]
    pub fn values(&self) -> &[W3] {
        &self.vals
    }

    /// The current value of one net.
    #[inline]
    pub fn value(&self, net: NetId) -> W3 {
        self.vals[net.index()]
    }

    /// Seeds a source net (primary input or flip-flop output), recording a
    /// change event when the value actually differs so a following
    /// [`CompiledSim::eval_delta`] re-evaluates only the affected cone.
    #[inline]
    pub fn set_source(&mut self, net: NetId, w: W3) {
        let i = net.index();
        if self.vals[i] != w {
            self.vals[i] = w;
            if !self.dirty[i] {
                self.dirty[i] = true;
                self.changed.push(net);
            }
        }
    }

    /// Writes a net value directly, without change tracking. After calling
    /// this, the next evaluation must be a full pass ([`CompiledSim::eval`]
    /// or [`CompiledSim::eval_with`]); the delta path would miss the edit.
    #[inline]
    pub fn set_untracked(&mut self, net: NetId, w: W3) {
        self.vals[net.index()] = w;
    }

    /// Resets every net to `w` (typically [`W3::ALL_X`]). The next
    /// evaluation must be a full pass.
    pub fn fill(&mut self, w: W3) {
        self.vals.fill(w);
        self.clear_events();
    }

    fn clear_events(&mut self) {
        for net in self.changed.drain(..) {
            self.dirty[net.index()] = false;
        }
    }
}

/// Levelized/event-driven evaluator over a [`CompiledCircuit`].
#[derive(Debug, Clone, Copy)]
pub struct CompiledSim<'a> {
    cc: &'a CompiledCircuit,
}

/// Folds `kind` over two operands (the reduction step of a gate function,
/// inversion excluded).
#[inline]
pub(crate) fn combine(kind: GateKind, a: W3, b: W3) -> W3 {
    match kind {
        GateKind::And | GateKind::Nand => a.and(b),
        GateKind::Or | GateKind::Nor => a.or(b),
        GateKind::Xor | GateKind::Xnor => a.xor(b),
        // Single-input kinds never reach the reduction step.
        GateKind::Not | GateKind::Buf => a,
    }
}

impl<'a> CompiledSim<'a> {
    /// Creates an evaluator over `cc`.
    pub fn new(cc: &'a CompiledCircuit) -> Self {
        CompiledSim { cc }
    }

    /// The compiled circuit being evaluated.
    #[inline]
    pub fn circuit(&self) -> &'a CompiledCircuit {
        self.cc
    }

    /// Evaluates one gate by folding its function over the pin span —
    /// no staging buffer.
    #[inline]
    fn eval_gate(&self, vals: &[W3], gid: GateId) -> W3 {
        let kind = self.cc.kind(gid);
        let span = self.cc.inputs(gid);
        let mut acc = vals[span[0].index()];
        for &net in &span[1..] {
            acc = combine(kind, acc, vals[net.index()]);
        }
        if kind.inverts() {
            acc.not()
        } else {
            acc
        }
    }

    /// Evaluates one gate with input-pin overrides applied (the rare,
    /// flagged-gate path).
    #[inline]
    fn eval_gate_flagged(&self, vals: &[W3], gid: GateId, ov: &Overrides) -> W3 {
        let kind = self.cc.kind(gid);
        let span = self.cc.inputs(gid);
        let mut acc = ov.apply_gate_pin(gid, 0, vals[span[0].index()]);
        for (pin, &net) in span.iter().enumerate().skip(1) {
            let w = ov.apply_gate_pin(gid, pin as u8, vals[net.index()]);
            acc = combine(kind, acc, w);
        }
        if kind.inverts() {
            acc.not()
        } else {
            acc
        }
    }

    /// Full levelized pass, fault-free: fills in every gate output from the
    /// seeded source nets.
    pub fn eval(&self, s: &mut SimScratch) {
        s.clear_events();
        self.eval_slice(&mut s.vals);
    }

    /// Full levelized pass with fault injection (same override semantics as
    /// the legacy [`CombSim::eval_with`](crate::comb::CombSim::eval_with)).
    pub fn eval_with(&self, s: &mut SimScratch, ov: &Overrides) {
        s.clear_events();
        self.eval_with_slice(&mut s.vals, ov);
    }

    /// Full levelized pass over a caller-owned value slice. Prefer the
    /// [`SimScratch`]-based entry points; this exists for engines that keep
    /// their own value overlays (e.g. the PPSFP good machine).
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than the circuit's net count.
    pub fn eval_slice(&self, vals: &mut [W3]) {
        assert!(vals.len() >= self.cc.num_nets());
        crate::stats::add_gate_evals(self.cc.num_gates() as u64);
        for &gid in self.cc.schedule() {
            let out = self.eval_gate(vals, gid);
            vals[self.cc.output(gid).index()] = out;
        }
    }

    /// Full levelized pass with fault injection over a caller-owned value
    /// slice (see [`CompiledSim::eval_slice`]).
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than the circuit's net count.
    pub fn eval_with_slice(&self, vals: &mut [W3], ov: &Overrides) {
        assert!(vals.len() >= self.cc.num_nets());
        crate::stats::add_gate_evals(self.cc.num_gates() as u64);
        for &net in ov.stems() {
            if !self.cc.gate_driven(net) {
                vals[net.index()] = ov.apply_stem(net, vals[net.index()]);
            }
        }
        for &gid in self.cc.schedule() {
            let out = if ov.is_gate_flagged(gid) {
                self.eval_gate_flagged(vals, gid, ov)
            } else {
                self.eval_gate(vals, gid)
            };
            let onet = self.cc.output(gid);
            vals[onet.index()] = ov.apply_stem(onet, out);
        }
    }

    /// Event-driven incremental pass, fault-free: re-evaluates only the
    /// fanout cone of the source nets changed through
    /// [`SimScratch::set_source`] since the last evaluation.
    ///
    /// Requires that `s` holds a consistent fault-free evaluation apart
    /// from those seeds (i.e. the previous call was [`CompiledSim::eval`]
    /// or `eval_delta` on the same scratch).
    pub fn eval_delta(&self, s: &mut SimScratch) {
        self.delta(s, None);
    }

    /// Event-driven incremental pass with fault injection.
    ///
    /// Requires that `s` holds a consistent evaluation under the *same*
    /// override set `ov` apart from the seeds (i.e. the previous call was
    /// [`CompiledSim::eval_with`] or `eval_delta_with` with an unchanged
    /// `ov`). Values outside the changed cone stay valid precisely because
    /// neither their inputs nor the injected faults moved.
    pub fn eval_delta_with(&self, s: &mut SimScratch, ov: &Overrides) {
        self.delta(s, Some(ov));
    }

    fn delta(&self, s: &mut SimScratch, ov: Option<&Overrides>) {
        debug_assert!(s.queued.is_empty());
        // Apply source stem overrides to the fresh seeds. Stored values
        // already satisfy `w == apply_stem(w)` (force is idempotent), so
        // nets whose seed did not change need no re-application.
        if let Some(ov) = ov {
            for i in 0..s.changed.len() {
                let net = s.changed[i];
                if !self.cc.gate_driven(net) {
                    s.vals[net.index()] = ov.apply_stem(net, s.vals[net.index()]);
                }
            }
        }
        let mut min_level = u32::MAX;
        for i in 0..s.changed.len() {
            let net = s.changed[i];
            s.dirty[net.index()] = false;
            for &gid in self.cc.fanout_gates(net) {
                min_level = min_level.min(schedule(s, gid, self.cc));
            }
        }
        s.changed.clear();

        if min_level != u32::MAX {
            let mut level = min_level as usize;
            while level < s.bucket_head.len() {
                while s.bucket_head[level] != NO_GATE {
                    let gid = GateId::from_index(s.bucket_head[level] as usize);
                    s.bucket_head[level] = s.next_in_bucket[gid.index()];
                    let out = match ov {
                        Some(ov) if ov.is_gate_flagged(gid) => {
                            self.eval_gate_flagged(&s.vals, gid, ov)
                        }
                        _ => self.eval_gate(&s.vals, gid),
                    };
                    let onet = self.cc.output(gid);
                    let out = match ov {
                        Some(ov) => ov.apply_stem(onet, out),
                        None => out,
                    };
                    if out != s.vals[onet.index()] {
                        s.vals[onet.index()] = out;
                        for &g2 in self.cc.fanout_gates(onet) {
                            schedule(s, g2, self.cc);
                        }
                    }
                }
                level += 1;
            }
        }

        let touched = s.queued.len() as u64;
        crate::stats::add_gate_evals(touched);
        crate::stats::add_events_skipped(self.cc.num_gates() as u64 - touched);
        for gid in s.queued.drain(..) {
            s.in_queue[gid.index()] = false;
        }
    }
}

/// Enqueues `gid` for re-evaluation (once); returns its level.
#[inline]
fn schedule(s: &mut SimScratch, gid: GateId, cc: &CompiledCircuit) -> u32 {
    let level = cc.gate_level(gid);
    if !s.in_queue[gid.index()] {
        s.in_queue[gid.index()] = true;
        s.queued.push(gid);
        let gi = gid.index();
        s.next_in_bucket[gi] = s.bucket_head[level as usize];
        s.bucket_head[level as usize] = gi as u32;
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::CombSim;
    use crate::fault::{Fault, FaultSite, FaultUniverse};
    use crate::logic::V3;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::synth::{generate, SynthSpec};
    use atspeed_circuit::Netlist;

    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed | 1;
        move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
    }

    fn random_w3(r: &mut impl FnMut() -> u64) -> W3 {
        // Random mix of 0/1/X per slot, dual-rail consistent.
        let a = r();
        let b = r();
        W3 {
            zero: a & !b,
            one: !a & b,
        }
    }

    fn seed_sources(nl: &Netlist, s: &mut SimScratch, r: &mut impl FnMut() -> u64) {
        for &pi in nl.pis() {
            s.set_source(pi, random_w3(r));
        }
        for ff in nl.ffs() {
            s.set_source(ff.q(), random_w3(r));
        }
    }

    #[test]
    fn full_pass_matches_legacy_walker() {
        for nl in [
            s27(),
            generate(&SynthSpec::new("k", 6, 4, 9, 200, 7)).unwrap(),
        ] {
            let cc = nl.compiled();
            let sim = CompiledSim::new(cc);
            let mut legacy = CombSim::new(&nl);
            let mut s = SimScratch::new(cc);
            let mut r = rng(0xfeed);
            for _ in 0..10 {
                seed_sources(&nl, &mut s, &mut r);
                let mut vals = s.values().to_vec();
                sim.eval(&mut s);
                legacy.eval(&mut vals);
                assert_eq!(s.values(), vals.as_slice());
            }
        }
    }

    #[test]
    fn full_pass_with_overrides_matches_legacy_walker() {
        let nl = generate(&SynthSpec::new("ko", 6, 4, 9, 200, 13)).unwrap();
        let cc = nl.compiled();
        let u = FaultUniverse::full(&nl);
        let sim = CompiledSim::new(cc);
        let mut legacy = CombSim::new(&nl);
        let mut s = SimScratch::new(cc);
        let mut ov = Overrides::new(&nl);
        let mut r = rng(0xbeef);
        let faults: Vec<_> = u.all_ids().collect();
        for chunk in faults.chunks(63) {
            ov.clear();
            for (k, &fid) in chunk.iter().enumerate() {
                ov.add(u.fault(fid), 1u64 << (k + 1));
            }
            seed_sources(&nl, &mut s, &mut r);
            let mut vals = s.values().to_vec();
            sim.eval_with(&mut s, &ov);
            legacy.eval_with(&mut vals, &ov);
            assert_eq!(s.values(), vals.as_slice());
        }
    }

    #[test]
    fn delta_pass_matches_full_pass() {
        let nl = generate(&SynthSpec::new("kd", 6, 4, 9, 200, 21)).unwrap();
        let cc = nl.compiled();
        let sim = CompiledSim::new(cc);
        let mut fast = SimScratch::new(cc);
        let mut slow = SimScratch::new(cc);
        let mut r = rng(0xabc);
        seed_sources(&nl, &mut fast, &mut r);
        sim.eval(&mut fast);
        for round in 0..20 {
            // Change a few sources only; occasionally none at all.
            let n = round % 4;
            for _ in 0..n {
                let pick = (r() as usize) % (nl.num_pis() + nl.num_ffs());
                let net = if pick < nl.num_pis() {
                    nl.pis()[pick]
                } else {
                    nl.ffs()[pick - nl.num_pis()].q()
                };
                fast.set_source(net, random_w3(&mut r));
            }
            sim.eval_delta(&mut fast);
            for net in nl.net_ids() {
                slow.set_untracked(net, fast.value(net));
            }
            sim.eval(&mut slow);
            assert_eq!(fast.values(), slow.values(), "round {round}");
        }
    }

    #[test]
    fn delta_pass_with_overrides_matches_full_pass() {
        let nl = generate(&SynthSpec::new("kdo", 6, 4, 9, 200, 33)).unwrap();
        let cc = nl.compiled();
        let u = FaultUniverse::full(&nl);
        let sim = CompiledSim::new(cc);
        let mut fast = SimScratch::new(cc);
        let mut r = rng(0x777);
        let faults: Vec<_> = u.representatives().to_vec();
        for chunk in faults.chunks(63) {
            let mut ov = Overrides::new(&nl);
            for (k, &fid) in chunk.iter().enumerate() {
                ov.add(u.fault(fid), 1u64 << (k + 1));
            }
            seed_sources(&nl, &mut fast, &mut r);
            sim.eval_with(&mut fast, &ov);
            for _ in 0..5 {
                seed_sources(&nl, &mut fast, &mut r);
                sim.eval_delta_with(&mut fast, &ov);
                let mut slow = SimScratch::new(cc);
                for &pi in nl.pis() {
                    slow.set_untracked(pi, fast.value(pi));
                }
                for ff in nl.ffs() {
                    slow.set_untracked(ff.q(), fast.value(ff.q()));
                }
                sim.eval_with(&mut slow, &ov);
                assert_eq!(fast.values(), slow.values());
            }
        }
    }

    #[test]
    fn delta_with_source_stem_override_tracks_reseed() {
        // A stem fault on a PI must keep forcing the faulty slot across
        // delta re-seeds of that same PI.
        let nl = s27();
        let cc = nl.compiled();
        let sim = CompiledSim::new(cc);
        let pi = nl.pis()[0];
        let mut ov = Overrides::new(&nl);
        ov.add(
            Fault {
                site: FaultSite::Stem(pi),
                stuck: true,
            },
            0b10,
        );
        let mut s = SimScratch::new(cc);
        for &p in nl.pis() {
            s.set_source(p, W3::ALL_ZERO);
        }
        for ff in nl.ffs() {
            s.set_source(ff.q(), W3::ALL_ZERO);
        }
        sim.eval_with(&mut s, &ov);
        assert_eq!(s.value(pi).get(1), V3::One);
        // Reseed the faulty PI to 0 again; the override must re-apply.
        s.set_source(pi, W3::ALL_ZERO);
        sim.eval_delta_with(&mut s, &ov);
        assert_eq!(s.value(pi).get(0), V3::Zero);
        assert_eq!(s.value(pi).get(1), V3::One);
    }

    #[test]
    fn set_source_records_no_event_for_equal_value() {
        let nl = s27();
        let cc = nl.compiled();
        let sim = CompiledSim::new(cc);
        let mut s = SimScratch::new(cc);
        for &p in nl.pis() {
            s.set_source(p, W3::ALL_ONE);
        }
        for ff in nl.ffs() {
            s.set_source(ff.q(), W3::ALL_ONE);
        }
        sim.eval(&mut s);
        let before = s.values().to_vec();
        // Identical reseed: the delta pass must be a no-op.
        for &p in nl.pis() {
            s.set_source(p, W3::ALL_ONE);
        }
        sim.eval_delta(&mut s);
        assert_eq!(s.values(), before.as_slice());
    }
}
